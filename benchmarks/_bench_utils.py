"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows / series.  They are run with
``pytest benchmarks/ --benchmark-only``; each experiment executes exactly
once (``benchmark.pedantic`` with one round) because the experiments are
long-running simulations, not micro-benchmarks.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.config import TCNNConfig

# A deliberately small TCNN so the neural policies stay tractable on a
# CPU-only numpy substrate.  The architecture (tree conv -> embeddings ->
# fully connected head, censored loss, Adam) is identical to the paper's;
# only widths and epoch counts are reduced.
BENCH_TCNN_CONFIG = TCNNConfig(
    embedding_rank=5,
    channels=(8,),
    hidden_units=(16,),
    dropout=0.2,
    learning_rate=3e-3,
    batch_size=128,
    max_epochs=6,
    convergence_window=3,
    convergence_threshold=0.01,
)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_series(title, series, x_values, x_label="x default time", fmt="{:.1f}"):
    """Print a named family of series sampled at shared x positions."""
    from repro.experiments.reporting import format_series_table

    print(f"\n=== {title} ===")
    print(format_series_table(series, x_values, x_label=x_label, value_format=fmt))


def as_array(values):
    """Convenience conversion used by shape assertions."""
    return np.asarray(values, dtype=float)


def write_bench_json(name, payload):
    """Persist a benchmark's result dict as ``BENCH_<name>.json``.

    The perf trajectory across PRs is tracked by diffing these files; CI
    uploads every ``BENCH_*.json`` as a workflow artifact.  Output lands in
    ``$BENCH_OUTPUT_DIR`` (default: the working directory the suite runs
    from, i.e. the repo root under the tier-1 command).
    """
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", os.getcwd())
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=float)
        handle.write("\n")
    return path
