"""Benchmark-suite conftest.

The benchmarks are experiment regenerators (one per paper table / figure)
rather than micro-benchmarks; shared helpers live in ``_bench_utils`` so
they can be imported without clashing with the unit-test conftest.

Every test collected from this directory is auto-marked ``perf`` (its
numbers only mean something on a quiet machine) and ``slow``, so the
fast lane -- ``pytest -m "not slow"`` -- is the unit suite alone.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        if "benchmarks" in item.path.parts:
            item.add_marker(pytest.mark.perf)
            item.add_marker(pytest.mark.slow)
