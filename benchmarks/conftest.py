"""Benchmark-suite conftest.

The benchmarks are experiment regenerators (one per paper table / figure)
rather than micro-benchmarks; shared helpers live in ``_bench_utils`` so
they can be imported without clashing with the unit-test conftest.
"""
