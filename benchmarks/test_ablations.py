"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper figures; they probe the knobs the implementation
exposes: the non-negativity projection in ALS, the timeout multiplier
``alpha`` (Algorithm 1 line 10), the selection batch size ``m``, and the
number of ALS fill-in iterations.
"""

import numpy as np
from _bench_utils import print_series, run_once

from repro.config import ALSConfig, ExplorationConfig
from repro.core.policies import LimeQOPolicy
from repro.core.predictors import ALSPredictor
from repro.core.simulation import ExplorationSimulator
from repro.workloads.matrices import generate_workload
from repro.workloads.spec import CEB_SPEC

SCALE = 0.04
BUDGET_MULTIPLIER = 2.0


def _workload():
    return generate_workload(CEB_SPEC.scaled(SCALE), seed=0)


def _run(workload, als_config=None, batch_size=10, timeout_alpha=2.0, seed=0):
    config = ExplorationConfig(batch_size=batch_size, timeout_alpha=timeout_alpha, seed=seed)
    simulator = ExplorationSimulator(workload.true_latencies, config=config)
    policy = LimeQOPolicy(predictor=ALSPredictor(als_config or ALSConfig()))
    trace = simulator.run(policy, time_budget=BUDGET_MULTIPLIER * workload.default_total)
    return trace.final_latency


def test_ablation_nonnegativity(benchmark):
    workload = _workload()

    def run():
        return {
            "nonnegative": _run(workload, ALSConfig(nonnegative=True)),
            "unconstrained": _run(workload, ALSConfig(nonnegative=False)),
        }

    result = run_once(benchmark, run)
    print_series(
        "Ablation: ALS non-negativity projection (final latency, s)",
        {k: [v] for k, v in result.items()},
        [BUDGET_MULTIPLIER],
    )
    assert result["nonnegative"] < workload.default_total
    assert result["unconstrained"] < workload.default_total


def test_ablation_timeout_alpha(benchmark):
    workload = _workload()
    alphas = (1.5, 2.0, 4.0, 8.0)

    def run():
        return {f"alpha={a}": _run(workload, timeout_alpha=a) for a in alphas}

    result = run_once(benchmark, run)
    print_series(
        "Ablation: timeout multiplier alpha (final latency, s)",
        {k: [v] for k, v in result.items()},
        [BUDGET_MULTIPLIER],
    )
    for value in result.values():
        assert value < workload.default_total


def test_ablation_batch_size(benchmark):
    workload = _workload()
    sizes = (5, 10, 25, 50)

    def run():
        return {f"m={m}": _run(workload, batch_size=m) for m in sizes}

    result = run_once(benchmark, run)
    print_series(
        "Ablation: selection batch size m (final latency, s)",
        {k: [v] for k, v in result.items()},
        [BUDGET_MULTIPLIER],
    )
    values = np.array(list(result.values()))
    assert (values < workload.default_total).all()


def test_ablation_als_iterations(benchmark):
    workload = _workload()
    iteration_counts = (5, 15, 50)

    def run():
        return {
            f"iters={t}": _run(workload, ALSConfig(iterations=t))
            for t in iteration_counts
        }

    result = run_once(benchmark, run)
    print_series(
        "Ablation: ALS fill-in iterations (final latency, s)",
        {k: [v] for k, v in result.items()},
        [BUDGET_MULTIPLIER],
    )
    for value in result.values():
        assert value < workload.default_total
