"""Drift-aware adaptive serving vs a static snapshot cache (ISSUE 5 gate).

Runs the six-scenario drift library (sudden 70/30 workload shift, gradual
data drift, diurnal tenant mix, flash crowd, new-template stream, ETL
flood -- the paper's Figures 8-11 territory plus the serving-scale
stories) three ways each: static snapshot cache, adaptive controller, and
an adaptive replay.  Acceptance:

* across every scenario the adaptive stack recovers >= 50% of the static
  cache's post-disturbance latency regression,
* the adaptive run never serves worse in total than the always-default
  (no-regression) baseline,
* replaying a scenario with the same seed reproduces byte-identical
  decisions.

Writes ``BENCH_adaptive.json`` for the cross-PR trajectory.
"""

from _bench_utils import run_once, write_bench_json

from repro.experiments.adaptive import scenario_suite_comparison
from repro.experiments.reporting import format_table
from repro.scenarios import drift_benchmark_scenarios

RECOVERY_FLOOR = 0.5
MIN_SCENARIOS = 6


def test_adaptive_drift_recovery(benchmark):
    specs = drift_benchmark_scenarios(seed=0)
    assert len(specs) >= MIN_SCENARIOS
    results = run_once(benchmark, scenario_suite_comparison, specs)
    summary = results.pop("_summary")

    rows = []
    for name in sorted(results):
        r = results[name]
        rows.append(
            [
                name,
                f"{r['pre_improvement']:.1%}",
                f"{r['static_post_improvement']:.1%}",
                f"{r['adaptive_post_improvement']:.1%}",
                f"{r['recovery']:.0%}",
                f"{r['responses']:.0f}+{r['recovery_passes']:.0f}",
                f"{r['explored_cells']:.0f}",
            ]
        )
    print("\n=== Adaptive drift recovery (6 scenarios, service target) ===")
    print(
        format_table(
            [
                "scenario",
                "pre",
                "static post",
                "adaptive post",
                "recovery",
                "resp+recov",
                "cells",
            ],
            rows,
        )
    )
    print(
        f"min recovery {summary['min_recovery']:.0%}, "
        f"mean {summary['mean_recovery']:.0%}; replays identical: "
        f"{bool(summary['all_replays_identical'])}; never worse than default: "
        f"{bool(summary['all_never_worse_than_default'])}"
    )
    path = write_bench_json("adaptive", {**results, "summary": summary})
    print(f"wrote {path}")

    assert summary["scenarios"] >= MIN_SCENARIOS
    for name, r in results.items():
        assert r["static_regression"] > 0.02, (
            f"{name}: static cache did not regress; the scenario is not a "
            "drift test"
        )
        assert r["recovery"] >= RECOVERY_FLOOR, (
            f"{name}: adaptive recovered only {r['recovery']:.0%} of the "
            f"static regression (floor {RECOVERY_FLOOR:.0%})"
        )
        assert r["never_worse_than_default"] == 1.0, (
            f"{name}: adaptive served worse than the no-regression default"
        )
        assert r["replay_identical"] == 1.0, (
            f"{name}: replay with the same seed diverged"
        )
