"""Cluster scaling: 4 sharded services vs one service over the union matrix.

Serves an identical heavy arrival stream through a single
:class:`ServingService` and through a 4-shard :class:`ServingCluster`,
then exercises failover (one shard killed) and live shard addition.
Acceptance (the ISSUE 3 bar):

* cluster decisions are byte-identical to the single service,
* aggregate throughput under the distributed-parallel model (a fanned-out
  batch costs its slowest shard) is at least 2x the single service,
* a killed shard degrades to default plans without error or regression,
  and recovery / rebalancing restore identical decisions.

Writes ``BENCH_cluster.json`` for the cross-PR perf trajectory.
"""

from _bench_utils import run_once, write_bench_json

from repro.experiments.cluster import cluster_vs_single_comparison
from repro.experiments.reporting import format_table
from repro.workloads.matrices import generate_workload
from repro.workloads.spec import CEB_SPEC


def test_cluster_scaling(benchmark):
    workload = generate_workload(CEB_SPEC.scaled(0.65), seed=0)  # ~2k queries
    result = run_once(
        benchmark,
        cluster_vs_single_comparison,
        workload,
        n_shards=4,
        batch_size=32768,
        n_batches=12,
        observed_fraction=0.25,
        seed=0,
    )
    print("\n=== Cluster scaling (4 shards, CEB-scale matrix) ===")
    print(
        format_table(
            ["topology", "decisions/sec", "note"],
            [
                [
                    "single service",
                    f"{result['single_qps']:,.0f}",
                    "union matrix",
                ],
                [
                    "cluster (in-process)",
                    f"{result['cluster_inprocess_qps']:,.0f}",
                    "serial python, routing included",
                ],
                [
                    "cluster (parallel model)",
                    f"{result['parallel_qps']:,.0f}",
                    "slowest-shard wall per sweep",
                ],
            ],
        )
    )
    print(
        f"parallel speedup: {result['parallel_speedup']:.2f}x over "
        f"{result['decisions']:.0f} decisions "
        f"(fan-out {result['fan_out']:.1f} sub-batches/batch, "
        f"hit rate {result['non_default_fraction']:.1%}); "
        f"failover degraded {result['degraded_decisions']:.0f} decisions to "
        f"default plans, rebalance moved {result['rebalanced_rows']:.0f} rows"
    )
    path = write_bench_json("cluster", result)
    print(f"wrote {path}")
    assert result["identical"] == 1.0, "cluster decisions diverged from single"
    assert result["parallel_speedup"] >= 2.0
    assert result["degraded_ok"] == 1.0, "failover leg regressed or errored"
    assert result["recovered"] == 1.0
    assert result["rebalance_ok"] == 1.0
