"""Core-speed benchmark: warm-started incremental exploration vs cold.

Two claims are measured (not asserted from memory):

1. **Speedup** -- running the offline exploration loop with the
   incremental ALS predictor (a few warm fill-in iterations per step, a
   periodic full re-solve to bound drift) is at least 3x faster end-to-end
   than the historical cold ``t=50`` solve on every step.
2. **Equivalence** -- on the default seeded workload the two modes explore
   to the *same final plan selections* (byte-identical ``recommend_hints``)
   and their latency-vs-time traces stay within a small tolerance of each
   other along the way.

The measured numbers, together with the ``repro.perf`` hot-path suite, are
written to ``BENCH_core.json`` so the speed trajectory is tracked across
PRs like every other benchmark output.
"""

import os
import time

import numpy as np
from _bench_utils import print_series, run_once

from repro.config import ALSConfig, ExplorationConfig
from repro.core.policies import LimeQOPolicy
from repro.core.predictors import ALSPredictor
from repro.core.simulation import ExplorationSimulator
from repro.perf import as_payload, build_suite, calibration_seconds, write_report
from repro.workloads.matrices import generate_workload
from repro.workloads.spec import WorkloadSpec

N_QUERIES, N_HINTS, BATCH = 120, 16, 10
SPEC = WorkloadSpec(
    name="core-speed",
    n_queries=N_QUERIES,
    n_hints=N_HINTS,
    default_total=10.0 * N_QUERIES,
    optimal_total=3.5 * N_QUERIES,
    rank=5,
)


def _explore(workload, incremental):
    """Run the exploration loop to exhaustion; returns (seconds, trace, hints)."""
    config = ExplorationConfig(
        batch_size=BATCH,
        seed=0,
        incremental_als=incremental,
        als_refresh_iterations=5,
        als_full_solve_every=20,
    )
    simulator = ExplorationSimulator(workload.true_latencies, config)
    matrix = simulator.initial_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=50), warm_start=incremental)
    policy = LimeQOPolicy(predictor=predictor)
    start = time.perf_counter()
    trace = simulator.run(policy, max_steps=100_000, matrix=matrix)
    elapsed = time.perf_counter() - start
    hints = [0 if h < 0 else int(h) for h in matrix.best_hint_array()]
    return elapsed, trace, hints, predictor


def run_comparison():
    workload = generate_workload(SPEC, seed=11)
    cold_seconds, cold_trace, cold_hints, _ = _explore(workload, incremental=False)
    warm_seconds, warm_trace, warm_hints, predictor = _explore(
        workload, incremental=True
    )
    return {
        "workload": workload,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cold_trace": cold_trace,
        "warm_trace": warm_trace,
        "cold_hints": cold_hints,
        "warm_hints": warm_hints,
        "cold_solves": predictor.cold_solves,
        "warm_solves": predictor.warm_solves,
    }


def test_core_speed_warm_vs_cold(benchmark):
    result = run_once(benchmark, run_comparison)

    cold_trace, warm_trace = result["cold_trace"], result["warm_trace"]
    horizon = min(
        cold_trace.total_exploration_time, warm_trace.total_exploration_time
    )
    checkpoints = np.linspace(0.0, horizon, 25)
    print_series(
        "Core speed: total latency (s) vs exploration time (cold vs warm)",
        {
            "cold t=50": cold_trace.latencies_at(checkpoints),
            "warm incremental": warm_trace.latencies_at(checkpoints),
        },
        checkpoints,
        x_label="exploration time (s)",
    )
    print(
        f"\ncold: {result['cold_seconds'] * 1e3:.1f} ms, "
        f"warm: {result['warm_seconds'] * 1e3:.1f} ms, "
        f"speedup: {result['speedup']:.2f}x "
        f"({result['warm_solves']} warm / {result['cold_solves']} cold solves)"
    )

    # Acceptance: >= 3x end-to-end wall-clock at identical final selections.
    assert result["speedup"] >= 3.0, (
        f"warm-started incremental exploration only {result['speedup']:.2f}x "
        "faster than the cold per-step solve"
    )
    assert result["cold_hints"] == result["warm_hints"], (
        "incremental exploration changed the final plan selections"
    )
    assert cold_trace.final_latency == warm_trace.final_latency
    # Along the way the traces may diverge slightly (different cells get
    # explored first) but must stay within tolerance of each other.
    cold_at = cold_trace.latencies_at(checkpoints)
    warm_at = warm_trace.latencies_at(checkpoints)
    assert np.all(np.abs(cold_at - warm_at) / cold_at < 0.15)

    # Persist the measurement through the repro.perf harness so the speed
    # trajectory is tracked like every other BENCH_*.json.
    harness = build_suite("smoke")
    calibration = calibration_seconds()
    results = harness.run()
    payload = as_payload(
        results,
        calibration,
        scale="smoke",
        extra={
            "explore_speedup_warm_vs_cold": result["speedup"],
            "explore_cold_seconds": result["cold_seconds"],
            "explore_warm_seconds": result["warm_seconds"],
            "identical_final_selections": True,
        },
    )
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", os.getcwd())
    path = write_report(payload, os.path.join(out_dir, "BENCH_core.json"))
    print(f"wrote {path}")
