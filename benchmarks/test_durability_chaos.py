"""Durability acceptance: crash-and-rejoin chaos over the serving cluster.

Three pillars (the ISSUE 9 bar):

* **Byte-identical rejoin** -- for *every* fault point the durability
  layer can die at, a shard is crashed mid-drift-workload, the cluster
  serves degraded while it is down, and after ``restart_shard`` the
  cluster's decisions are byte-identical to an uninterrupted reference
  cluster fed the same traffic (``identical_after_recovery == 1.0``);
* **Outage invariants** -- during the outage every arrival is still
  answered (the dead shard's rows degrade to the default plan), nothing
  errors, and the cumulative never-worse-than-default guarantee holds
  through the chaos scenarios;
* **Bounded footprint** -- periodic checkpoints keep the on-disk journal
  bounded over 1,000 feedback ticks even though the appended WAL volume
  keeps growing, and journaling adds at most 1.3x to a serve+observe
  tick.

``CHAOS_SEED`` (env) reseeds the traffic so CI can sweep several seeds.
Writes ``BENCH_durability.json`` plus ``TELEMETRY_durability.json`` -- a
full telemetry snapshot (per-stage latency histograms, WAL segment/LSN/
checkpoint gauges, circuit-breaker health) of a telemetry-enabled cluster
driven through a kill/restart cycle.
"""

import os
import shutil
import tempfile
import time

import numpy as np
import pytest
from _bench_utils import run_once, write_bench_json

from repro.cluster import ServingCluster
from repro.core.workload_matrix import WorkloadMatrix
from repro.durability import (
    FAULT_POINTS,
    FaultFS,
    FaultInjector,
    ShardJournal,
    matrix_to_jsonable,
    recover_journal,
)
from repro.scenarios import (
    ScenarioRunner,
    kill_shard_mid_drift,
    restart_during_flash_crowd,
)
from repro.serving import ServingService

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

N_ROWS = 36
N_HINTS = 6
RESULTS = {"chaos_seed": CHAOS_SEED}

#: Fault points reached by a feedback append vs. by a checkpoint.
APPEND_POINTS = tuple(p for p in FAULT_POINTS if p.startswith("wal.append"))
CHECKPOINT_POINTS = tuple(p for p in FAULT_POINTS if p not in APPEND_POINTS)


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    yield
    path = write_bench_json("durability", RESULTS)
    print(f"\nwrote {path}")


def make_truth(seed):
    rng = np.random.default_rng([seed, 97])
    truth = rng.uniform(0.5, 20.0, size=(N_ROWS, N_HINTS))
    truth[:, 0] = rng.uniform(8.0, 20.0, size=N_ROWS)  # default is mediocre
    return truth


def build_cluster(truth, durability_dir=None, fault_fs=None):
    cluster = ServingCluster(
        3,
        N_HINTS,
        durability_dir=durability_dir,
        fault_fs=fault_fs,
        journal_sync="always",  # reach the fsync fault points
    )
    names = [f"q{i}" for i in range(N_ROWS)]
    cluster.add_tenant("web", names)
    rows = np.arange(N_ROWS)
    cluster.observe_batch("web", rows, np.zeros(N_ROWS, dtype=np.int64), truth[:, 0])
    best = truth.argmin(axis=1)
    cluster.observe_batch("web", rows, best, truth[rows, best])
    return cluster


def feedback_stream(truth, seed, ticks, size=12):
    """Decision-independent feedback: the same cells whatever was served."""
    rng = np.random.default_rng([seed, 131])
    drift = truth.copy()
    out = []
    for tick in range(ticks):
        if tick >= 2:  # the ground truth keeps drifting under the cluster
            rows = rng.integers(0, N_ROWS, size=3)
            drift[rows] *= rng.uniform(1.02, 1.15, size=(3, 1))
        cells_q = rng.integers(0, N_ROWS, size=size)
        cells_h = rng.integers(0, N_HINTS, size=size)
        out.append((cells_q, cells_h, drift[cells_q, cells_h]))
    return out


def crash_at_every_fault_point():
    """Kill a shard at each fault point; demand byte-identical rejoin."""
    per_point = {}
    stream = feedback_stream(make_truth(CHAOS_SEED), CHAOS_SEED, ticks=8)
    truth = make_truth(CHAOS_SEED)
    for point in FAULT_POINTS:
        home = tempfile.mkdtemp(prefix=f"repro-chaos-")
        try:
            injector = FaultInjector()
            subject = build_cluster(
                truth, durability_dir=home, fault_fs=FaultFS(injector)
            )
            reference = build_cluster(truth)
            for q, h, v in stream[:3]:
                subject.observe_batch("web", q, h, v)
                reference.observe_batch("web", q, h, v)

            injector.arm(point, at=1, torn_fraction=0.4)
            if point in CHECKPOINT_POINTS:
                subject.checkpoint()  # dies inside the snapshot protocol
            else:
                q, h, v = stream[3]
                subject.observe_batch("web", q, h, v)  # dies mid-append
            reference_q, reference_h, reference_v = stream[3]
            if point in CHECKPOINT_POINTS:
                # The subject never saw tick 3's feedback yet; apply it
                # now (it queues for the crashed shard, applies elsewhere).
                subject.observe_batch("web", reference_q, reference_h, reference_v)
            reference.observe_batch("web", reference_q, reference_h, reference_v)

            crashed = [s for s, sh in subject.shards.items() if sh.crashed]
            assert len(crashed) == 1, f"{point}: expected exactly one crash"
            assert injector.fired == [point]

            # Outage: every arrival is still answered; the dead shard's
            # rows degrade to the default plan with no error raised.
            during = subject.serve_all("web")
            degraded = np.isinf(during.expected_latency)
            assert during.batch_size == N_ROWS
            assert degraded.any() and during.used_default[degraded].all()

            for q, h, v in stream[4:6]:
                subject.observe_batch("web", q, h, v)
                reference.observe_batch("web", q, h, v)

            state = subject.restart_shard(crashed[0])
            for q, h, v in stream[6:]:
                subject.observe_batch("web", q, h, v)
                reference.observe_batch("web", q, h, v)

            after = subject.serve_all("web")
            want = reference.serve_all("web")
            identical = (
                np.array_equal(after.queries, want.queries)
                and np.array_equal(after.hints, want.hints)
                and np.array_equal(after.used_default, want.used_default)
                and after.expected_latency.tobytes()
                == want.expected_latency.tobytes()
            )
            stats = subject.stats()
            per_point[point] = {
                "identical": float(identical),
                "crashed_shard": float(crashed[0]),
                "degraded_decisions": float(stats.degraded_decisions),
                "queued_feedback": float(stats.queued_feedback),
                "replayed_feedback": float(stats.replayed_feedback),
                "replayed_records": float(state.replayed_records),
                "snapshot_lsn": float(state.snapshot_lsn),
            }
            subject.close()
            reference.close()
        finally:
            shutil.rmtree(home, ignore_errors=True)
    identical_after_recovery = float(
        np.mean([row["identical"] for row in per_point.values()])
    )
    return {
        "fault_points": float(len(per_point)),
        "identical_after_recovery": identical_after_recovery,
        "per_point": per_point,
    }


def test_crash_at_every_fault_point(benchmark):
    result = run_once(benchmark, crash_at_every_fault_point)
    RESULTS["fault_sweep"] = result
    print(
        f"\n=== Fault-point sweep (seed {CHAOS_SEED}) ===\n"
        f"{int(result['fault_points'])} fault points, "
        f"identical_after_recovery={result['identical_after_recovery']:.2f}"
    )
    for point, row in result["per_point"].items():
        print(
            f"  {point:<28} identical={row['identical']:.0f} "
            f"queued={row['queued_feedback']:.0f} "
            f"replayed_wal={row['replayed_records']:.0f}"
        )
    assert result["fault_points"] == len(FAULT_POINTS)
    assert result["identical_after_recovery"] == 1.0


def checkpoint_bounds_journal():
    """1,000 feedback ticks with periodic checkpoints: bounded footprint."""
    home = tempfile.mkdtemp(prefix="repro-growth-")
    try:
        rng = np.random.default_rng([CHAOS_SEED, 7])
        journal = ShardJournal(home)
        matrix = WorkloadMatrix(64, N_HINTS)
        service = ServingService(matrix, journal=journal)
        max_bytes = 0
        for tick in range(1000):
            q = rng.integers(0, 64, size=8)
            h = rng.integers(0, N_HINTS, size=8)
            service.observe_batch(q, h, rng.uniform(0.5, 20.0, size=8))
            if (tick + 1) % 100 == 0:
                journal.checkpoint(matrix_to_jsonable(matrix.to_dict()))
            max_bytes = max(max_bytes, journal.on_disk_bytes())
        appended = journal.appended_bytes
        journal.crash()
        _, state = recover_journal(home)
        got, want = state.matrix.to_dict(), matrix.to_dict()
        identical = float(
            all(
                np.array_equal(got[key], want[key])
                for key in ("values", "observed", "censored", "timeouts")
            )
        )
        return {
            "ticks": 1000.0,
            "appended_bytes": float(appended),
            "max_on_disk_bytes": float(max_bytes),
            "bound_ratio": appended / max_bytes,
            "checkpoints": float(journal.checkpoints),
            "recovered_identical": identical,
        }
    finally:
        shutil.rmtree(home, ignore_errors=True)


def test_checkpoint_bounds_journal_size(benchmark):
    result = run_once(benchmark, checkpoint_bounds_journal)
    RESULTS["growth"] = result
    print(
        f"\n=== Journal growth over {result['ticks']:.0f} ticks ===\n"
        f"appended {result['appended_bytes']:,.0f} B total, "
        f"peak on disk {result['max_on_disk_bytes']:,.0f} B "
        f"({result['bound_ratio']:.1f}x bound, "
        f"{result['checkpoints']:.0f} checkpoints)"
    )
    assert result["recovered_identical"] == 1.0
    # Checkpoint truncation must keep the directory well below the total
    # appended volume -- the log is bounded, not ever-growing.
    assert result["bound_ratio"] >= 3.0


def journal_overhead():
    """Serve+observe tick cost, journaled vs. plain (median paired ratio)."""
    n, k = 2000, 16
    rng = np.random.default_rng([CHAOS_SEED, 19])
    truth = rng.uniform(0.5, 20.0, size=(n, k))

    def build(journal):
        matrix = WorkloadMatrix(n, k)
        rows = np.arange(n)
        matrix.observe_batch(rows, np.zeros(n, dtype=np.int64), truth[:, 0])
        return ServingService(matrix, journal=journal)

    def block(service, tick_rng):
        start = time.perf_counter()
        for _ in range(40):
            arrivals = tick_rng.integers(0, n, size=1024)
            service.serve_batch(arrivals)
            q = tick_rng.integers(0, n, size=64)
            h = tick_rng.integers(0, k, size=64)
            service.observe_batch(q, h, truth[q, h], refresh=False)
        return time.perf_counter() - start

    plain = build(None)
    home = tempfile.mkdtemp(prefix="repro-overhead-")
    try:
        journaled = build(ShardJournal(home))
        # Time the two services in back-to-back pairs (alternating order)
        # and take the *median of paired ratios*: each pair sees the same
        # machine weather, so drift in CPU budget cancels instead of
        # landing on whichever side happened to run during a stall.
        rng_p = np.random.default_rng([CHAOS_SEED, 3])
        rng_j = np.random.default_rng([CHAOS_SEED, 3])
        block(plain, rng_p)
        block(journaled, rng_j)
        plain_times = []
        journaled_times = []
        for i in range(8):
            if i % 2 == 0:
                p = block(plain, rng_p)
                j = block(journaled, rng_j)
            else:
                j = block(journaled, rng_j)
                p = block(plain, rng_p)
            plain_times.append(p)
            journaled_times.append(j)
        pair_ratios = [j / p for p, j in zip(plain_times, journaled_times)]
        plain_s = float(np.median(plain_times))
        journaled_s = float(np.median(journaled_times))
        ratio = float(np.median(pair_ratios))
        appended = journaled.journal.appended_records
        journaled.journal.close()
    finally:
        shutil.rmtree(home, ignore_errors=True)
    return {
        "plain_s": plain_s,
        "journaled_s": journaled_s,
        "overhead_ratio": ratio,
        "journaled_records": float(appended),
    }


def test_journal_overhead_is_bounded(benchmark):
    result = run_once(benchmark, journal_overhead)
    RESULTS["overhead"] = result
    print(
        f"\n=== Journal overhead ===\n"
        f"plain {result['plain_s'] * 1e3:.1f} ms vs journaled "
        f"{result['journaled_s'] * 1e3:.1f} ms per 40-tick block "
        f"-> {result['overhead_ratio']:.2f}x "
        f"({result['journaled_records']:.0f} records appended)"
    )
    assert result["overhead_ratio"] <= 1.3


def telemetry_snapshot_under_chaos():
    """Drive a telemetry-enabled durable cluster through a kill/restart
    cycle and export the full observability snapshot as a CI artifact."""
    from repro.telemetry import Telemetry, collect_snapshot, write_telemetry_json

    home = tempfile.mkdtemp(prefix="repro-chaos-tel-")
    try:
        telemetry = Telemetry.enabled()
        truth = make_truth(CHAOS_SEED)
        cluster = ServingCluster(
            3, N_HINTS, durability_dir=home, telemetry=telemetry
        )
        names = [f"q{i}" for i in range(N_ROWS)]
        cluster.add_tenant("web", names)
        rows = np.arange(N_ROWS)
        cluster.observe_batch(
            "web", rows, np.zeros(N_ROWS, dtype=np.int64), truth[:, 0]
        )
        stream = feedback_stream(truth, CHAOS_SEED, ticks=8)
        for q, h, v in stream[:4]:
            cluster.serve_all("web")
            cluster.observe_batch("web", q, h, v)
        victim = next(iter(cluster.shards))
        cluster.kill_shard(victim)
        cluster.serve_all("web")  # degraded answers while the shard is down
        cluster.restart_shard(victim)
        for q, h, v in stream[4:]:
            cluster.serve_all("web")
            cluster.observe_batch("web", q, h, v)
        cluster.checkpoint()

        snapshot = collect_snapshot(telemetry, cluster=cluster)
        path = write_telemetry_json("durability", snapshot)
        payload = snapshot.as_dict()
        stages = payload["metrics"]["repro_stage_seconds"]["children"]
        wal = payload["wal"]
        cluster.close()
        return {
            "path": path,
            "stages": sorted(stages),
            "stage_observations": float(
                sum(s["count"] for s in stages.values())
            ),
            "wal_shards": float(len(wal)),
            "checkpoints": float(
                sum(s["checkpoints"] for s in wal.values())
            ),
            "min_segment_count": float(
                min(s["segment_count"] for s in wal.values())
            ),
            "down_shards": float(payload["health"]["n_down"]),
        }
    finally:
        shutil.rmtree(home, ignore_errors=True)


def test_telemetry_snapshot_artifact(benchmark):
    result = run_once(benchmark, telemetry_snapshot_under_chaos)
    RESULTS["telemetry"] = {
        k: v for k, v in result.items() if k != "path"
    }
    print(
        f"\n=== Telemetry snapshot ===\n"
        f"wrote {result['path']}\n"
        f"stages {result['stages']} "
        f"({result['stage_observations']:.0f} observations), "
        f"{result['checkpoints']:.0f} checkpoints across "
        f"{result['wal_shards']:.0f} shard journals"
    )
    # Per-stage latency histograms cover the append and observe paths
    # even without an ingress in front (no open trace required).
    assert "wal.append" in result["stages"]
    assert "observe" in result["stages"]
    assert result["stage_observations"] > 0
    # WAL gauges: every shard journal reports segments and the checkpoint.
    assert result["wal_shards"] == 3.0
    assert result["min_segment_count"] >= 1.0
    assert result["checkpoints"] >= 3.0
    assert result["down_shards"] == 0.0


def run_chaos_scenario(build):
    spec = build(seed=CHAOS_SEED)
    trace = ScenarioRunner(
        spec, target="cluster", adaptive=True, n_shards=3
    ).run()
    summary = trace.summary()
    summary["every_tick_served"] = float(
        (trace.arrivals > 0).all() and np.isfinite(trace.served).all()
    )
    summary["never_worse_cumulative"] = float(
        trace.served.sum() <= trace.default.sum() * 1.0 + 1e-9
    )
    if trace.adaptive_report is not None:
        summary["responses"] = trace.adaptive_report.get("responses", 0.0)
    return spec.name, summary


def test_chaos_scenarios_hold_the_guarantee(benchmark):
    def both():
        return dict(
            run_chaos_scenario(build)
            for build in (kill_shard_mid_drift, restart_during_flash_crowd)
        )

    result = run_once(benchmark, both)
    RESULTS["scenarios"] = result
    print(f"\n=== Chaos scenarios (seed {CHAOS_SEED}) ===")
    for name, summary in result.items():
        print(
            f"  {name:<28} improvement={summary['mean_improvement']:.1%} "
            f"served_ok={summary['every_tick_served']:.0f} "
            f"never_worse={summary['never_worse_cumulative']:.0f}"
        )
    for name, summary in result.items():
        assert summary["every_tick_served"] == 1.0, name
        assert summary["never_worse_cumulative"] == 1.0, name
        assert summary["mean_improvement"] > 0.0, name
