"""Figure 10: % of queries whose optimal hint changes as the data ages."""

from _bench_utils import run_once

from repro.experiments.figures import figure10_incremental_drift
from repro.experiments.reporting import format_table


def test_figure10_incremental_drift(benchmark):
    result = run_once(benchmark, figure10_incremental_drift, scale=0.05, seed=0)
    rows = [
        [interval, f"{expected * 100:.1f}%", f"{simulated * 100:.1f}%"]
        for interval, expected, simulated in zip(
            result["intervals"], result["expected"], result["simulated"]
        )
    ]
    print("\n=== Figure 10: optimal-hint drift vs data age ===")
    print(format_table(["interval", "paper", "simulated"], rows))
    # Drift grows with the interval and the two-year point is ~21%.
    assert result["simulated"] == sorted(result["simulated"]) or all(
        abs(a - b) < 0.05 for a, b in zip(result["simulated"], sorted(result["simulated"]))
    )
    assert abs(result["simulated"][-1] - 0.21) < 0.08
