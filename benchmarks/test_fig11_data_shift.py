"""Figure 11: recovery after a complete two-year data shift on Stack."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure11_data_shift


def test_figure11_data_shift(benchmark):
    result = run_once(
        benchmark, figure11_data_shift, scale=0.04, batch_size=10, seed=0,
        pre_shift_multiplier=2.0,
    )
    checkpoints = np.asarray(result["checkpoints"]) / result["default_total"]
    series = {
        name: payload["latencies"]
        for name, payload in result.items()
        if isinstance(payload, dict) and "latencies" in payload
    }
    print_series(
        "Figure 11 (Stack 2017 -> 2019 data shift): total latency (s)",
        series,
        checkpoints,
    )
    carried = result["limeqo (data shift)"]["carried_over_latency"]
    print(f"latency served with re-verified 2017 hints before new exploration: {carried:.1f} s "
          f"(default {result['default_total']:.1f} s)")
    # Carrying over the old hints already beats the new default, and the
    # shifted run ends close to a fresh LimeQO run on the 2019 data.
    assert carried <= result["default_total"] * 1.001
    fresh = series["limeqo"][-1]
    shifted = series["limeqo (data shift)"][-1]
    assert shifted <= fresh * 1.15
