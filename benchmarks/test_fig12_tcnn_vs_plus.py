"""Figure 12: pure TCNN vs the transductive TCNN (LimeQO+) on CEB."""

import numpy as np
from _bench_utils import BENCH_TCNN_CONFIG, print_series, run_once

from repro.experiments.figures import figure12_tcnn_vs_limeqo_plus


def test_figure12_tcnn_vs_limeqo_plus(benchmark):
    result = run_once(
        benchmark,
        figure12_tcnn_vs_limeqo_plus,
        scale=0.02,
        batch_size=10,
        seed=0,
        budget_multiplier=1.0,
        tcnn_config=BENCH_TCNN_CONFIG,
    )
    checkpoints = np.asarray(result["checkpoints"]) / result["default_total"]
    series = {
        "tcnn": result["tcnn"]["latencies"],
        "limeqo+": result["limeqo+"]["latencies"],
        "optimal": [result["optimal_total"]] * len(checkpoints),
    }
    print_series("Figure 12 (CEB): TCNN vs LimeQO+ latency (s)", series, checkpoints)
    # The embeddings should not hurt: LimeQO+ ends at or below the pure TCNN.
    assert series["limeqo+"][-1] <= series["tcnn"][-1] * 1.10
    assert series["limeqo+"][-1] < result["default_total"]
