"""Figure 13: overhead of the pure TCNN vs the transductive TCNN."""

from _bench_utils import BENCH_TCNN_CONFIG, print_series, run_once

from repro.experiments.figures import figure13_overhead_tcnn


def test_figure13_overhead_tcnn(benchmark):
    result = run_once(
        benchmark,
        figure13_overhead_tcnn,
        scale=0.02,
        batch_size=10,
        seed=0,
        budget_multiplier=1.0,
        tcnn_config=BENCH_TCNN_CONFIG,
    )
    series = {
        "tcnn": result["tcnn"]["overheads"],
        "limeqo+": result["limeqo+"]["overheads"],
    }
    print_series(
        "Figure 13 (CEB): cumulative overhead (s) vs exploration time (s)",
        series,
        result["checkpoints"],
        x_label="exploration time (s)",
        fmt="{:.2f}",
    )
    # The embedding layers add only modest overhead on top of the TCNN
    # (the paper reports ~20 extra minutes on top of ~50).
    assert series["limeqo+"][-1] <= series["tcnn"][-1] * 3.0 + 5.0
    assert series["limeqo+"][-1] > 0
