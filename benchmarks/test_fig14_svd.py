"""Figure 14: singular values of the CEB workload matrix vs a random matrix."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure14_singular_values


def test_figure14_singular_values(benchmark):
    result = run_once(benchmark, figure14_singular_values, scale=1.0, seed=0)
    workload_sv = np.asarray(result["workload_singular_values"])
    random_sv = np.asarray(result["random_singular_values"])
    indices = list(range(0, len(workload_sv), 5))
    series = {
        "ceb matrix": (workload_sv / workload_sv[0])[indices],
        "random matrix": (random_sv / random_sv[0])[indices],
    }
    print_series(
        "Figure 14: normalised singular values (every 5th index)",
        series,
        indices,
        x_label="singular value index",
        fmt="{:.3f}",
    )
    print(f"effective rank (95% energy): {result['effective_rank_95']}")
    # The workload matrix is effectively low rank; the random matrix is not.
    assert result["effective_rank_95"] <= 10
    assert workload_sv[5] / workload_sv[0] < random_sv[5] / random_sv[0]
