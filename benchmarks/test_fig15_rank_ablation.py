"""Figure 15: LimeQO's sensitivity to the rank hyper-parameter."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure15_rank_ablation


def test_figure15_rank_ablation(benchmark):
    result = run_once(
        benchmark, figure15_rank_ablation, ranks=(1, 2, 3, 5, 7, 9), scale=0.04,
        batch_size=10, seed=0,
    )
    multiples = np.asarray(result["checkpoints"]) / result["default_total"]
    series = {f"rank={r}": payload["latencies"] for r, payload in result["ranks"].items()}
    series["optimal"] = [result["optimal_total"]] * len(multiples)
    print_series("Figure 15: LimeQO latency (s) by rank", series, multiples)
    # Every rank improves on the default, and mid ranks (3-9) end close to
    # each other (the paper's observation that performance stabilises).
    for payload in result["ranks"].values():
        assert payload["latencies"][-1] < result["default_total"]
    finals = [result["ranks"][r]["latencies"][-1] for r in (3, 5, 7, 9)]
    # Mid ranks land in the same ballpark (the paper's stabilisation claim,
    # with slack for the small scaled-down matrix)...
    assert (max(finals) - min(finals)) / min(finals) < 0.6
    # ...and the best mid rank is at least as good as rank 1.
    assert min(finals) <= result["ranks"][1]["latencies"][-1] * 1.05
