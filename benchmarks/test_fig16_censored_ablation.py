"""Figure 16: the censored technique vs plain ALS."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure16_censored_ablation


def test_figure16_censored_ablation(benchmark):
    result = run_once(
        benchmark, figure16_censored_ablation, scale=0.04, batch_size=10, seed=0,
        include_neural=False,
    )
    multiples = np.asarray(result["checkpoints"]) / result["default_total"]
    series = {
        "limeqo": result["limeqo"]["latencies"],
        "limeqo (no censoring)": result["limeqo (no censoring)"]["latencies"],
        "optimal": [result["optimal_total"]] * len(multiples),
    }
    print_series("Figure 16: censored vs uncensored LimeQO latency (s)", series, multiples)
    # Censoring never hurts the final result materially.
    assert series["limeqo"][-1] <= series["limeqo (no censoring)"][-1] * 1.10
    assert series["limeqo"][-1] < result["default_total"]
