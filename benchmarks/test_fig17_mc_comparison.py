"""Figure 17: nuclear norm vs SVT vs ALS on the JOB workload matrix."""

import numpy as np
from _bench_utils import run_once

from repro.experiments.figures import figure17_mc_comparison
from repro.experiments.reporting import format_table


def test_figure17_mc_comparison(benchmark):
    result = run_once(
        benchmark, figure17_mc_comparison,
        fill_fractions=(0.1, 0.15, 0.2, 0.25, 0.3), scale=1.0, seed=0,
    )
    rows = []
    for name, payload in result.items():
        for fill, mse, seconds in zip(payload["fill"], payload["mse"], payload["seconds"]):
            rows.append([name, f"{fill:.2f}", f"{mse:.3e}", f"{seconds * 1000:.1f}"])
    print("\n=== Figure 17: matrix completion techniques on JOB ===")
    print(format_table(["method", "fill", "holdout MSE", "time (ms)"], rows))

    als_time = np.mean(result["als"]["seconds"])
    nuc_time = np.mean(result["nuc"]["seconds"])
    print(f"\nALS is {nuc_time / max(als_time, 1e-9):.1f}x faster than NUC on average")
    # ALS is the cheapest; NUC is accurate but slow -- the paper's trade-off.
    assert als_time < nuc_time
    # ALS accuracy is in the same ballpark as (or better than) SVT at the
    # denser fills, where both are defined.
    als_mse = result["als"]["mse"][-1]
    svt_mse = result["svt"]["mse"][-1]
    assert np.isfinite(als_mse)
    assert als_mse <= svt_mse * 5 or not np.isfinite(svt_mse)
