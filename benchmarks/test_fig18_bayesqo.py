"""Figure 18: workload-level LimeQO vs per-query BayesQO on JOB."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure18_bayesqo


def test_figure18_bayesqo(benchmark):
    result = run_once(
        benchmark, figure18_bayesqo, scale=1.0, per_query_budget=3.0,
        batch_size=5, seed=0,
    )
    budget = result["total_budget"]
    fractions = np.linspace(0.0, 1.0, 9)

    def sample(curve):
        times = np.asarray(curve["times"])
        lats = np.asarray(curve["latencies"])
        out = []
        for frac in fractions:
            idx = np.searchsorted(times, frac * budget, side="right") - 1
            out.append(lats[max(idx, 0)])
        return out

    series = {
        "bayesqo": sample(result["bayesqo"]),
        "limeqo": sample(result["limeqo"]),
        "optimal": [result["optimal_total"]] * len(fractions),
    }
    print_series(
        "Figure 18 (JOB): total latency (s) vs offline optimisation time",
        series,
        fractions * budget,
        x_label="offline time (s)",
    )
    # LimeQO, allocating the same total budget across the workload, ends at
    # or below BayesQO's per-query even split.
    assert series["limeqo"][-1] <= series["bayesqo"][-1] * 1.02
    assert series["limeqo"][-1] < result["default_total"]
