"""Figure 5: total latency vs offline exploration time, 6 methods x 4 workloads."""

import numpy as np
from _bench_utils import BENCH_TCNN_CONFIG, print_series, run_once

from repro.experiments.figures import figure5_performance

# Per-workload scales keep each matrix around 50-120 queries so the neural
# policies remain tractable; the x-axis is still [1/4 ... 4] x default time.
SCALES = {"ceb": 0.02, "job": 0.5, "stack": 0.01, "dsb": 0.06}
POLICIES = ("qo-advisor", "bao-cache", "random", "greedy", "limeqo", "limeqo+")


def run_all():
    results = {}
    for name, scale in SCALES.items():
        results.update(
            figure5_performance(
                workload_names=(name,),
                scale=scale,
                policies=POLICIES,
                batch_size=10,
                seed=0,
                tcnn_config=BENCH_TCNN_CONFIG,
                max_steps=40,
            )
        )
    return results


def test_figure5_performance(benchmark):
    results = run_once(benchmark, run_all)
    multiples = [0.25, 0.5, 1.0, 2.0, 4.0]
    for workload, payload in results.items():
        series = {
            policy: payload["policies"][policy]["latencies"] for policy in POLICIES
        }
        series["optimal"] = [payload["optimal_total"]] * len(multiples)
        print_series(
            f"Figure 5 ({workload}): total latency (s) vs exploration time",
            series,
            multiples,
        )
        default = payload["default_total"]
        optimal = payload["optimal_total"]
        limeqo = np.asarray(payload["policies"]["limeqo"]["latencies"])
        random_ = np.asarray(payload["policies"]["random"]["latencies"])
        greedy = np.asarray(payload["policies"]["greedy"]["latencies"])
        # Shape checks: LimeQO improves on the default, never loses to the
        # oracle, and beats Random/Greedy by the 2x-default checkpoint.
        assert limeqo[-1] < default
        assert limeqo[-1] >= optimal - 1e-6
        assert limeqo[3] <= min(random_[3], greedy[3]) * 1.10
