"""Figure 6: latency vs exploration time curves on CEB."""

import numpy as np
from _bench_utils import BENCH_TCNN_CONFIG, print_series, run_once

from repro.experiments.figures import figure6_ceb_curves

POLICIES = ("qo-advisor", "random", "greedy", "limeqo", "limeqo+")


def test_figure6_ceb_curves(benchmark):
    result = run_once(
        benchmark,
        figure6_ceb_curves,
        scale=0.03,
        policies=POLICIES,
        budget_multiplier=2.0,
        batch_size=10,
        seed=0,
        tcnn_config=BENCH_TCNN_CONFIG,
    )
    default = result["default_total"]
    optimal = result["optimal_total"]
    # Sample every curve at shared fractions of the budget for the printout.
    fractions = np.linspace(0.0, 2.0, 9)
    series = {}
    for policy, curve in result["curves"].items():
        times = np.asarray(curve["times"])
        lats = np.asarray(curve["latencies"])
        samples = []
        for frac in fractions:
            idx = np.searchsorted(times, frac * default, side="right") - 1
            samples.append(lats[max(idx, 0)])
        series[policy] = samples
    series["optimal"] = [optimal] * len(fractions)
    print_series("Figure 6 (CEB): latency (s) vs exploration time", series, fractions)

    limeqo_final = series["limeqo"][-1]
    random_final = series["random"][-1]
    assert limeqo_final <= random_final * 1.05
    assert all(
        b <= a + 1e-9
        for a, b in zip(result["curves"]["limeqo"]["latencies"],
                        result["curves"]["limeqo"]["latencies"][1:])
    )
