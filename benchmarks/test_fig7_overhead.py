"""Figure 7: cumulative model overhead, LimeQO vs LimeQO+ (and a GPU estimate)."""

from _bench_utils import BENCH_TCNN_CONFIG, print_series, run_once

from repro.experiments.figures import figure7_overhead


def test_figure7_overhead(benchmark):
    result = run_once(
        benchmark,
        figure7_overhead,
        scale=0.025,
        batch_size=10,
        seed=0,
        budget_multiplier=1.5,
        tcnn_config=BENCH_TCNN_CONFIG,
    )
    checkpoints = result["checkpoints"]
    series = {
        "limeqo": result["limeqo"]["overheads"],
        "limeqo+": result["limeqo+"]["overheads"],
        "limeqo+(gpu-estimate)": result["limeqo+(gpu-estimate)"]["overheads"],
    }
    print_series(
        "Figure 7 (CEB): cumulative model overhead (s) vs exploration time (s)",
        series,
        checkpoints,
        x_label="exploration time (s)",
        fmt="{:.2f}",
    )
    print(f"overhead ratio limeqo+ / limeqo: {result['overhead_ratio']:.0f}x "
          "(paper reports ~360x with PyTorch on the full CEB matrix)")
    # The neural method's overhead must dwarf the linear method's.
    assert result["overhead_ratio"] > 10
    assert series["limeqo"][-1] < 5.0
