"""Figure 8: Greedy vs LimeQO after adding an ETL query to Stack."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure8_etl


def test_figure8_etl_query(benchmark):
    result = run_once(
        benchmark, figure8_etl, scale=0.03, batch_size=10, seed=0,
        budget_multiplier=2.0,
    )
    checkpoints = np.asarray(result["checkpoints"]) / result["default_total"]
    series = {
        "greedy": result["greedy"]["latencies"],
        "limeqo": result["limeqo"]["latencies"],
    }
    print_series(
        "Figure 8 (Stack + ETL query): total latency (s)", series, checkpoints
    )
    # LimeQO learns the ETL query has no headroom; Greedy keeps probing it,
    # so LimeQO is at least as good by the end of the budget.
    assert series["limeqo"][-1] <= series["greedy"][-1] * 1.05
