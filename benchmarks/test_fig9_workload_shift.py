"""Figure 9: 30% of the CEB queries arrive two hours into exploration."""

import numpy as np
from _bench_utils import print_series, run_once

from repro.experiments.figures import figure9_workload_shift


def test_figure9_workload_shift(benchmark):
    result = run_once(
        benchmark, figure9_workload_shift, scale=0.04, batch_size=10, seed=0,
        initial_fraction=0.7, budget_multiplier=2.0,
    )
    checkpoints = np.asarray(result["checkpoints"]) / result["default_total"]
    series = {
        name: payload["latencies"]
        for name, payload in result.items()
        if isinstance(payload, dict) and "latencies" in payload
    }
    print_series(
        "Figure 9 (CEB, workload shift): total latency (s)", series, checkpoints
    )
    # LimeQO with the shift recovers: by the end of the budget it is close to
    # (or better than) Greedy without any shift, and clearly better than
    # Greedy facing the same shift.
    assert series["limeqo (with shift)"][-1] <= series["greedy (with shift)"][-1] * 1.05
    assert series["limeqo (with shift)"][-1] <= result["default_total"]
