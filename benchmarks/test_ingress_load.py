"""Closed-loop load test of the asyncio ingress (request coalescing).

Four acceptance properties of the front door, exercised end-to-end:

* **Knee**: a closed-loop concurrency sweep (M clients, each awaiting its
  own requests back-to-back) traces the throughput/p99 curve -- batches
  only form once concurrency rises, so throughput must climb well past
  the single-client point before latency takes off.
* **Coalescing win**: the coalesced path serves the same stream at >= 5x
  the per-request throughput of one-at-a-time async serving (awaiting
  each ``serve()`` before issuing the next).
* **Identity**: decisions answered through the ingress are byte-identical
  to the synchronous ``ServingService`` batch path on replayed
  scenario-engine traffic (same ``decisions_blob``).
* **Shedding**: a burst beyond ``queue_capacity`` degrades the overflow
  to default-plan answers -- no errors -- and the shed count shows up in
  both the ingress and the backend stats.
* **Telemetry**: the same stream served with telemetry *enabled* returns
  identical decisions, and the collected snapshot (per-stage latency
  histograms, trace ring, ingress/serving stats) is written out as the
  ``TELEMETRY_ingress.json`` CI artifact.

Run with ``pytest benchmarks/test_ingress_load.py --benchmark-only``.
"""

import asyncio
import time

import numpy as np
from _bench_utils import run_once, write_bench_json

from repro.config import IngressConfig
from repro.experiments.serving import explored_matrix
from repro.ingress import ServiceIngress
from repro.scenarios import ScenarioRunner
from repro.scenarios.primitives import sudden_workload_shift
from repro.scenarios.runner import _ServiceTarget
from repro.serving import ServingService
from repro.serving.batch_cache import BatchDecisions
from repro.workloads.matrices import generate_workload
from repro.workloads.spec import CEB_SPEC

N_REQUESTS = 3000
SWEEP_CLIENTS = (1, 4, 16, 64, 256)


def _service(scale=0.1, fill=0.4):
    workload = generate_workload(CEB_SPEC.scaled(scale), seed=0)
    matrix = explored_matrix(workload, observed_fraction=fill, seed=1)
    return ServingService(matrix)


def _queries(n_queries, n=N_REQUESTS, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_queries, size=n).tolist()


# -- offered-load sweep: the throughput/p99 knee ---------------------------------


def _closed_loop_point(service, queries, n_clients, config):
    """M closed-loop clients, each awaiting its own slice back-to-back."""
    per_client = [queries[i::n_clients] for i in range(n_clients)]
    latencies = []

    async def client(ingress, slice_):
        for query in slice_:
            t0 = time.perf_counter()
            decision = await ingress.serve(query)
            latencies.append(time.perf_counter() - t0)
            assert not decision.shed

    async def drive():
        async with ServiceIngress(service, config) as ingress:
            t0 = time.perf_counter()
            await asyncio.gather(
                *(client(ingress, s) for s in per_client if s)
            )
            elapsed = time.perf_counter() - t0
            return elapsed, ingress.stats()

    elapsed, stats = asyncio.run(drive())
    lat = np.asarray(latencies)
    return {
        "clients": n_clients,
        "throughput_qps": len(queries) / elapsed,
        "p50_latency_us": float(np.percentile(lat, 50) * 1e6),
        "p99_latency_us": float(np.percentile(lat, 99) * 1e6),
        "mean_batch_size": stats.mean_batch_size,
    }


def _run_sweep():
    config = IngressConfig(
        max_batch=256, max_wait_s=0.001, queue_capacity=4096
    )
    service = _service()
    queries = _queries(service.matrix.n_queries)
    return [
        _closed_loop_point(service, queries, m, config)
        for m in SWEEP_CLIENTS
    ]


def test_ingress_throughput_knee(benchmark):
    points = run_once(benchmark, _run_sweep)

    print("\n=== Ingress closed-loop sweep (coalesced, max_batch=256) ===")
    print(f"{'clients':>8} {'qps':>12} {'p50 (us)':>10} {'p99 (us)':>10} {'batch':>7}")
    for p in points:
        print(
            f"{p['clients']:>8} {p['throughput_qps']:>12,.0f} "
            f"{p['p50_latency_us']:>10.1f} {p['p99_latency_us']:>10.1f} "
            f"{p['mean_batch_size']:>7.1f}"
        )

    path = write_bench_json("ingress_sweep", {"points": points})
    print(f"wrote {path}")

    by_clients = {p["clients"]: p for p in points}
    best = max(p["throughput_qps"] for p in points)
    # Closed-loop, one in flight per client: batches only form with
    # concurrency, so peak throughput must sit well above the M=1 point
    # (the knee exists) and batches must actually have coalesced there.
    assert best >= 2.0 * by_clients[1]["throughput_qps"]
    peak = max(points, key=lambda p: p["throughput_qps"])
    assert peak["clients"] > 1
    assert peak["mean_batch_size"] > 2.0


# -- coalescing >= 5x one-at-a-time async serving --------------------------------


def _run_speedup():
    service = _service()
    queries = _queries(service.matrix.n_queries)
    results = {}

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            times.append(fn())
        return min(times)

    def coalesced_once():
        svc_cfg = IngressConfig(
            max_batch=256, max_wait_s=0.001, queue_capacity=len(queries)
        )

        async def drive():
            async with ServiceIngress(service, svc_cfg) as ingress:
                return await ingress.serve_many(queries)

        t0 = time.perf_counter()
        res = asyncio.run(drive())
        elapsed = time.perf_counter() - t0
        assert len(res) == len(queries) and not any(r.shed for r in res)
        return elapsed

    def one_at_a_time_once():
        # max_wait_s=0: every arrival is immediately due, so the serial
        # client never sits out the SLO window -- it pays exactly one
        # dispatch per request, the honest un-coalesced cost.
        svc_cfg = IngressConfig(max_batch=1, max_wait_s=0.0, queue_capacity=1)

        async def drive():
            async with ServiceIngress(service, svc_cfg) as ingress:
                return [await ingress.serve(q) for q in queries]

        t0 = time.perf_counter()
        res = asyncio.run(drive())
        elapsed = time.perf_counter() - t0
        assert len(res) == len(queries) and not any(r.shed for r in res)
        return elapsed

    coalesced = best_of(coalesced_once)
    serial = best_of(one_at_a_time_once)
    results["coalesced_qps"] = len(queries) / coalesced
    results["one_at_a_time_qps"] = len(queries) / serial
    results["speedup"] = serial / coalesced
    results["requests"] = len(queries)
    return results


def test_ingress_coalescing_speedup(benchmark):
    result = run_once(benchmark, _run_speedup)
    print("\n=== Coalesced vs one-at-a-time async serving ===")
    print(
        f"coalesced      {result['coalesced_qps']:>12,.0f} qps\n"
        f"one-at-a-time  {result['one_at_a_time_qps']:>12,.0f} qps\n"
        f"speedup        {result['speedup']:.1f}x over {result['requests']} requests"
    )
    path = write_bench_json("ingress_speedup", result)
    print(f"wrote {path}")
    assert result["speedup"] >= 5.0


# -- byte-identity with sync serving on scenario traffic -------------------------


class _IngressServiceTarget(_ServiceTarget):
    """Scenario target whose serve() path runs through the asyncio ingress.

    Everything else (registration, observation, refresh cadence) is
    inherited unchanged, so any divergence in the trace is the ingress's
    doing.  Background tickers are effectively disabled (hour-long
    intervals): the identity claim is about the request path, and refresh
    timing is the scenario driver's job in both runs.
    """

    def __init__(self, worlds, n_hints, als_config, refresh_iterations):
        super().__init__(worlds, n_hints, als_config, refresh_iterations)
        self._loop = asyncio.new_event_loop()
        self._ingress = None
        self._config = IngressConfig(
            max_batch=64,
            max_wait_s=0.0005,
            queue_capacity=8192,
            tick_interval_s=3600.0,
            refresh_interval_s=3600.0,
        )

    def _ensure_ingress(self):
        if self._ingress is None:
            self._ingress = ServiceIngress(self.service, self._config)
            self._loop.run_until_complete(self._ingress.start())
        return self._ingress

    def serve(self, tenant, local_queries):
        ingress = self._ensure_ingress()
        rows = self._rows[tenant][np.asarray(local_queries, dtype=np.int64)]
        answers = self._loop.run_until_complete(
            ingress.serve_many([int(r) for r in rows])
        )
        assert not any(a.shed for a in answers)
        return BatchDecisions(
            queries=rows,
            hints=np.asarray([a.hint for a in answers], dtype=np.int64),
            used_default=np.asarray([a.used_default for a in answers], dtype=bool),
            expected_latency=np.asarray(
                [a.expected_latency for a in answers], dtype=float
            ),
        )

    def close(self):
        if self._ingress is not None:
            self._loop.run_until_complete(self._ingress.stop())
        self._loop.close()


def _run_identity():
    spec = sudden_workload_shift(seed=3)
    sync_trace = ScenarioRunner(spec, adaptive=False).run()

    targets = []

    def factory(worlds):
        target = _IngressServiceTarget(
            worlds, spec.tenants[0].n_hints, ScenarioRunner(spec).als_config, 3
        )
        targets.append(target)
        return target

    ingress_trace = ScenarioRunner(spec, target=factory, adaptive=False).run()
    for target in targets:
        target.close()

    return {
        "scenario": spec.name,
        "decisions": float(sync_trace.arrivals.sum()),
        "identical": float(
            sync_trace.decisions_blob() == ingress_trace.decisions_blob()
        ),
        "sync_served_latency": sync_trace.summary()["served_latency"],
        "ingress_served_latency": ingress_trace.summary()["served_latency"],
    }


def test_ingress_decisions_match_sync_path(benchmark):
    result = run_once(benchmark, _run_identity)
    print(
        f"\n=== Ingress vs sync decisions on '{result['scenario']}' ===\n"
        f"{result['decisions']:.0f} decisions, "
        f"identical={bool(result['identical'])}"
    )
    path = write_bench_json("ingress_identity", result)
    print(f"wrote {path}")
    assert result["identical"] == 1.0, "ingress decisions diverged from sync serving"
    assert result["sync_served_latency"] == result["ingress_served_latency"]


# -- telemetry on the request path: identical decisions + snapshot artifact ------


def _run_telemetry():
    from repro.telemetry import Telemetry, collect_snapshot, write_telemetry_json

    plain = _service()
    queries = _queries(plain.matrix.n_queries)
    config = IngressConfig(
        max_batch=256, max_wait_s=0.001, queue_capacity=len(queries)
    )
    telemetry = Telemetry.enabled()
    traced = ServingService(
        explored_matrix(
            generate_workload(CEB_SPEC.scaled(0.1), seed=0),
            observed_fraction=0.4,
            seed=1,
        ),
        telemetry=telemetry,
    )

    async def drive(service, snapshot_with=None):
        async with ServiceIngress(service, config) as ingress:
            answers = await ingress.serve_many(queries)
            snap = None
            if snapshot_with is not None:
                # Collected while the ingress is still up so the snapshot
                # includes its queue/batch stats alongside the registry.
                snap = collect_snapshot(
                    snapshot_with, service=service, ingress=ingress
                )
            return answers, snap

    plain_answers, _ = asyncio.run(drive(plain))
    traced_answers, snapshot = asyncio.run(drive(traced, snapshot_with=telemetry))
    identical = float(
        len(plain_answers) == len(traced_answers)
        and all(
            a.hint == b.hint
            and a.used_default == b.used_default
            and a.expected_latency == b.expected_latency
            for a, b in zip(plain_answers, traced_answers)
        )
    )
    path = write_telemetry_json("ingress", snapshot)
    payload = snapshot.as_dict()
    stages = payload["metrics"]["repro_stage_seconds"]["children"]
    return {
        "path": path,
        "requests": len(queries),
        "identical": identical,
        "stages": sorted(stages),
        "stage_observations": float(sum(s["count"] for s in stages.values())),
        "finished_traces": float(payload["traces"]["finished_traces"]),
        "ring_traces": float(len(payload["traces"]["ring"])),
        "served_decisions": float(payload["serving"]["decisions"]),
    }


def test_ingress_telemetry_identity_and_artifact(benchmark):
    result = run_once(benchmark, _run_telemetry)
    print(
        f"\n=== Telemetry-enabled ingress ===\n"
        f"wrote {result['path']}\n"
        f"{result['requests']} requests, identical={bool(result['identical'])}, "
        f"stages {result['stages']} "
        f"({result['stage_observations']:.0f} observations, "
        f"{result['finished_traces']:.0f} traces)"
    )
    # Instrumentation must not change a single decision.
    assert result["identical"] == 1.0
    # Every pipeline stage the ingress path crosses shows up in the
    # per-stage histograms, and the trace ring retained recent requests.
    for stage in ("ingress.flush", "shard.serve", "cache.lookup"):
        assert stage in result["stages"], result["stages"]
    assert result["stage_observations"] > 0
    assert result["finished_traces"] > 0
    assert result["ring_traces"] > 0
    assert result["served_decisions"] == result["requests"]


# -- overload: shed to default plans, never error --------------------------------


def _run_overload():
    service = _service()
    n = 2000
    capacity = 128
    queries = _queries(service.matrix.n_queries, n=n, seed=11)
    config = IngressConfig(
        max_batch=64, max_wait_s=0.001, queue_capacity=capacity
    )

    async def drive():
        async with ServiceIngress(service, config) as ingress:
            answers = await ingress.serve_many(queries)
            return answers, ingress.stats()

    answers, stats = asyncio.run(drive())
    shed = [a for a in answers if a.shed]
    return {
        "requests": n,
        "queue_capacity": capacity,
        "answered": len(answers),
        "shed": len(shed),
        "shed_all_default": float(all(a.used_default for a in shed)),
        "ingress_stats_shed": stats.shed,
        "service_stats_shed": service.stats().shed,
        "max_queue_depth": stats.max_queue_depth,
    }


def test_ingress_overload_sheds_to_default_plans(benchmark):
    result = run_once(benchmark, _run_overload)
    print(
        f"\n=== Overload: {result['requests']} requests vs "
        f"capacity {result['queue_capacity']} ===\n"
        f"answered {result['answered']}, shed {result['shed']} "
        f"(max depth {result['max_queue_depth']})"
    )
    path = write_bench_json("ingress_overload", result)
    print(f"wrote {path}")
    # Every arrival is answered; overflow degrades to the default plan
    # (the no-regression anchor) and is counted, never errored.
    assert result["answered"] == result["requests"]
    assert result["shed"] > 0
    assert result["shed_all_default"] == 1.0
    assert result["ingress_stats_shed"] == result["shed"]
    assert result["service_stats_shed"] == result["shed"]
    assert result["max_queue_depth"] <= result["queue_capacity"]
