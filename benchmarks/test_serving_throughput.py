"""Serving throughput: batched decisions vs the per-query online path.

Serves an identical random arrival stream (batch size 256) through the
scalar :class:`PlanCache` loop and through :class:`ServingService`'s
vectorised path on a CEB-scale matrix, printing decisions/sec, latency
percentiles, and the speedup.  Acceptance: batched serving is at least 5x
the per-query loop with cell-for-cell identical decisions.
"""

from _bench_utils import run_once, write_bench_json

from repro.experiments.reporting import format_table
from repro.experiments.serving import serving_throughput_comparison
from repro.workloads.matrices import generate_workload
from repro.workloads.spec import CEB_SPEC


def test_serving_throughput(benchmark):
    workload = generate_workload(CEB_SPEC.scaled(0.65), seed=0)  # ~2k queries
    result = run_once(
        benchmark,
        serving_throughput_comparison,
        workload,
        batch_size=256,
        n_batches=64,
        observed_fraction=0.25,
        seed=0,
    )
    print("\n=== Serving throughput (CEB-scale matrix, batch size 256) ===")
    print(
        format_table(
            ["path", "decisions/sec", "p50 latency (us)", "p99 latency (us)"],
            [
                ["per-query loop", f"{result['per_query_qps']:,.0f}", "-", "-"],
                [
                    "batched serving",
                    f"{result['batched_qps']:,.0f}",
                    f"{result['p50_latency_us']:.2f}",
                    f"{result['p99_latency_us']:.2f}",
                ],
            ],
        )
    )
    print(
        f"speedup: {result['speedup']:.1f}x over "
        f"{result['decisions']:.0f} decisions on a "
        f"{result['queries']:.0f}x{result['hints']:.0f} matrix "
        f"(hit rate {result['non_default_fraction']:.1%})"
    )
    path = write_bench_json("serving", result)
    print(f"wrote {path}")
    assert result["identical"] == 1.0, "batched decisions diverged from per-query"
    assert result["speedup"] >= 5.0
    assert result["batched_qps"] > result["per_query_qps"]
