"""Table 1: workload summary (Default vs Optimal totals, headroom)."""

from _bench_utils import run_once

from repro.experiments.figures import table1_workload_summary
from repro.experiments.reporting import format_table


def test_table1_workload_summary(benchmark):
    result = run_once(benchmark, table1_workload_summary, scale=1.0, seed=0)
    rows = []
    for name, row in result.items():
        rows.append(
            [
                name,
                row["n_queries"],
                f"{row['default_total_s']:.0f}",
                f"{row['optimal_total_s']:.0f}",
                f"{row['headroom']:.2f}",
                f"{row['paper_default_s']:.0f}",
                f"{row['paper_optimal_s']:.0f}",
                f"{row['exhaustive_exploration_s'] / 86400:.1f}",
            ]
        )
    print("\n=== Table 1: workloads (measured vs paper) ===")
    print(
        format_table(
            [
                "workload",
                "queries",
                "default(s)",
                "optimal(s)",
                "headroom",
                "paper default(s)",
                "paper optimal(s)",
                "exhaustive (days)",
            ],
            rows,
        )
    )
    # Shape checks: calibration matches the paper's totals and headroom.
    for name, row in result.items():
        assert abs(row["default_total_s"] - row["paper_default_s"]) / row["paper_default_s"] < 0.05
        assert abs(row["optimal_total_s"] - row["paper_optimal_s"]) / row["paper_optimal_s"] < 0.10
    # Exhaustively executing CEB takes on the order of days (the "12 days").
    assert result["ceb"]["exhaustive_exploration_s"] > 5 * result["ceb"]["default_total_s"]
