"""Drift-aware adaptive serving: a data shift hits a live service.

Tells the Figures 10-11 story end to end, twice:

1. a *static snapshot cache* is bootstrapped, serves happily, then the
   data under it drifts -- and its stale verified plans quietly regress;
2. the same scenario with the adaptation controller attached: windowed
   residuals flag the drift, stale rows are invalidated back to the
   default plan, their defaults are re-measured, a budgeted Algorithm-1
   re-exploration wins the headroom back, and the warm ALS completion
   catches up -- all off the serve path.

Run with:  python examples/adaptive_demo.py
"""

from repro.experiments.adaptive import adaptive_vs_static_comparison
from repro.scenarios import ScenarioRunner, standard_scenarios


def main() -> None:
    spec = standard_scenarios(seed=0)["flash_crowd"]
    print(f"Scenario: {spec.describe()}")
    disturbance = spec.first_disturbance_tick()
    print(f"Data drift lands at tick {disturbance} "
          f"(with a 4x flash-crowd burst on top)\n")

    # -- the two runs (identical traffic and ground truth) -------------------
    static = ScenarioRunner(spec, adaptive=False).run()
    adaptive = ScenarioRunner(spec, adaptive=True).run()

    print("tick  phase   static-imprv  adaptive-imprv")
    for tick in range(0, spec.total_ticks, 2):
        marker = "  <-- drift" if tick == disturbance else ""
        print(f"{tick:4d}  {static.ticks[tick].phase:<7s}"
              f"{static.improvement()[tick]:11.1%}"
              f"{adaptive.improvement()[tick]:15.1%}{marker}")

    report = adaptive.adaptive_report
    print(f"\nController: {report['responses']:.0f} response(s) + "
          f"{report['recovery_passes']:.0f} recovery pass(es), "
          f"{report['invalidated_rows']:.0f} rows invalidated, "
          f"{report['remeasured_cells']:.0f} defaults re-anchored, "
          f"{report['explored_cells']:.0f} cells re-explored")

    # -- the acceptance-style metrics ---------------------------------------
    metrics = adaptive_vs_static_comparison(spec)
    print(f"\nPost-drift improvement: static {metrics['static_post_improvement']:.1%} "
          f"vs adaptive {metrics['adaptive_post_improvement']:.1%} "
          f"(pre-drift plateau {metrics['pre_improvement']:.1%})")
    print(f"Recovery of the static regression: {metrics['recovery']:.0%}")
    print(f"Never worse than always-default:   "
          f"{bool(metrics['never_worse_than_default'])}")
    print(f"Replay with the same seed is byte-identical: "
          f"{bool(metrics['replay_identical'])}")


if __name__ == "__main__":
    main()
