"""Sharded multi-tenant serving: a cluster day in four acts.

1. two tenants register their workloads; rendezvous routing spreads their
   rows across four shards with per-tenant namespaces,
2. a heavy mixed-tenant arrival stream fans out as one vectorised
   sub-batch per shard and regathers in arrival order -- decisions are
   identical to a single service over each tenant's union matrix,
3. feedback streams back, the background scheduler budgets warm ALS
   refreshes round-robin across dirty shards, and a fifth shard joins
   live (only re-routed rows migrate),
4. a shard dies: its queries degrade to default plans (no errors, no
   regressions) until it recovers.

Run with:  python examples/cluster_demo.py
"""

import numpy as np

from repro import ServingCluster, ServingService, generate_workload
from repro.config import ALSConfig
from repro.experiments.cluster import populate_cluster
from repro.experiments.serving import explored_matrix
from repro.workloads.spec import WorkloadSpec


def main() -> None:
    # -- Act 1: two tenants register their workloads -------------------------
    spec_a = WorkloadSpec(name="dash", n_queries=300, default_total=3000.0,
                          optimal_total=1200.0)
    spec_b = WorkloadSpec(name="etl", n_queries=200, default_total=2400.0,
                          optimal_total=1500.0)
    matrix_a = explored_matrix(generate_workload(spec_a, seed=0), 0.3, seed=1)
    matrix_b = explored_matrix(generate_workload(spec_b, seed=1), 0.3, seed=2)

    cluster = ServingCluster(
        n_shards=4,
        n_hints=matrix_a.n_hints,
        als_config=ALSConfig(rank=4, iterations=6, seed=0),
        refresh_budget=2,
    )
    populate_cluster(cluster, "dash", matrix_a)
    populate_cluster(cluster, "etl", matrix_b)
    cluster.drain_refreshes()  # initial cold ALS solves, off the serve path
    print(f"{cluster!r}")
    print("rows per shard:",
          {s.shard_id: s.n_rows for s in cluster.shards.values()})

    # -- Act 2: a heavy mixed-tenant stream ----------------------------------
    rng = np.random.default_rng(7)
    for _ in range(50):
        tenants = np.where(rng.random(512) < 0.6, "dash", "etl")
        queries = np.where(
            tenants == "dash",
            rng.integers(0, matrix_a.n_queries, 512),
            rng.integers(0, matrix_b.n_queries, 512),
        )
        cluster.serve_mixed(list(zip(tenants.tolist(), queries.tolist())))
    single = ServingService(matrix_a.copy())
    same = bool(np.array_equal(cluster.serve_all("dash").hints,
                               single.serve_all().hints))
    stats = cluster.stats()
    print(f"\nserved {stats.cluster.decisions} decisions "
          f"(fan-out {stats.fan_out:.1f} sub-batches/batch, "
          f"hit rate {stats.cluster.non_default_fraction:.1%})")
    print(f"identical to a single service over the union matrix: {same}")
    print(f"parallel-model aggregate: {stats.parallel_qps:,.0f} decisions/sec")

    # -- Act 3: feedback, background refreshes, live shard addition -----------
    improvable = np.nonzero(cluster.serve_all("dash").used_default)[0][:40]
    best = matrix_a.values.argmin(axis=1)[improvable]
    cluster.observe_batch("dash", improvable, best,
                          matrix_a.values[improvable, best])
    print(f"\ndirty shards after feedback: {cluster.scheduler.dirty_shards()}")
    print(f"background refreshes run: {cluster.drain_refreshes()} "
          f"(serve batches never waited)")
    before = cluster.serve_all("etl")
    cluster.add_shard()
    after = cluster.serve_all("etl")
    stats = cluster.stats()
    print(f"added shard live: {stats.rebalanced_rows} rows migrated, "
          f"decisions unchanged: {bool(np.array_equal(before.hints, after.hints))}")

    # -- Act 4: failover -------------------------------------------------------
    victim = cluster.shard_ids[0]
    cluster.mark_down(victim)
    degraded = cluster.serve_all("dash")
    on_down = cluster._tenants["dash"].shard_of == victim
    print(f"\nshard {victim} down: {int(on_down.sum())} of "
          f"{matrix_a.n_queries} dash queries degraded to the default plan "
          f"(no errors, no regressions)")
    cluster.mark_up(victim)
    recovered = cluster.serve_all("dash")
    print(f"shard {victim} back up: decisions fully restored: "
          f"{bool(np.array_equal(recovered.hints, single.serve_all().hints))}")
    print(f"\nfinal: {cluster.stats()}")
    assert degraded.used_default[on_down].all()


if __name__ == "__main__":
    main()
