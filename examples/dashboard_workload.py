"""A repetitive dashboard workload served through LimeQO's online path.

This example exercises the full system of Figure 2 on the simulated DBMS
substrate: a catalog is generated, dashboard queries are planned by the
cost-based optimizer under each hint set, offline exploration runs whenever
the "DBMS is idle", and the online path serves every query with a verified
plan (never regressing against the default).

Run with:  python examples/dashboard_workload.py
"""

from repro.config import ALSConfig, ExplorationConfig
from repro.core.explorer import DatabaseOracle
from repro.core.limeqo import LimeQO
from repro.core.policies import LimeQOPolicy
from repro.workloads.generator import build_database_workload


def main() -> None:
    print("Building the simulated DBMS and a 20-query dashboard workload...")
    workload = build_database_workload(
        template_name="imdb", n_queries=20, n_hints=16, seed=7, max_relations=5
    )
    print(workload.catalog.describe())
    print(f"\nDefault workload latency : {workload.default_total:8.2f} s")
    print(f"Oracle-optimal latency   : {workload.optimal_total:8.2f} s "
          f"(headroom {workload.headroom:.2f}x)")
    print("\nExample query and its default plan:")
    print(" ", workload.queries[0].to_sql()[:110], "...")
    print(workload.enumerator.explain(workload.queries[0]))

    # Wire the online/offline system: the oracle runs plans on the simulated
    # execution engine, the policy is the linear method (censored ALS).
    oracle = DatabaseOracle(workload.executor, workload.queries, workload.hint_sets)
    system = LimeQO(
        n_hints=workload.n_hints,
        oracle=oracle,
        policy=LimeQOPolicy(als_config=ALSConfig(rank=5, iterations=15)),
        config=ExplorationConfig(batch_size=4, seed=0),
    )
    for i, query in enumerate(workload.queries):
        system.register_query(query.name,
                              default_latency=float(workload.true_latencies[i, 0]))

    print("\nOffline exploration during idle periods (2x the workload time)...")
    system.explore(time_budget=2.0 * workload.default_total)
    summary = system.summary()
    print(f"  explored cells : {summary['observed_fraction']:.1%} of the matrix")
    print(f"  exploration    : {summary['exploration_time']:.1f} s of offline execution")
    print(f"  model overhead : {summary['overhead_seconds']:.3f} s")

    cache = system.plan_cache()
    served = 0.0
    improved = 0
    for decision in cache.lookup_all():
        served += workload.true_latencies[decision.query, decision.hint]
        improved += int(not decision.used_default)
    print("\nOnline path (verified plan cache):")
    print(f"  queries served with a non-default verified hint: {improved}/{workload.n_queries}")
    print(f"  served workload latency: {served:8.2f} s "
          f"(default {workload.default_total:.2f} s, optimal {workload.optimal_total:.2f} s)")
    print(f"  no-regression guarantee holds: "
          f"{cache.verify_no_regression(workload.true_latencies)}")


if __name__ == "__main__":
    main()
