"""The asyncio front door: independent clients, coalesced batches.

A serving day seen from the edge, in four acts:

1. independent async clients each ``await ingress.serve(query)`` -- the
   ingress coalesces their concurrent requests into the vectorised
   batches the service is fast at, under a 1 ms latency SLO,
2. the same decisions are checked against the synchronous batch path
   (coalescing changes *when* a lookup runs, never *what* it returns),
3. a flash burst blows past the bounded admission queue -- the overflow
   is shed to default plans (the no-regression anchor), never errored,
   and the shed count lands in the serving stats,
4. the adaptation-controller and refresh ticks run as background asyncio
   tasks for as long as the ingress is up: no caller-driven cadence.

Run with:  python examples/ingress_demo.py
"""

import asyncio
import time

import numpy as np

from repro import (
    CEB_SPEC,
    IncrementalALSRefresher,
    IngressConfig,
    ServiceIngress,
    ServingService,
    generate_workload,
)
from repro.config import ALSConfig
from repro.experiments.serving import explored_matrix


async def closed_loop_client(ingress, queries):
    """One independent client: awaits each of its own requests in turn."""
    latencies = []
    for query in queries:
        t0 = time.perf_counter()
        await ingress.serve(int(query))
        latencies.append(time.perf_counter() - t0)
    return latencies


async def main() -> None:
    workload = generate_workload(CEB_SPEC.scaled(0.25), seed=0)
    matrix = explored_matrix(workload, observed_fraction=0.35, seed=1)
    print(f"Workload: {workload.spec.name}  "
          f"({matrix.n_queries} queries x {matrix.n_hints} hints)")

    # -- Act 1: 64 concurrent clients through the coalescing front door -----
    service = ServingService(matrix)
    rng = np.random.default_rng(1)
    n_clients, per_client = 64, 150
    streams = rng.integers(0, matrix.n_queries, size=(n_clients, per_client))

    config = IngressConfig(max_batch=256, max_wait_s=0.001)
    async with ServiceIngress(service, config) as ingress:
        start = time.perf_counter()
        latencies = await asyncio.gather(
            *(closed_loop_client(ingress, s) for s in streams)
        )
        elapsed = time.perf_counter() - start
        stats = ingress.stats()
    flat = np.concatenate(latencies)
    print(f"\n{n_clients} clients x {per_client} requests, 1 ms SLO:")
    print(f"  throughput : {n_clients * per_client / elapsed:12,.0f} decisions/sec")
    print(f"  p50 / p99  : {np.percentile(flat, 50) * 1e6:8.0f} / "
          f"{np.percentile(flat, 99) * 1e6:.0f} us")
    print(f"  {stats}")

    # -- Act 2: decisions are byte-identical to the sync batch path ---------
    probe = rng.integers(0, matrix.n_queries, size=500)
    sync_service = ServingService(explored_matrix(workload, 0.35, seed=1))
    expected = sync_service.serve_batch(probe)
    async with ServiceIngress(ServingService(
        explored_matrix(workload, 0.35, seed=1)
    ), config) as ingress:
        answers = await ingress.serve_many([int(q) for q in probe])
    identical = (
        [a.hint for a in answers] == expected.hints.tolist()
        and [a.used_default for a in answers] == expected.used_default.tolist()
        and [a.expected_latency for a in answers]
        == expected.expected_latency.tolist()
    )
    print(f"\n500 probed decisions identical to sync serve_batch: {identical}")

    # -- Act 3: a flash burst hits the bounded admission queue --------------
    burst_service = ServingService(explored_matrix(workload, 0.35, seed=1))
    tight = IngressConfig(max_batch=64, max_wait_s=0.001, queue_capacity=256)
    async with ServiceIngress(burst_service, tight) as ingress:
        burst = await ingress.serve_many(
            [int(q) for q in rng.integers(0, matrix.n_queries, size=2000)]
        )
        burst_stats = ingress.stats()
    shed = [a for a in burst if a.shed]
    print(f"\nFlash burst: 2000 arrivals vs queue capacity {tight.queue_capacity}")
    print(f"  answered   : {len(burst)} (every one -- overflow degrades, "
          f"never errors)")
    print(f"  shed       : {len(shed)} to the default plan "
          f"(all defaults: {all(a.used_default for a in shed)})")
    print(f"  visible in : ingress stats shed={burst_stats.shed}, "
          f"serving stats shed={burst_service.stats().shed}")

    # -- Act 4: control loops live on the event loop ------------------------
    ticking = ServingService(
        explored_matrix(workload, 0.35, seed=1),
        refresher=IncrementalALSRefresher(ALSConfig(), refresh_iterations=3),
    )
    fast = IngressConfig(tick_interval_s=0.01, refresh_interval_s=0.01)
    async with ServiceIngress(ticking, fast) as ingress:
        await ingress.serve_many(list(range(32)))
        await asyncio.sleep(0.06)
        ticks = ingress.stats().background_ticks
    print(f"\nBackground tasks while the ingress was up: {ticks}")
    print("(adaptation/refresh cadence now lives on the loop, "
          "not in caller code)")


if __name__ == "__main__":
    asyncio.run(main())
