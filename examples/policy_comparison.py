"""Compare all six exploration policies on one workload (Figure 5 style).

Prints total workload latency after [1/4, 1/2, 1, 2, 4] x the default
workload time of offline exploration for QO-Advisor, Bao-Cache, Random,
Greedy, LimeQO and LimeQO+, next to the Default and Optimal reference rows.

Run with:  python examples/policy_comparison.py
"""

import numpy as np

from repro import CEB_SPEC, generate_workload
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import (
    FAST_TCNN_CONFIG,
    default_checkpoints,
    run_policy_on_workload,
)

POLICIES = ("qo-advisor", "bao-cache", "random", "greedy", "limeqo", "limeqo+")


def main() -> None:
    workload = generate_workload(CEB_SPEC.scaled(0.03), seed=0)
    checkpoints = default_checkpoints(workload)
    print(f"CEB-like workload: {workload.n_queries} queries, "
          f"default {workload.default_total:.0f} s, "
          f"optimal {workload.optimal_total:.0f} s\n")

    series = {}
    for name in POLICIES:
        run = run_policy_on_workload(
            workload, name, checkpoints=checkpoints, batch_size=10, seed=0,
            tcnn_config=FAST_TCNN_CONFIG, max_steps=60,
        )
        series[name] = run.latencies
        print(f"  finished {name} "
              f"(final latency {run.latencies[-1]:.0f} s, "
              f"model overhead {run.overheads[-1]:.1f} s)")
    series["optimal"] = np.full(len(checkpoints), workload.optimal_total)

    print("\nTotal latency (s) vs offline exploration time "
          "(multiples of the default workload time):")
    print(format_series_table(series, checkpoints / workload.default_total,
                              x_label="x default", value_format="{:.1f}"))


if __name__ == "__main__":
    main()
