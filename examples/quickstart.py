"""Quickstart: offline exploration on a CEB-like workload.

Generates a calibrated synthetic workload, runs LimeQO's linear method for
half of the default workload time, and prints the resulting speedup next to
the Random and Greedy baselines and the oracle optimum.

Run with:  python examples/quickstart.py
"""

from repro import (
    CEB_SPEC,
    ExplorationSimulator,
    GreedyPolicy,
    LimeQOPolicy,
    RandomPolicy,
    generate_workload,
)
from repro.config import ExplorationConfig


def main() -> None:
    # A 5% sample of the CEB workload (157 queries x 49 hint sets), calibrated
    # so the Default / Optimal headroom matches the paper's Table 1.
    workload = generate_workload(CEB_SPEC.scaled(0.05), seed=0)
    print(f"Workload: {workload.spec.name}  "
          f"({workload.n_queries} queries x {workload.n_hints} hints)")
    print(f"  default total latency : {workload.default_total:8.1f} s")
    print(f"  oracle-optimal latency: {workload.optimal_total:8.1f} s")
    print(f"  exhaustive exploration: {workload.exhaustive_exploration_time():8.1f} s")

    simulator = ExplorationSimulator(
        workload.true_latencies, config=ExplorationConfig(batch_size=10, seed=0)
    )
    budget = 0.5 * workload.default_total
    print(f"\nExploring offline for {budget:.0f} s "
          f"(half of the default workload time)...\n")

    print(f"{'policy':10s} {'final latency':>14s} {'speedup':>8s} {'model overhead':>15s}")
    for policy in (RandomPolicy(), GreedyPolicy(), LimeQOPolicy()):
        trace = simulator.run(policy, time_budget=budget)
        speedup = workload.default_total / trace.final_latency
        print(f"{policy.name:10s} {trace.final_latency:12.1f} s "
              f"{speedup:7.2f}x {trace.overheads[-1]:13.2f} s")
    print(f"{'optimal':10s} {workload.optimal_total:12.1f} s "
          f"{workload.default_total / workload.optimal_total:7.2f}x")


if __name__ == "__main__":
    main()
