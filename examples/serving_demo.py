"""Batched online serving: heavy traffic over the verified plan cache.

Simulates a serving day in three acts:

1. offline exploration reveals part of the workload matrix,
2. the batched service answers a heavy random arrival stream and prints
   its throughput / latency / hit-rate report next to the per-query loop,
3. fresh measurements stream back in, triggering warm-started incremental
   ALS refreshes, and the service picks up the improved plans immediately.

Run with:  python examples/serving_demo.py
"""

import time

import numpy as np

from repro import (
    CEB_SPEC,
    IncrementalALSRefresher,
    LimeQOPolicy,
    MatrixOracle,
    OfflineExplorer,
    PlanCache,
    ServingService,
    WorkloadMatrix,
    generate_workload,
)
from repro.config import ALSConfig


def main() -> None:
    workload = generate_workload(CEB_SPEC.scaled(0.25), seed=0)
    print(f"Workload: {workload.spec.name}  "
          f"({workload.n_queries} queries x {workload.n_hints} hints)")

    # -- Act 1: offline exploration fills part of the matrix ----------------
    matrix = WorkloadMatrix(workload.n_queries, workload.n_hints)
    for q in range(workload.n_queries):
        matrix.observe(q, 0, float(workload.true_latencies[q, 0]))
    explorer = OfflineExplorer(
        matrix, LimeQOPolicy(), MatrixOracle(workload.true_latencies)
    )
    explorer.run(time_budget=0.3 * workload.default_total)
    print(f"After exploration: {matrix.observed_fraction():.1%} of cells verified\n")

    # -- Act 2: serve a heavy arrival stream --------------------------------
    service = ServingService(
        matrix, refresher=IncrementalALSRefresher(ALSConfig(), refresh_iterations=3)
    )
    service.completed_matrix()  # cold ALS solve; later refreshes warm-start
    rng = np.random.default_rng(1)
    n_batches, batch_size = 200, 256
    arrivals = rng.integers(0, matrix.n_queries, size=(n_batches, batch_size))

    scalar_cache = PlanCache(matrix)
    start = time.perf_counter()
    for batch in arrivals[:20]:  # the per-query loop is too slow for all 200
        for q in batch:
            scalar_cache.lookup(int(q))
    per_query_qps = (20 * batch_size) / (time.perf_counter() - start)

    for batch in arrivals:
        service.serve_batch(batch)
    stats = service.stats()
    print(f"per-query loop : {per_query_qps:12,.0f} decisions/sec")
    print(f"batched service: {stats.throughput_qps:12,.0f} decisions/sec "
          f"({stats.throughput_qps / per_query_qps:.0f}x)")
    print(f"  {stats}\n")

    # -- Act 3: feedback + warm incremental refresh -------------------------
    before = service.serve_all()
    improvable = np.nonzero(before.used_default)[0][:50]
    better_hints = workload.true_latencies[improvable].argmin(axis=1)
    service.observe_batch(
        improvable,
        better_hints,
        workload.true_latencies[improvable, better_hints],
    )
    after = service.serve_all()
    switched = int((before.hints[improvable] != after.hints[improvable]).sum())
    print(f"Fed back {len(improvable)} fresh measurements: "
          f"{switched} queries immediately switched to a verified faster plan")
    refresher = service.refresher
    print(f"ALS completions: {refresher.cold_solves} cold solve(s), "
          f"{refresher.warm_refreshes} warm refresh(es) "
          f"of {refresher.refresh_iterations} iterations each")


if __name__ == "__main__":
    main()
