"""Observability end to end: metrics, traces, and one exported snapshot.

A telemetry-enabled serving stack narrated in four acts:

1. a telemetry context is attached to a :class:`ServingService` and the
   asyncio ingress in front of it -- every served batch now feeds the
   shared metrics registry and the per-stage trace ring, while the
   decisions stay byte-identical to an uninstrumented run,
2. the Prometheus text exposition is printed: counters, gauges, and the
   per-stage latency histograms any scrape endpoint would serve,
3. the five slowest recent requests are replayed from the trace ring,
   stage by stage (``ingress.flush`` encloses ``shard.serve`` which
   encloses ``cache.lookup``),
4. :func:`collect_snapshot` pools the registry, trace ring, and
   serving/ingress stats into the same JSON document the chaos and load
   benchmarks upload as ``TELEMETRY_*.json`` CI artifacts.

Run with:  python examples/telemetry_demo.py
"""

import asyncio

import numpy as np

from repro import (
    CEB_SPEC,
    IngressConfig,
    ServiceIngress,
    ServingService,
    Telemetry,
    collect_snapshot,
    generate_workload,
)
from repro.experiments.serving import explored_matrix


async def main() -> None:
    workload = generate_workload(CEB_SPEC.scaled(0.25), seed=0)
    matrix = explored_matrix(workload, observed_fraction=0.35, seed=1)
    print(f"Workload: {workload.spec.name}  "
          f"({matrix.n_queries} queries x {matrix.n_hints} hints)")

    # -- Act 1: serve through an instrumented ingress -----------------------
    telemetry = Telemetry.enabled()
    service = ServingService(matrix, telemetry=telemetry)
    rng = np.random.default_rng(7)
    queries = rng.integers(0, matrix.n_queries, size=4000).tolist()

    config = IngressConfig(max_batch=256, max_wait_s=0.001)
    async with ServiceIngress(service, config) as ingress:
        answers = await ingress.serve_many(queries)
        assert len(answers) == len(queries) and not any(a.shed for a in answers)

        # Feedback lands on the always-on ``observe`` stage histogram.
        q = rng.integers(0, matrix.n_queries, size=256)
        h = rng.integers(0, matrix.n_hints, size=256)
        service.observe_batch(q, h, rng.uniform(0.5, 20.0, size=256))

        print(f"\nServed {len(answers)} requests through the ingress "
              f"(mean batch {ingress.stats().mean_batch_size:.1f})")

        # -- Act 2: the scrape endpoint's view ------------------------------
        print("\n=== Prometheus exposition (abridged) ===")
        for line in telemetry.expose_text().splitlines():
            if line.startswith("#") or "stage_seconds" in line:
                print(f"  {line}")

        # -- Act 3: the five slowest recent requests ------------------------
        print("\n=== Top 5 slowest traces ===")
        for trace in telemetry.tracer.slowest(5):
            stages = "  ".join(
                f"{stage}={seconds * 1e6:7.1f}us" for stage, seconds in trace.stages
            )
            print(f"  {trace.name:<14} batch={trace.batch_size:<4} {stages}")

        # -- Act 4: the exportable health snapshot --------------------------
        snapshot = collect_snapshot(
            telemetry, service=service, ingress=ingress
        )

    payload = snapshot.as_dict()
    stage_counts = {
        stage: child["count"]
        for stage, child in payload["metrics"]["repro_stage_seconds"][
            "children"
        ].items()
    }
    print("\n=== Snapshot (what the CI artifacts contain) ===")
    print(f"  sections:           {', '.join(sorted(payload))}")
    print(f"  stage observations: {stage_counts}")
    print(f"  serving decisions:  {payload['serving']['decisions']}")
    print(f"  finished traces:    {payload['traces']['finished_traces']}")
    print("\nDone: same decisions, full visibility.")


if __name__ == "__main__":
    asyncio.run(main())
