"""Robustness demos: new queries mid-run, an ETL query, and a data shift.

Reproduces the stories behind Figures 8, 9 and 11 on small synthetic
workloads:

1. an ETL query is added that no hint can speed up -- Greedy keeps probing
   it while LimeQO learns to ignore it,
2. 30% of the queries only arrive after exploration has started,
3. the underlying data shifts (two years of growth), and LimeQO recovers by
   re-using its previously learned hints as a starting point.

Run with:  python examples/workload_and_data_shift.py
"""

from repro import STACK_SPEC, ExplorationSimulator, GreedyPolicy, LimeQOPolicy, generate_workload
from repro.config import ALSConfig, ExplorationConfig
from repro.core.explorer import MatrixOracle, OfflineExplorer
from repro.core.predictors import ALSPredictor
from repro.core.workload_matrix import WorkloadMatrix
from repro.workloads.shift import add_etl_query, apply_data_shift, split_for_workload_shift
from repro.workloads.spec import STACK_2017_SPEC


def etl_demo() -> None:
    print("=== 1. ETL query (Figure 8) ===")
    workload = generate_workload(STACK_SPEC.scaled(0.02), seed=0)
    workload = add_etl_query(workload, latency=0.15 * workload.default_total, seed=0)
    simulator = ExplorationSimulator(
        workload.true_latencies, config=ExplorationConfig(batch_size=5, seed=0)
    )
    budget = 1.5 * workload.default_total
    greedy = simulator.run(GreedyPolicy(), time_budget=budget)
    limeqo = simulator.run(LimeQOPolicy(), time_budget=budget)
    print(f"  default latency            : {workload.default_total:8.1f} s")
    print(f"  Greedy after exploration   : {greedy.final_latency:8.1f} s")
    print(f"  LimeQO after exploration   : {limeqo.final_latency:8.1f} s")
    print("  LimeQO avoids wasting time on the un-improvable ETL query.\n")


def workload_shift_demo() -> None:
    print("=== 2. Workload shift (Figure 9) ===")
    workload = generate_workload(STACK_SPEC.scaled(0.02), seed=1)
    initial, late = split_for_workload_shift(workload, 0.7, seed=1)
    print(f"  {len(initial)} queries available initially, "
          f"{len(late)} more arrive after the first phase")
    first_phase = workload.subset(initial)
    simulator = ExplorationSimulator(
        first_phase.true_latencies, config=ExplorationConfig(batch_size=5, seed=1)
    )
    trace = simulator.run(LimeQOPolicy(), time_budget=first_phase.default_total)
    print(f"  phase 1: initial queries improved from "
          f"{first_phase.default_total:.1f} s to {trace.final_latency:.1f} s")
    # Phase 2: the full workload, warm-started with everything learned so far.
    full_simulator = ExplorationSimulator(
        workload.true_latencies, config=ExplorationConfig(batch_size=5, seed=1)
    )
    trace_full = full_simulator.run(
        LimeQOPolicy(), time_budget=workload.default_total
    )
    print(f"  phase 2: full workload reaches {trace_full.final_latency:.1f} s "
          f"(default {workload.default_total:.1f} s, "
          f"optimal {workload.optimal_total:.1f} s)\n")


def data_shift_demo() -> None:
    print("=== 3. Data shift (Figure 11) ===")
    old = generate_workload(STACK_2017_SPEC.scaled(0.02), seed=2)
    new = apply_data_shift(old, changed_fraction=0.21, growth_factor=1.26, seed=2)
    config = ExplorationConfig(batch_size=5, seed=2)

    # Explore the 2017 data first.
    old_matrix = ExplorationSimulator(old.true_latencies, config=config).initial_matrix()
    OfflineExplorer(
        old_matrix, LimeQOPolicy(predictor=ALSPredictor(ALSConfig())),
        MatrixOracle(old.true_latencies), config,
    ).run(time_budget=2.0 * old.default_total)

    # After the shift the old best hints are re-verified on the new data and
    # exploration continues from there.
    carried = WorkloadMatrix(new.n_queries, new.n_hints)
    for q in range(new.n_queries):
        carried.observe(q, 0, float(new.true_latencies[q, 0]))
        best = old_matrix.best_hint(q)
        if best not in (None, 0):
            carried.observe(q, best, float(new.true_latencies[q, best]))
    carried_latency = carried.workload_latency()
    explorer = OfflineExplorer(
        carried, LimeQOPolicy(predictor=ALSPredictor(ALSConfig())),
        MatrixOracle(new.true_latencies), config,
    )
    explorer.run(time_budget=0.5 * new.true_latencies[:, 0].sum())
    print(f"  2019 default latency              : {new.true_latencies[:, 0].sum():8.1f} s")
    print(f"  with 2017 hints re-verified       : {carried_latency:8.1f} s")
    print(f"  after 0.5x extra exploration      : {carried.workload_latency():8.1f} s")
    print(f"  2019 oracle optimum               : {new.true_latencies.min(axis=1).sum():8.1f} s")


def main() -> None:
    etl_demo()
    workload_shift_demo()
    data_shift_demo()


if __name__ == "__main__":
    main()
