"""LimeQO: low-rank learning for offline query optimization.

A from-scratch reproduction of "Low Rank Learning for Offline Query
Optimization" (SIGMOD 2025).  The public API re-exports the pieces a
downstream user needs most:

* workload construction (:mod:`repro.workloads`),
* the workload matrix and censored ALS (:mod:`repro.core`),
* exploration policies and the offline explorer / simulator,
* the online plan cache and the :class:`~repro.core.limeqo.LimeQO` facade,
* the batched high-throughput serving layer (:mod:`repro.serving`),
* the asyncio ingress with request coalescing and admission control
  (:mod:`repro.ingress`),
* the sharded multi-tenant serving cluster (:mod:`repro.cluster`),
* the drift-aware adaptation controller (:mod:`repro.adaptive`),
* the declarative traffic/scenario engine (:mod:`repro.scenarios`),
* durable shard state -- WAL, snapshots, crash recovery, fault
  injection (:mod:`repro.durability`),
* unified observability -- metrics registry, request tracing,
  exportable runtime snapshots (:mod:`repro.telemetry`),
* the simulated DBMS substrate (:mod:`repro.db`),
* the numpy TCNN substrate (:mod:`repro.nn`),
* the experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import generate_workload, CEB_SPEC, ExplorationSimulator, LimeQOPolicy

    workload = generate_workload(CEB_SPEC.scaled(0.05), seed=0)
    simulator = ExplorationSimulator(workload.true_latencies)
    trace = simulator.run(LimeQOPolicy(), time_budget=0.5 * workload.default_total)
    print(trace.final_latency, "vs default", workload.default_total)
"""

from .adaptive import (
    AdaptationController,
    AdaptiveStats,
    ClusterAdaptationController,
    DriftDetector,
    RowOracle,
)
from .config import (
    ALSConfig,
    AdaptiveConfig,
    ExplorationConfig,
    IngressConfig,
    SimulationConfig,
    TCNNConfig,
    TelemetryConfig,
)
from .core import (
    ALSCompleter,
    ALSPredictor,
    BaoCachePolicy,
    CensoredALSResult,
    ExplorationPolicy,
    ExplorationSimulator,
    ExplorationTrace,
    GreedyPolicy,
    LimeQO,
    LimeQOPlusPolicy,
    LimeQOPolicy,
    MatrixCompleter,
    MatrixOracle,
    NuclearNormCompleter,
    OfflineExplorer,
    PlanCache,
    QOAdvisorPolicy,
    RandomPolicy,
    SVTCompleter,
    WorkloadMatrix,
    censored_als,
)
from .cluster import (
    ClusterShard,
    ClusterStats,
    HealthBoard,
    RefreshScheduler,
    RendezvousRouter,
    ServingCluster,
)
from .db import HintSet, all_hint_sets, default_hint_set
from .durability import (
    FaultInjector,
    ShardJournal,
    WriteAheadLog,
    recover_journal,
    recover_service,
)
from .errors import ReproError
from .ingress import (
    ClusterIngress,
    IngressDecision,
    IngressStats,
    ServiceIngress,
)
from .serving import (
    BatchDecisions,
    BatchedLatencyEstimator,
    BatchedPlanCache,
    IncrementalALSRefresher,
    ServingService,
    ServingStats,
)
from .logging_util import configure_logging, get_logger
from .telemetry import (
    MetricsRegistry,
    Telemetry,
    TelemetrySnapshot,
    Tracer,
    collect_snapshot,
    write_telemetry_json,
)
from .scenarios import (
    ScenarioEvent,
    ScenarioPhase,
    ScenarioRunner,
    ScenarioSpec,
    ScenarioTrace,
    TenantSpec,
    standard_scenarios,
)
from .workloads import (
    CEB_SPEC,
    DSB_SPEC,
    JOB_SPEC,
    STACK_SPEC,
    SyntheticWorkload,
    WorkloadSpec,
    build_database_workload,
    generate_workload,
    get_spec,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptationController",
    "AdaptiveStats",
    "ClusterAdaptationController",
    "DriftDetector",
    "RowOracle",
    "ScenarioEvent",
    "ScenarioPhase",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScenarioTrace",
    "TenantSpec",
    "standard_scenarios",
    "ALSConfig",
    "AdaptiveConfig",
    "ExplorationConfig",
    "IngressConfig",
    "SimulationConfig",
    "TCNNConfig",
    "TelemetryConfig",
    "MetricsRegistry",
    "Telemetry",
    "TelemetrySnapshot",
    "Tracer",
    "collect_snapshot",
    "write_telemetry_json",
    "configure_logging",
    "get_logger",
    "ClusterIngress",
    "IngressDecision",
    "IngressStats",
    "ServiceIngress",
    "ALSCompleter",
    "ALSPredictor",
    "BaoCachePolicy",
    "CensoredALSResult",
    "ExplorationPolicy",
    "ExplorationSimulator",
    "ExplorationTrace",
    "GreedyPolicy",
    "LimeQO",
    "LimeQOPlusPolicy",
    "LimeQOPolicy",
    "MatrixCompleter",
    "MatrixOracle",
    "NuclearNormCompleter",
    "OfflineExplorer",
    "PlanCache",
    "QOAdvisorPolicy",
    "RandomPolicy",
    "SVTCompleter",
    "WorkloadMatrix",
    "censored_als",
    "HintSet",
    "all_hint_sets",
    "default_hint_set",
    "FaultInjector",
    "ShardJournal",
    "WriteAheadLog",
    "recover_journal",
    "recover_service",
    "ReproError",
    "ClusterShard",
    "ClusterStats",
    "HealthBoard",
    "RefreshScheduler",
    "RendezvousRouter",
    "ServingCluster",
    "BatchDecisions",
    "BatchedLatencyEstimator",
    "BatchedPlanCache",
    "IncrementalALSRefresher",
    "ServingService",
    "ServingStats",
    "CEB_SPEC",
    "DSB_SPEC",
    "JOB_SPEC",
    "STACK_SPEC",
    "SyntheticWorkload",
    "WorkloadSpec",
    "build_database_workload",
    "generate_workload",
    "get_spec",
    "__version__",
]
