"""Drift-aware adaptive operation: detect serving-time drift, respond in budget.

The paper's robustness experiments (ETL queries, workload shift, data drift
-- Sections 5.1/5.3/5.4, Figures 8-11) show hint quality decaying as
workloads and data change.  This package closes the loop that the offline
explorer + frozen serving snapshot leave open:

* :mod:`repro.adaptive.residuals` -- windowed observed-vs-expected residual
  statistics (the raw drift signal) as property-testable pure functions
  plus a vectorised ring-buffer window,
* :mod:`repro.adaptive.detector` -- per-key (service / shard / tenant)
  thresholded drift + new-template detection,
* :mod:`repro.adaptive.reexplore` -- budgeted Algorithm-1 re-exploration
  against the live serving matrix, plus the :class:`RowOracle` adapter for
  live execution backends,
* :mod:`repro.adaptive.controller` -- the single-service control loop:
  invalidate stale rows, re-anchor the default plan, explore in budget,
  refresh the completion -- all off the serve path, no-regression
  guarantee intact,
* :mod:`repro.adaptive.cluster` -- the cluster-wide loop: shared detector
  keyed by shard, per-shard responses, refresh-scheduler escalation.
"""

from .controller import AdaptationController, AdaptiveStats
from .cluster import ClusterAdaptationController
from .detector import DEFAULT_KEY, DriftDetector, DriftStatus
from .reexplore import OnlineReexplorer, RowOracle
from .residuals import (
    ResidualWindow,
    WindowStats,
    drift_score,
    relative_residuals,
    unseen_rate,
)

__all__ = [
    "AdaptationController",
    "AdaptiveStats",
    "ClusterAdaptationController",
    "DEFAULT_KEY",
    "DriftDetector",
    "DriftStatus",
    "OnlineReexplorer",
    "RowOracle",
    "ResidualWindow",
    "WindowStats",
    "drift_score",
    "relative_residuals",
    "unseen_rate",
]
