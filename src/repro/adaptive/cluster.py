"""Cluster-wide adaptation: per-shard drift control + scheduler escalation.

A :class:`~repro.cluster.cluster.ServingCluster` already keeps ALS work off
the serve path with a budgeted round-robin
:class:`~repro.cluster.scheduler.RefreshScheduler`.
:class:`ClusterAdaptationController` adds the drift loop on top:

* residual feedback for a tenant batch is attributed to the *owning
  shards* via :meth:`ServingCluster.locate` and recorded in one shared
  :class:`~repro.adaptive.detector.DriftDetector` keyed by shard id;
* each shard that trips a threshold gets its own budgeted
  :class:`~repro.adaptive.controller.AdaptationController` response
  (invalidation + default re-anchoring + Algorithm-1 re-exploration on the
  shard's matrix slice);
* instead of refreshing inline, a responding shard is **escalated** on the
  cluster's refresh scheduler, so its warm ALS refresh lands on the very
  next tick without stealing the round-robin budget from quiet tenants.

Shard matrices re-index on row migration (``add_shard`` rebalancing), which
would silently mis-attribute window evidence recorded before the move --
so the cluster owner must call :meth:`notify_topology_change` after any
rebalance; it drops the per-shard controllers and window epochs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..cluster.cluster import ServingCluster
from ..cluster.router import split_batch
from ..config import AdaptiveConfig, ExplorationConfig
from ..errors import AdaptiveError
from ..serving.batch_cache import BatchDecisions
from .controller import AdaptationController, AdaptiveStats
from .detector import DriftDetector
from .reexplore import RowOracle


class ClusterAdaptationController:
    """Drift-aware control loop over every shard of a serving cluster.

    Parameters
    ----------
    cluster:
        The live cluster.
    cell_lookup:
        ``(routing_key, hint) -> latency``: one fresh live execution.  The
        routing key (``tenant/name``) is the stable identity of a row; the
        per-shard oracles translate their local row indices through the
        shard's ``query_names`` table at call time, so migrations between
        responses cannot mis-execute.
    config / policy_factory / explore_config:
        Forwarded to each per-shard :class:`AdaptationController`.
    """

    def __init__(
        self,
        cluster: ServingCluster,
        cell_lookup: Callable[[str, int], float],
        config: Optional[AdaptiveConfig] = None,
        policy_factory: Optional[Callable] = None,
        explore_config: Optional[ExplorationConfig] = None,
    ) -> None:
        if not callable(cell_lookup):
            raise AdaptiveError(
                "ClusterAdaptationController needs a (routing_key, hint) lookup"
            )
        self.cluster = cluster
        self.cell_lookup = cell_lookup
        self.config = config or AdaptiveConfig()
        self.policy_factory = policy_factory
        self.explore_config = explore_config
        self.detector = DriftDetector(self.config)
        self._controllers: Dict[int, AdaptationController] = {}
        self._base_budget = cluster.scheduler.budget_per_tick

    # -- per-shard controller lifecycle ------------------------------------------
    @staticmethod
    def _shard_key(shard_id: int) -> str:
        return f"shard-{shard_id}"

    def _controller_for(self, shard_id: int) -> Optional[AdaptationController]:
        shard = self.cluster.shards[shard_id]
        if shard.service is None:
            return None
        controller = self._controllers.get(shard_id)
        if controller is None or controller.service is not shard.service:
            oracle = RowOracle(
                lambda row, hint, shard=shard: self.cell_lookup(
                    shard.matrix.query_names[row], hint
                )
            )
            controller = AdaptationController(
                shard.service,
                oracle,
                config=self.config,
                policy_factory=self.policy_factory,
                explore_config=self.explore_config,
                detector=self.detector,
                key=self._shard_key(shard_id),
                refresh_inline=False,
            )
            self._controllers[shard_id] = controller
        return controller

    # -- feedback -------------------------------------------------------------------
    def record(self, tenant: str, decisions: BatchDecisions, measured) -> None:
        """Attribute a tenant batch's residuals to the owning shards."""
        measured = np.asarray(measured, dtype=float)
        if measured.shape != decisions.queries.shape:
            raise AdaptiveError(
                "record needs one measurement per decision, got "
                f"{measured.shape} for batch of {decisions.batch_size}"
            )
        shard_ids, local = self.cluster.locate(tenant, decisions.queries)
        for shard_id, positions in split_batch(shard_ids):
            controller = self._controller_for(int(shard_id))
            if controller is None:
                continue
            controller.record(
                local[positions],
                decisions.hints[positions],
                decisions.expected_latency[positions],
                measured[positions],
            )

    # -- the background loop -----------------------------------------------------------
    def tick(self) -> List[int]:
        """One heartbeat across all shards; returns the shard ids that responded.

        Responding shards are escalated on the cluster's refresh scheduler
        -- their warm ALS refresh lands on the cluster's next scheduler
        tick, outside the round-robin budget -- so this method never runs
        matrix completion itself.  While any shard is mid-recovery the
        round-robin refresh budget is also reallocated upward (one slot
        per busy shard, never below the configured base) and restored once
        the cluster is calm again.
        """
        responded: List[int] = []
        for shard_id in sorted(self._controllers):
            controller = self._controllers[shard_id]
            shard = self.cluster.shards.get(shard_id)
            if shard is None or shard.service is not controller.service:
                # Stale controller: the shard crashed (service severed) or
                # restarted under a new service object.  Never tick it --
                # it would mutate an orphaned matrix.  ``_controller_for``
                # rebuilds on the next recorded batch.
                continue
            if controller.tick():
                responded.append(shard_id)
                self.cluster.scheduler.escalate(shard_id)
        busy = len(responded) + sum(
            1
            for shard_id, controller in self._controllers.items()
            if shard_id not in responded and controller.backlog.size
        )
        self.cluster.scheduler.set_budget(max(self._base_budget, busy))
        return responded

    def restore_backlog(self, shard_id: int, rows) -> None:
        """Re-seed a restarted shard's recovery backlog from its journal.

        Call after :meth:`ServingCluster.restart_shard` with the
        ``backlog`` of the returned
        :class:`~repro.durability.RecoveredState`: the rows a response had
        invalidated before the crash rejoin the re-verification queue, so
        a crash mid-drift never strands rows on the default plan.
        """
        controller = self._controller_for(int(shard_id))
        if controller is not None:
            controller.seed_backlog(rows)

    def notify_topology_change(self) -> None:
        """Drop shard controllers and window epochs after a rebalance.

        Local row indices recorded before a migration no longer name the
        same queries; starting fresh is the only sound interpretation.
        """
        self._controllers.clear()
        self.detector.reset_all()

    # -- telemetry ------------------------------------------------------------------------
    def report(self) -> AdaptiveStats:
        """Merged counters across every shard controller."""
        return AdaptiveStats.merge(
            controller.stats for controller in self._controllers.values()
        )

    def shard_reports(self) -> Dict[int, AdaptiveStats]:
        """Per-shard controller counters."""
        return {
            shard_id: controller.stats
            for shard_id, controller in sorted(self._controllers.items())
        }
