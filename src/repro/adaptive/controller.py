"""The adaptation controller: drift detection in, budgeted responses out.

:class:`AdaptationController` closes the loop the paper leaves open: the
offline explorer fills the matrix once, the serving layer answers from it
forever -- and Figures 8-11 show what that costs as workloads and data
move.  The controller watches live residuals through a
:class:`~repro.adaptive.detector.DriftDetector`, and when a signal crosses
its threshold it responds **off the serve path**:

1. rows with over-tolerance residual evidence are *invalidated* -- their
   stale observations are erased, so they immediately fall back to the
   default plan (the anchor of the no-regression guarantee: the serving
   rule itself never changes);
2. the default plan of every responding row is re-executed and observed,
   re-anchoring the guarantee against current data;
3. the remaining execution budget goes to Algorithm-1 re-exploration
   (:class:`~repro.adaptive.reexplore.OnlineReexplorer`) -- invalidated
   rows have an infinite current best, so LimeQO ranks them first;
4. the warm ALS completion is refreshed and the decision snapshot is
   rebuilt, so the next served batch is back to pure fancy indexing.

Responses are budgeted (``config.response_budget_cells`` live executions)
and rate-limited (``config.cooldown_ticks``), so a drifting tenant degrades
gracefully over several small responses instead of stalling the backend
with one giant re-exploration.

The controller implements the ``record(queries, hints, expected, measured)``
monitor hook, so attaching it is one assignment::

    controller = AdaptationController(service, oracle)
    service.monitor = controller            # residuals flow in
    ...
    service.record_measured(decisions, measured)   # per served batch
    controller.tick()                               # background cadence

Deployments built on the asyncio front door do not drive :meth:`tick`
themselves: :class:`repro.ingress.ServiceIngress` hosts it as a
background event-loop task (a
:class:`~repro.ingress.background.PeriodicTicker`) for as long as the
ingress is started, firing every ``IngressConfig.tick_interval_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from ..config import AdaptiveConfig, ExplorationConfig
from ..errors import AdaptiveError
from ..serving.service import ServingService
from .detector import DEFAULT_KEY, DriftDetector, DriftStatus
from .reexplore import OnlineReexplorer


@dataclass
class AdaptiveStats:
    """Counters describing everything a controller has done so far."""

    ticks: int = 0
    responses: int = 0
    drift_responses: int = 0
    unseen_responses: int = 0
    sweep_responses: int = 0
    recovery_passes: int = 0
    invalidated_rows: int = 0
    remeasured_cells: int = 0
    explored_cells: int = 0
    refreshes: int = 0
    backlog_rows: int = 0
    last_drift_score: float = 0.0
    last_unseen_rate: float = 0.0

    # The ``last_*`` fields are gauges (merged by max, reported as floats);
    # everything else is a monotone counter (summed, reported as ints).
    # as_dict/merge derive from the field list so a new counter can never
    # be silently dropped from one of them.
    @staticmethod
    def _is_gauge(name: str) -> bool:
        return name.startswith("last_")

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary for dashboards and the benchmark reports."""
        return {
            f.name: (
                float(getattr(self, f.name))
                if self._is_gauge(f.name)
                else int(getattr(self, f.name))
            )
            for f in fields(self)
        }

    @classmethod
    def merge(cls, parts: Iterable["AdaptiveStats"]) -> "AdaptiveStats":
        """Fold per-shard controller counters into one cluster-wide report."""
        merged = cls()
        for part in parts:
            for f in fields(cls):
                ours, theirs = getattr(merged, f.name), getattr(part, f.name)
                setattr(
                    merged,
                    f.name,
                    max(ours, theirs) if cls._is_gauge(f.name) else ours + theirs,
                )
        return merged


@dataclass
class _ResponsePlan:
    """What one response decided to do (exposed for tests/telemetry)."""

    status: DriftStatus
    invalidated: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    remeasured: int = 0
    explored: int = 0


class AdaptationController:
    """Watches one :class:`ServingService`; responds to drift within budget.

    Parameters
    ----------
    service:
        The live service whose matrix/snapshot the controller maintains.
    oracle:
        Where fresh measurements come from -- anything satisfying the
        :class:`~repro.core.explorer.ExecutionOracle` protocol (a
        :class:`~repro.adaptive.reexplore.RowOracle` over a DBMS callback,
        a :class:`~repro.core.explorer.MatrixOracle` over ground truth).
    config:
        Detection thresholds and response budgets (:class:`AdaptiveConfig`).
    policy_factory / explore_config:
        How responses pick exploration cells; defaults to LimeQO with an
        ``explore_batch_size``-cell step and the config's seed, which keeps
        replay deterministic.
    detector:
        Optional externally owned detector (a cluster controller shares
        one across shards, keyed by shard id).
    key:
        The detector key this controller reads (default: the single-service
        key).
    refresh_inline:
        When True (single-service deployments) a response finishes by
        refreshing the warm ALS completion itself; a cluster controller
        passes False and escalates the shard on the refresh scheduler
        instead, keeping all ALS work on the budgeted background path.
    """

    def __init__(
        self,
        service: ServingService,
        oracle,
        config: Optional[AdaptiveConfig] = None,
        policy_factory: Optional[Callable] = None,
        explore_config: Optional[ExplorationConfig] = None,
        detector: Optional[DriftDetector] = None,
        key: str = DEFAULT_KEY,
        refresh_inline: bool = True,
    ) -> None:
        if service is None:
            raise AdaptiveError("AdaptationController needs a live ServingService")
        self.service = service
        self.config = config or AdaptiveConfig()
        self.detector = detector if detector is not None else DriftDetector(self.config)
        self.key = key
        self.refresh_inline = bool(refresh_inline)
        self.reexplorer = OnlineReexplorer(
            service.matrix,
            oracle,
            policy_factory=policy_factory,
            config=explore_config
            or ExplorationConfig(
                batch_size=self.config.explore_batch_size, seed=self.config.seed
            ),
        )
        self.stats = AdaptiveStats()
        self._cooldown = 0
        self._backlog = np.zeros(0, dtype=np.int64)
        self.last_response: Optional[_ResponsePlan] = None

    # -- the monitor hook ---------------------------------------------------------
    def record(self, queries, hints, expected, measured) -> None:
        """Per-batch residual feedback (signature of ``ServingService.monitor``)."""
        self.detector.record(queries, hints, expected, measured, key=self.key)
        self.detector.note_row_count(self.service.matrix.n_queries, key=self.key)

    # -- the recovery backlog ---------------------------------------------------------
    @property
    def backlog(self) -> np.ndarray:
        """Rows awaiting re-verification after a response touched them."""
        return self._backlog.copy()

    def _push_backlog(self, rows: np.ndarray) -> None:
        if rows.size:
            self._backlog = np.union1d(self._backlog, rows)

    def seed_backlog(self, rows) -> None:
        """Re-seed the recovery backlog (crash recovery hands it back here).

        The rows rejoin the re-verification queue exactly as if the
        response that created them had just run; the next quiet tick
        resumes the budgeted recovery passes.
        """
        self._push_backlog(np.asarray(rows, dtype=np.int64))
        self._prune_backlog()
        self.stats.backlog_rows = int(self._backlog.size)

    def _journal_backlog(self) -> None:
        """Write the owed backlog ahead, so a crash mid-drift recovers it."""
        journal = getattr(self.service, "journal", None)
        if journal is not None:
            journal.log_adapt_backlog(self._backlog)

    def _prune_backlog(self) -> None:
        """Drop rows that have been re-verified.

        A row leaves the backlog once ``config.reverify_observations`` of
        its cells are *known* again -- completed observations or censored
        timeouts (a timeout is evidence too: the cancelled plan proved
        worse than the row's current best).  The ``None`` default demands
        every cell: a drifted optimum can land on any hint (the shift is
        idiosyncratic per row, not low-rank-predictable), so anything less
        can silently strand upside on the default plan.  Rows past the end
        of the matrix (cluster row migration) are dropped as unknowable.
        """
        if not self._backlog.size:
            return
        matrix = self.service.matrix
        if self.config.reverify_observations is None:
            target = matrix.n_hints
        else:
            target = min(self.config.reverify_observations, matrix.n_hints)
        in_range = self._backlog[self._backlog < matrix.n_queries]
        if not in_range.size:
            self._backlog = in_range
            return
        unknown = matrix.unknown_mask()
        known_counts = matrix.n_hints - unknown[in_range].sum(axis=1)
        self._backlog = in_range[known_counts < target]

    # -- the background loop ---------------------------------------------------------
    def tick(self) -> bool:
        """One controller heartbeat; returns True when work ran.

        Called from whatever background cadence the deployment has (the
        same place a cluster calls its refresh scheduler).  The hot case --
        no drift, empty backlog -- costs one windowed-statistics pass.
        Triggered drift gets a full response; otherwise a non-empty
        recovery backlog gets one budgeted exploration pass, so the upside
        a response anchored away is actually won back.
        """
        self.stats.ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return False
        status = self.detector.status(self.key)
        self.stats.last_drift_score = status.drift_score
        self.stats.last_unseen_rate = status.unseen_rate
        if status.triggered:
            self.respond(status)
            self._cooldown = self.config.cooldown_ticks
            return True
        if self._recover():
            self._cooldown = self.config.cooldown_ticks
            return True
        # Below the global thresholds, per-row persistence still catches
        # tails: a row deviating (or serving unseen) ``persistent_hits``
        # times within one window is drift even if its traffic share never
        # moves the aggregate score.  min_samples gating does not apply --
        # the repetition requirement is the noise gate here.
        hits = self.config.persistent_hits
        persistent_drift = self.detector.drifted_rows(self.key, min_hits=hits)
        persistent_unseen = self.detector.unseen_rows(self.key, min_hits=hits)
        if persistent_drift.size or persistent_unseen.size:
            self.respond(
                status, drifted=persistent_drift, unseen=persistent_unseen,
                sweep=True,
            )
            self._cooldown = self.config.cooldown_ticks
            return True
        return False

    def _recover(self) -> bool:
        """One budgeted pass over the recovery backlog: anchor, then explore.

        Only backlog rows are executed (their predicted-best unknown cells
        first), so re-verifying a handful of rows can never cost live
        executions on rows that were healthy all along.  Rows whose
        default plan is still unobserved -- a response bigger than its
        budget leaves some -- are anchored *first*, and exploration is
        scoped to anchored rows only: a non-default observation landing on
        a row with no default observation would be served unconditionally
        by the snapshot rule, which is exactly the regression the anchor
        prevents.
        """
        self._prune_backlog()
        if not self._backlog.size:
            return False
        budget = self.config.response_budget_cells
        matrix = self.service.matrix
        default_hint = self.service.cache.default_hint
        anchored_mask = np.asarray(
            [matrix.is_observed(int(row), default_hint) for row in self._backlog],
            dtype=bool,
        )
        newly_anchored = self._backlog[~anchored_mask][:budget]
        if newly_anchored.size:
            used = self.reexplorer.remeasure_rows(newly_anchored, default_hint)
            budget -= used
            self.stats.remeasured_cells += used
        explorable = np.sort(
            np.concatenate([self._backlog[anchored_mask], newly_anchored])
        )
        explored = 0
        if budget > 0 and explorable.size:
            explored = self.reexplorer.explore(budget, rows=explorable)
        self.stats.explored_cells += explored
        self.stats.recovery_passes += 1
        if self.refresh_inline and self.service.refresher is not None:
            if self.service.refresh_now():
                self.stats.refreshes += 1
        self.service.cache.refresh()
        self._prune_backlog()
        self._journal_backlog()
        self.stats.backlog_rows = int(self._backlog.size)
        return (explored + int(newly_anchored.size)) > 0

    def respond(
        self,
        status: DriftStatus,
        drifted: Optional[np.ndarray] = None,
        unseen: Optional[np.ndarray] = None,
        sweep: bool = False,
    ) -> _ResponsePlan:
        """Run one budgeted response.

        Without explicit row sets, the drifted rows come from the window
        when the drift signal triggered, and *all* in-window unseen rows
        are anchored regardless of which signal fired -- an unseen row is
        unobserved whatever the trigger, and anchoring it costs one
        default execution.  ``sweep=True`` marks a per-row-persistence
        response (below the global thresholds).
        """
        plan = _ResponsePlan(status=status)
        budget = self.config.response_budget_cells
        matrix = self.service.matrix
        n_rows = matrix.n_queries

        if drifted is None:
            if status.drift_triggered:
                drifted = self.detector.drifted_rows(self.key)
            else:
                drifted = np.zeros(0, dtype=np.int64)
        if unseen is None:
            unseen = self.detector.unseen_rows(self.key)
        drifted = np.asarray(drifted, dtype=np.int64)
        unseen = np.asarray(unseen, dtype=np.int64)
        drifted = drifted[drifted < n_rows]
        unseen = unseen[unseen < n_rows]

        if drifted.size:
            # Stale rows fall back to the default plan until re-verified.
            self.service.invalidate(drifted)
            plan.invalidated = drifted
            self.stats.invalidated_rows += int(drifted.size)

        # Re-anchor the no-regression guarantee: every responding row needs
        # a *current* default-plan observation before anything else.
        anchor = np.union1d(drifted, unseen)
        default_hint = self.service.cache.default_hint
        need_anchor = np.asarray(
            [
                int(row)
                for row in anchor
                if not matrix.is_observed(int(row), default_hint)
            ],
            dtype=np.int64,
        )
        if need_anchor.size:
            take = need_anchor[: budget]
            plan.remeasured = self.reexplorer.remeasure_rows(take, default_hint)
            budget -= plan.remeasured
            self.stats.remeasured_cells += plan.remeasured

        if budget > 0:
            # Exploration is scoped to the rows this response is about;
            # with no specific rows (e.g. a pure row-growth trigger before
            # the new rows were ever served) fall back to a global pass.
            plan.explored = self.reexplorer.explore(
                budget, rows=anchor if anchor.size else None
            )
            self.stats.explored_cells += plan.explored

        if self.refresh_inline and self.service.refresher is not None:
            if self.service.refresh_now():
                self.stats.refreshes += 1
        # Pay the snapshot rebuild here, off the serve path.
        self.service.cache.refresh()

        # Everything the response touched awaits re-verification: the
        # recovery passes on quiet ticks keep exploring these rows until
        # they carry enough fresh observations to serve a verified plan.
        self._push_backlog(anchor)
        self._prune_backlog()
        self._journal_backlog()
        self.stats.backlog_rows = int(self._backlog.size)

        self.detector.reset(self.key)
        self.stats.responses += 1
        if sweep:
            self.stats.sweep_responses += 1
        if status.drift_triggered:
            self.stats.drift_responses += 1
        if status.unseen_triggered:
            self.stats.unseen_responses += 1
        self.last_response = plan
        return plan

    # -- telemetry -----------------------------------------------------------------
    def report(self) -> AdaptiveStats:
        """The controller's counters (live object; copy if you must mutate)."""
        return self.stats
