"""Per-key drift detection over serving residual windows.

A :class:`DriftDetector` owns one :class:`~repro.adaptive.residuals.ResidualWindow`
per *key* -- a single service uses the default key, a cluster keys by shard
id, a multi-tenant deployment may key by tenant -- and turns window
statistics into a thresholded :class:`DriftStatus`:

* ``drift_triggered``: the fraction of recent measurements deviating from
  their decision-time expectation beyond ``config.tolerance`` crossed
  ``config.drift_threshold`` (data drift, Figures 10-11);
* ``unseen_triggered``: the fraction of recent arrivals served with no
  observation at all crossed ``config.unseen_threshold``, or the tracked
  row count grew by more than that fraction (workload shift / new
  templates, Figure 9).

Both thresholds require ``config.min_samples`` of evidence, so a detector
can never fire on noise from a handful of arrivals.  The detector is
deliberately passive: it computes, it never acts.  Acting -- invalidation,
budgeted re-exploration, refresh escalation -- is the controller's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import AdaptiveConfig
from .residuals import ResidualWindow

DEFAULT_KEY = "service"


@dataclass(frozen=True)
class DriftStatus:
    """Thresholded snapshot of one key's window."""

    key: str
    samples: int
    seen_samples: int
    drift_score: float
    unseen_rate: float
    mean_residual: float
    max_residual: float
    new_row_fraction: float
    drift_triggered: bool
    unseen_triggered: bool

    @property
    def triggered(self) -> bool:
        """True when any signal crossed its threshold."""
        return self.drift_triggered or self.unseen_triggered


class DriftDetector:
    """Keyed residual windows plus new-row-rate monitoring."""

    def __init__(self, config: Optional[AdaptiveConfig] = None) -> None:
        self.config = config or AdaptiveConfig()
        self._windows: Dict[str, ResidualWindow] = {}
        self._row_baseline: Dict[str, int] = {}
        self._row_current: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------------
    def window(self, key: str = DEFAULT_KEY) -> ResidualWindow:
        """The window for ``key`` (created lazily)."""
        if key not in self._windows:
            self._windows[key] = ResidualWindow(self.config.window)
        return self._windows[key]

    def record(self, queries, hints, expected, measured, key: str = DEFAULT_KEY) -> None:
        """Fold one serving-feedback batch into ``key``'s window.

        With the default key this signature is exactly the
        :attr:`ServingService.monitor` hook, so a detector can be attached
        to a service directly.
        """
        self.window(key).record(queries, hints, expected, measured)

    def note_row_count(self, n_rows: int, key: str = DEFAULT_KEY) -> None:
        """Track matrix growth: the first note per window epoch is the baseline."""
        self._row_current[key] = int(n_rows)
        self._row_baseline.setdefault(key, int(n_rows))

    # -- status ---------------------------------------------------------------------
    def new_row_fraction(self, key: str = DEFAULT_KEY) -> float:
        """Row-count growth since the current window epoch's baseline."""
        baseline = self._row_baseline.get(key)
        if not baseline:
            return 0.0
        return max(0, self._row_current.get(key, baseline) - baseline) / baseline

    def status(self, key: str = DEFAULT_KEY) -> DriftStatus:
        """Thresholded signals for one key.

        The drift branch gates on ``min_samples`` of *residual-carrying*
        evidence: the score is a fraction of measured samples only, so a
        window dominated by unseen serves (e.g. a template stream) must
        not let one noisy measurement trip an invalidation.  The unseen
        branch gates on total window size.
        """
        stats = self.window(key).stats(self.config.tolerance)
        new_rows = self.new_row_fraction(key)
        enough_measured = stats.seen_samples >= self.config.min_samples
        enough_total = stats.samples >= self.config.min_samples
        return DriftStatus(
            key=key,
            samples=stats.samples,
            seen_samples=stats.seen_samples,
            drift_score=stats.drift_score,
            unseen_rate=stats.unseen_rate,
            mean_residual=stats.mean_residual,
            max_residual=stats.max_residual,
            new_row_fraction=new_rows,
            drift_triggered=enough_measured
            and stats.drift_score > self.config.drift_threshold,
            unseen_triggered=enough_total
            and (
                stats.unseen_rate > self.config.unseen_threshold
                or new_rows > self.config.unseen_threshold
            ),
        )

    def statuses(self) -> List[DriftStatus]:
        """Statuses for every key with a window, in key order."""
        return [self.status(key) for key in sorted(self._windows)]

    def drifted_rows(self, key: str = DEFAULT_KEY, min_hits: int = 1) -> np.ndarray:
        """Rows with over-tolerance residual evidence in ``key``'s window."""
        return self.window(key).drifted_rows(self.config.tolerance, min_hits)

    def unseen_rows(self, key: str = DEFAULT_KEY, min_hits: int = 1) -> np.ndarray:
        """Rows served without any observation in ``key``'s window."""
        return self.window(key).unseen_rows(min_hits)

    def reset(self, key: str = DEFAULT_KEY) -> None:
        """Start a fresh window epoch (after a response changed the basis)."""
        self.window(key).clear()
        self._row_baseline.pop(key, None)
        if key in self._row_current:
            self._row_baseline[key] = self._row_current[key]

    def reset_all(self) -> None:
        """Fresh epochs for every key (e.g. after a topology change)."""
        for key in list(self._windows):
            self.reset(key)
