"""Budgeted online re-exploration against the live serving matrix.

When the controller decides a set of rows went stale it needs fresh
measurements, and the machinery for choosing *which* cells to execute
already exists: Algorithm 1 (:class:`~repro.core.explorer.OfflineExplorer`)
with any exploration policy.  :class:`OnlineReexplorer` reuses it verbatim
against the serving matrix -- invalidated rows have an infinite current
best, so LimeQO's Equation-6 ratio ranks them first automatically -- with
two serving-specific twists:

* **anchoring**: before exploring, the default plan of every responding
  row is re-executed and observed, because the no-regression guarantee is
  anchored to an *up-to-date* default observation (the paper assumes the
  default is measured "as part of normal operation");
* **budgeting**: every response is capped at a fixed number of live cell
  executions (:meth:`explore` forwards ``max_cells`` to the explorer), so
  adaptation can never monopolise the execution backend.

:class:`RowOracle` adapts any ``(row, hint) -> latency`` callable -- the
scenario engine's mutable ground truth, or a real DBMS round trip -- to the
:class:`~repro.core.explorer.ExecutionOracle` protocol.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config import ExplorationConfig
from ..core.explorer import OfflineExplorer
from ..core.policies import ExplorationPolicy, LimeQOPolicy
from ..core.workload_matrix import WorkloadMatrix
from ..db.executor import ExecutionResult
from ..errors import AdaptiveError


class RowOracle:
    """Execution oracle over a live ``(row, hint) -> latency`` callable."""

    def __init__(self, lookup: Callable[[int, int], float]) -> None:
        if not callable(lookup):
            raise AdaptiveError("RowOracle needs a callable (row, hint) lookup")
        self.lookup = lookup

    def execute(
        self, query: int, hint: int, timeout: Optional[float] = None
    ) -> ExecutionResult:
        latency = float(self.lookup(int(query), int(hint)))
        if timeout is not None and timeout > 0 and latency >= timeout:
            return ExecutionResult(
                latency=latency, timed_out=True, charged_time=float(timeout)
            )
        return ExecutionResult(latency=latency, timed_out=False, charged_time=latency)

    def execute_many(
        self,
        queries: Sequence[int],
        hints: Sequence[int],
        timeouts: Optional[Sequence[Optional[float]]] = None,
    ) -> List[ExecutionResult]:
        """Loop adapter: a live backend executes one plan at a time."""
        if timeouts is None:
            timeouts = [None] * len(queries)
        return [
            self.execute(int(q), int(h), timeout=t)
            for q, h, t in zip(queries, hints, timeouts)
        ]


class _RowScopedPolicy(ExplorationPolicy):
    """Restricts an exploration policy's picks to a fixed set of rows.

    The inner policy still sees the whole matrix -- its completed ``Ŵ``
    keeps transferring structure from healthy rows -- but only cells in
    the scoped rows are executed, so a response's live-execution budget
    cannot leak onto rows that never drifted.  When the inner policy's
    batch contains too few scoped rows, the batch is topped up with each
    remaining scoped row's predicted-best unknown cell (first unknown
    column for model-free policies), in ascending row order so replays
    stay deterministic.  Progress is guaranteed: any scoped row with an
    unknown cell yields a pick.
    """

    name = "row-scoped"

    def __init__(self, inner: ExplorationPolicy, rows) -> None:
        super().__init__()
        self.inner = inner
        self._rows = np.unique(np.asarray(rows, dtype=np.int64))

    def configure(self, config) -> None:
        self.inner.configure(config)

    @property
    def overhead_seconds(self) -> float:
        return self.inner.overhead_seconds

    @property
    def last_prediction(self):
        return self.inner.last_prediction

    def select(self, matrix, batch_size, rng):
        scoped = set(int(r) for r in self._rows if r < matrix.n_queries)
        picks = [
            pair
            for pair in self.inner.select(matrix, batch_size, rng)
            if pair[0] in scoped
        ]
        if len(picks) >= batch_size:
            return picks[:batch_size]
        predicted = self.inner.last_prediction
        usable = predicted is not None and predicted.shape == matrix.shape
        unknown = matrix.unknown_mask()
        taken_rows = {pair[0] for pair in picks}
        for row in self._rows:
            if len(picks) >= batch_size:
                break
            row = int(row)
            if row not in scoped or row in taken_rows:
                continue
            columns = np.nonzero(unknown[row])[0]
            if columns.size == 0:
                continue
            if usable:
                column = int(columns[np.argmin(predicted[row, columns])])
            else:
                column = int(columns[0])
            picks.append((row, column))
            taken_rows.add(row)
        return picks


class OnlineReexplorer:
    """Algorithm 1, scoped to drift responses on a live matrix."""

    def __init__(
        self,
        matrix: WorkloadMatrix,
        oracle,
        policy_factory: Optional[Callable[[], ExplorationPolicy]] = None,
        config: Optional[ExplorationConfig] = None,
    ) -> None:
        self.matrix = matrix
        self.oracle = oracle
        self.policy_factory = policy_factory or LimeQOPolicy
        self.config = config or ExplorationConfig(batch_size=8)
        self.remeasured_cells = 0
        self.explored_cells = 0

    def remeasure_rows(self, rows, hint: int) -> int:
        """Re-execute ``hint`` (typically the default plan) for ``rows``.

        Runs to completion -- no censoring -- because these observations
        re-anchor the no-regression guarantee.  Returns the number of live
        executions charged against the response budget.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0
        hints = np.full(rows.size, int(hint), dtype=np.int64)
        results = self.oracle.execute_many(rows.tolist(), hints.tolist(), None)
        self.matrix.observe_batch(
            rows, hints, [result.latency for result in results]
        )
        self.remeasured_cells += int(rows.size)
        return int(rows.size)

    def explore(self, max_cells: int, rows=None) -> int:
        """Run a fresh budgeted explorer over the live matrix.

        With ``rows`` the executed cells are restricted to those rows (the
        response's drifted/unseen set, the recovery backlog) via
        :class:`_RowScopedPolicy` -- the policy's model still reads the
        whole matrix, but live executions cannot leak onto healthy rows.
        A new policy (and therefore a cold predictor) per response keeps
        replay deterministic: the response depends only on the matrix
        state, never on how many responses preceded it.  Returns the cells
        actually executed.
        """
        if max_cells < 1:
            return 0
        policy = self.policy_factory()
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            if rows.size == 0:
                return 0
            policy = _RowScopedPolicy(policy, rows)
        explorer = OfflineExplorer(self.matrix, policy, self.oracle, self.config)
        steps = explorer.run(max_cells=max_cells)
        executed = sum(len(step.results) for step in steps)
        self.explored_cells += executed
        return executed
