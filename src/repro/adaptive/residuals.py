"""Windowed residual statistics: the raw serving-time drift signal.

The paper's robustness experiments (Sections 5.1/5.3/5.4) show hint quality
decaying as data and workloads change.  At serving time that decay is
directly observable: the snapshot's *expected* latency for a served plan
(the latency observed during exploration) stops matching what execution
*measures*.  :class:`ResidualWindow` accumulates those (query, relative
residual) samples in a fixed-size ring and summarises them on demand; the
pure helpers (:func:`relative_residuals`, :func:`drift_score`,
:func:`unseen_rate`) are the statistics the detector thresholds, kept free
of state so they can be property-tested in isolation.

Two signals come out of one window:

* **drift score** -- the fraction of recent feedback samples whose measured
  latency deviates from the decision-time expectation by more than a
  relative tolerance (Figures 10/11: stale observations),
* **unseen rate** -- the fraction of recent arrivals served with *no*
  observation at all (infinite expected latency: new templates, freshly
  invalidated rows -- Figure 9's late-arriving queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AdaptiveError

RESIDUAL_EPS = 1e-9


def relative_residuals(expected, measured, eps: float = RESIDUAL_EPS) -> np.ndarray:
    """Per-sample relative residual ``|measured - expected| / expected``.

    Samples with an infinite expectation (served with no observation) get
    ``nan`` -- they carry no residual information and feed the unseen rate
    instead.  A zero expectation is floored at ``eps`` so the residual
    stays finite.
    """
    expected = np.asarray(expected, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if expected.shape != measured.shape:
        raise AdaptiveError(
            f"expected/measured shape mismatch: {expected.shape} vs {measured.shape}"
        )
    seen = np.isfinite(expected)
    out = np.full(expected.shape, np.nan)
    denominator = np.maximum(expected[seen], eps)
    out[seen] = np.abs(measured[seen] - expected[seen]) / denominator
    return out


def drift_score(residuals, tolerance: float) -> float:
    """Fraction of residual-carrying samples exceeding ``tolerance``.

    ``nan`` entries (unseen serves) are excluded from both numerator and
    denominator.  Returns 0.0 for an empty window: zero drift never
    triggers.  The score is by construction in ``[0, 1]``, 0 exactly when
    every measurement sits within tolerance of its expectation, and 1
    exactly when every measurement deviates beyond it.
    """
    if tolerance <= 0:
        raise AdaptiveError(f"tolerance must be > 0, got {tolerance}")
    residuals = np.asarray(residuals, dtype=float)
    seen = np.isfinite(residuals)
    if not seen.any():
        return 0.0
    return float(np.mean(residuals[seen] > tolerance))


def unseen_rate(expected) -> float:
    """Fraction of samples served with no observation (infinite expectation)."""
    expected = np.asarray(expected, dtype=float)
    if expected.size == 0:
        return 0.0
    return float(np.mean(~np.isfinite(expected)))


@dataclass(frozen=True)
class WindowStats:
    """Point-in-time summary of one residual window.

    ``seen_samples`` counts only residual-carrying samples (finite
    expectation); the drift score is a fraction *of those*, so thresholds
    must gate on ``seen_samples``, not ``samples``, to stay noise-robust
    when most of the window is unseen serves.
    """

    samples: int
    seen_samples: int
    drift_score: float
    unseen_rate: float
    mean_residual: float
    max_residual: float


class ResidualWindow:
    """A fixed-capacity ring of serving-feedback samples.

    Recording is vectorised (one modulo-indexed scatter per batch) so the
    window can sit directly behind :meth:`ServingService.record_measured`
    without adding per-arrival Python work.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise AdaptiveError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._queries = np.zeros(self.capacity, dtype=np.int64)
        self._residuals = np.full(self.capacity, np.nan)
        self._unseen = np.zeros(self.capacity, dtype=bool)
        self._head = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def record(self, queries, hints, expected, measured) -> None:
        """Fold one feedback batch into the ring (``hints`` kept for the
        monitor-hook signature; the statistics are hint-agnostic)."""
        del hints
        queries = np.asarray(queries, dtype=np.int64)
        residuals = relative_residuals(expected, measured)
        if queries.shape != residuals.shape or queries.ndim != 1:
            raise AdaptiveError(
                "record needs matching 1-D query/expected/measured arrays"
            )
        n = queries.size
        if n == 0:
            return
        if n >= self.capacity:
            # Only the newest ``capacity`` samples can survive.
            queries = queries[-self.capacity:]
            residuals = residuals[-self.capacity:]
            n = self.capacity
        positions = (self._head + np.arange(n)) % self.capacity
        self._queries[positions] = queries
        self._residuals[positions] = residuals
        self._unseen[positions] = ~np.isfinite(residuals)
        self._head = int((self._head + n) % self.capacity)
        self._size = min(self._size + n, self.capacity)

    # -- statistics -----------------------------------------------------------
    def _live(self) -> slice:
        return slice(0, self._size)

    def stats(self, tolerance: float) -> WindowStats:
        """Summarise the window's current contents."""
        residuals = self._residuals[self._live()]
        seen = np.isfinite(residuals)
        if seen.any():
            mean_residual = float(residuals[seen].mean())
            max_residual = float(residuals[seen].max())
        else:
            mean_residual = 0.0
            max_residual = 0.0
        return WindowStats(
            samples=self._size,
            seen_samples=int(seen.sum()),
            drift_score=drift_score(residuals, tolerance),
            unseen_rate=(
                float(self._unseen[self._live()].mean()) if self._size else 0.0
            ),
            mean_residual=mean_residual,
            max_residual=max_residual,
        )

    @staticmethod
    def _rows_with_hits(rows: np.ndarray, min_hits: int) -> np.ndarray:
        if min_hits < 1:
            raise AdaptiveError(f"min_hits must be >= 1, got {min_hits}")
        unique, counts = np.unique(rows, return_counts=True)
        return unique[counts >= min_hits]

    def drifted_rows(self, tolerance: float, min_hits: int = 1) -> np.ndarray:
        """Sorted unique rows with >= ``min_hits`` over-tolerance residuals.

        ``min_hits > 1`` is the per-row persistence gate: one bad
        measurement is noise, the same row deviating repeatedly within one
        window is evidence -- that is what lets the controller sweep a
        drifted tail whose traffic share never crosses the global score
        threshold.
        """
        if tolerance <= 0:
            raise AdaptiveError(f"tolerance must be > 0, got {tolerance}")
        residuals = self._residuals[self._live()]
        mask = np.isfinite(residuals) & (residuals > tolerance)
        return self._rows_with_hits(self._queries[self._live()][mask], min_hits)

    def unseen_rows(self, min_hits: int = 1) -> np.ndarray:
        """Sorted unique rows served unseen >= ``min_hits`` times in-window."""
        return self._rows_with_hits(
            self._queries[self._live()][self._unseen[self._live()]], min_hits
        )

    def clear(self) -> None:
        """Drop every sample (after a response invalidates the residual basis)."""
        self._head = 0
        self._size = 0
        self._unseen[:] = False
        self._residuals[:] = np.nan
