"""Baseline optimizers the paper compares against.

* :mod:`repro.baselines.bayesqo` -- per-query Bayesian-optimisation style
  search with a fixed time budget per query (Figure 18's comparison),
* :mod:`repro.baselines.exhaustive` -- the not-possible-in-practice oracle
  and the cost of exhaustive exploration (Table 1 / Section 3).
"""

from .bayesqo import BayesQO, BayesQOResult
from .exhaustive import exhaustive_exploration_cost, oracle_hints, oracle_latency

__all__ = [
    "BayesQO",
    "BayesQOResult",
    "exhaustive_exploration_cost",
    "oracle_hints",
    "oracle_latency",
]
