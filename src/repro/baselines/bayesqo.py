"""A BayesQO-style per-query optimizer baseline (paper Section 5.6).

BayesQO optimises one query at a time with Bayesian optimisation over the
plan space.  For Figure 18's comparison the paper gives every query a fixed
budget (three seconds) and measures how much of the workload improves.  The
essential contrast is the *allocation* strategy -- per-query, evenly split
time versus LimeQO's workload-level allocation -- so this baseline models
BayesQO as sequential model-based search within each query's own budget:

* a light-weight surrogate (distance-weighted estimate over the hints
  already tried, using hint-hint similarity from latent factors when
  available, otherwise the column means of whatever has been observed),
* expected-improvement-style acquisition with an exploration bonus,
* execution charged against the per-query budget, censored at the
  remaining budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.explorer import ExecutionOracle
from ..core.workload_matrix import WorkloadMatrix
from ..errors import ExplorationError


@dataclass
class BayesQOResult:
    """Outcome of running BayesQO over a workload."""

    matrix: WorkloadMatrix
    time_spent_per_query: np.ndarray
    evaluations_per_query: np.ndarray

    @property
    def total_time_spent(self) -> float:
        """Total offline optimisation time consumed."""
        return float(self.time_spent_per_query.sum())

    def workload_latency(self) -> float:
        """Total latency with each query's best observed hint."""
        return self.matrix.workload_latency()


class BayesQO:
    """Per-query, fixed-budget, model-based hint search."""

    def __init__(
        self,
        oracle: ExecutionOracle,
        n_queries: int,
        n_hints: int,
        per_query_budget: float = 3.0,
        exploration_weight: float = 0.3,
        hint_factors: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> None:
        if per_query_budget <= 0:
            raise ExplorationError("per_query_budget must be > 0")
        self.oracle = oracle
        self.n_queries = int(n_queries)
        self.n_hints = int(n_hints)
        self.per_query_budget = float(per_query_budget)
        self.exploration_weight = float(exploration_weight)
        self.hint_factors = (
            np.asarray(hint_factors, dtype=float) if hint_factors is not None else None
        )
        self._rng = np.random.default_rng(seed)

    # -- surrogate -------------------------------------------------------------
    def _hint_similarity(self, a: int, b: int) -> float:
        if self.hint_factors is None:
            return 1.0
        va, vb = self.hint_factors[a], self.hint_factors[b]
        denom = np.linalg.norm(va) * np.linalg.norm(vb) + 1e-12
        return float(va @ vb / denom)

    def _surrogate(self, observed: Dict[int, float], hint: int) -> Tuple[float, float]:
        """Mean / uncertainty estimate for an untried hint."""
        if not observed:
            return 1.0, 1.0
        weights = np.array(
            [max(self._hint_similarity(hint, tried), 1e-3) for tried in observed]
        )
        values = np.array(list(observed.values()))
        mean = float((weights * values).sum() / weights.sum())
        spread = float(values.std() + 1e-6)
        uncertainty = spread / np.sqrt(weights.sum())
        return mean, uncertainty

    def _acquire(self, observed: Dict[int, float]) -> Optional[int]:
        """Pick the next hint by (negative) lower confidence bound."""
        untried = [h for h in range(self.n_hints) if h not in observed]
        if not untried:
            return None
        scores = []
        for hint in untried:
            mean, uncertainty = self._surrogate(observed, hint)
            scores.append(mean - self.exploration_weight * uncertainty)
        return int(untried[int(np.argmin(scores))])

    # -- main loop ---------------------------------------------------------------
    def optimize_query(
        self, matrix: WorkloadMatrix, query: int, budget: Optional[float] = None
    ) -> Tuple[float, int]:
        """Optimise one query; returns (time spent, evaluations)."""
        budget = self.per_query_budget if budget is None else float(budget)
        remaining = budget
        evaluations = 0
        observed: Dict[int, float] = {}
        if matrix.is_observed(query, 0):
            observed[0] = matrix.value(query, 0)
        while remaining > 0:
            hint = self._acquire(observed)
            if hint is None:
                break
            result = self.oracle.execute(query, hint, timeout=remaining)
            evaluations += 1
            if result.timed_out:
                matrix.observe_censored(query, hint, result.charged_time)
                remaining -= result.charged_time
                break
            matrix.observe(query, hint, result.latency)
            observed[hint] = result.latency
            remaining -= result.charged_time
        return budget - max(remaining, 0.0), evaluations

    def run(self, matrix: Optional[WorkloadMatrix] = None) -> BayesQOResult:
        """Give every query its fixed budget, in order."""
        if matrix is None:
            matrix = WorkloadMatrix(self.n_queries, self.n_hints)
        time_spent = np.zeros(self.n_queries)
        evaluations = np.zeros(self.n_queries, dtype=int)
        for query in range(self.n_queries):
            spent, evals = self.optimize_query(matrix, query)
            time_spent[query] = spent
            evaluations[query] = evals
        return BayesQOResult(
            matrix=matrix,
            time_spent_per_query=time_spent,
            evaluations_per_query=evaluations,
        )
