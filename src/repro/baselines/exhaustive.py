"""The oracle ("Optimal") baseline and exhaustive exploration costs."""

from __future__ import annotations

import numpy as np

from ..errors import ExplorationError


def _validate(true_latencies) -> np.ndarray:
    matrix = np.asarray(true_latencies, dtype=float)
    if matrix.ndim != 2:
        raise ExplorationError("true latency matrix must be 2-D")
    if not np.all(np.isfinite(matrix)):
        raise ExplorationError("true latency matrix must be finite")
    return matrix


def oracle_hints(true_latencies) -> np.ndarray:
    """Per-query index of the truly fastest hint."""
    return _validate(true_latencies).argmin(axis=1)


def oracle_latency(true_latencies) -> float:
    """Total workload latency with the truly optimal hint per query."""
    return float(_validate(true_latencies).min(axis=1).sum())


def exhaustive_exploration_cost(true_latencies) -> float:
    """Offline time required to execute every (query, hint) cell once.

    This is the "12 days for CEB / 16 days for Stack" number motivating
    strategic exploration in Section 3.
    """
    return float(_validate(true_latencies).sum())
