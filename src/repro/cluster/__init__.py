"""Sharded multi-tenant hint serving: the horizontal layer over a shard.

:mod:`repro.serving` made one service fast; this package makes many of
them a cluster, in the spirit of the distributed-parallel analysis framing
of the related work:

* :mod:`repro.cluster.router` -- rendezvous-hash routing of per-tenant
  query namespaces to shards, plus batch splitting / regathering,
* :mod:`repro.cluster.shard` -- shard lifecycle: each shard owns its
  matrix slice, plan cache, and ALS refresher, and rows migrate between
  shards live,
* :mod:`repro.cluster.scheduler` -- budgeted round-robin background
  refresh scheduling so serving never waits on matrix completion,
* :mod:`repro.cluster.failover` -- shard health and the degraded mode
  that falls back to default plans with the no-regression guarantee
  intact,
* :mod:`repro.cluster.stats` -- mergeable cluster-wide telemetry,
* :mod:`repro.cluster.cluster` -- the :class:`ServingCluster` facade.
"""

from .cluster import ServingCluster
from .failover import HealthBoard, ShardHealth, degraded_decisions
from .router import RendezvousRouter, rendezvous_score, routing_key, split_batch
from .scheduler import RefreshScheduler
from .shard import ClusterShard
from .stats import ClusterStats, aggregate_shard_stats, parallel_throughput_qps

__all__ = [
    "ServingCluster",
    "HealthBoard",
    "ShardHealth",
    "degraded_decisions",
    "RendezvousRouter",
    "rendezvous_score",
    "routing_key",
    "split_batch",
    "RefreshScheduler",
    "ClusterShard",
    "ClusterStats",
    "aggregate_shard_stats",
    "parallel_throughput_qps",
]
