"""The sharded multi-tenant serving cluster facade.

:class:`ServingCluster` composes the pieces of :mod:`repro.cluster` into
the horizontal layer over PR 1's single-shard :class:`ServingService`:

* tenants register workloads (query-name lists) into per-tenant
  namespaces; every query's row lives on exactly one shard, chosen by
  rendezvous hashing of its ``tenant/name`` routing key;
* a served batch -- even one mixing tenants -- is split into one
  vectorised sub-batch per shard and regathered in arrival order, so the
  per-arrival cost stays fancy-indexing, never a Python loop;
* feedback is recorded with ``refresh=False`` and the background
  :class:`RefreshScheduler` budgets warm-started ALS refreshes round-robin
  across dirty shards, so no serve batch ever waits on a recompute;
* shards can be added live: rendezvous routing moves only the rows that
  now belong to the new shard, and their full observation state migrates
  with them (:meth:`WorkloadMatrix.export_rows` / ``import_rows``);
* a DOWN shard degrades to default plans for its queries -- no errors, no
  regressions -- until it is marked up again.

Decisions are byte-identical to a single :class:`ServingService` over the
union matrix (asserted in ``tests/test_cluster.py`` and the cluster
benchmark): sharding partitions rows, and the Figure 2 serving rule is
row-local.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ALSConfig
from ..core.workload_matrix import WorkloadMatrix
from ..durability.faults import FaultFS
from ..durability.journal import ShardJournal
from ..durability.recovery import RecoveredState
from ..errors import ClusterError, InjectedCrash, ReproError
from ..serving.batch_cache import BatchDecisions
from .failover import HealthBoard, degraded_decisions
from .router import RendezvousRouter, routing_key, split_batch
from .scheduler import RefreshScheduler
from .shard import ClusterShard
from .stats import ClusterStats, aggregate_shard_stats, parallel_throughput_qps


@dataclass
class _TenantDirectory:
    """Routing state for one tenant's workload."""

    tenant: str
    names: List[str] = field(default_factory=list)
    index: Dict[str, int] = field(default_factory=dict)
    # Parallel to ``names``: owning shard id and local row on that shard.
    shard_of: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    local_row: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def n_queries(self) -> int:
        return len(self.names)

    def key(self, query: int) -> str:
        return routing_key(self.tenant, self.names[query])


class ServingCluster:
    """Horizontal, multi-tenant composition of serving shards.

    Parameters
    ----------
    n_shards:
        Initial shard count (more can be added live with :meth:`add_shard`).
    n_hints:
        Width of every workload matrix -- hint sets are shared cluster-wide;
        rows (queries) are what gets sharded.
    default_hint / regression_margin:
        Same serving rule parameters as :class:`ServingService`, applied
        uniformly to every shard so cluster decisions match a single
        service over the union matrix.
    als_config / refresh_iterations:
        Per-shard incremental ALS refresher configuration.
    refresh_budget:
        Dirty shards refreshed per :meth:`tick`.
    failure_threshold:
        Consecutive shard serve failures before the breaker trips it DOWN.
    clock:
        Injectable time source shared by every shard's telemetry.
    durability_dir:
        When set, every shard gets a write-ahead journal under
        ``<durability_dir>/shard-<id>`` and the crash lifecycle
        (:meth:`kill_shard` / :meth:`restart_shard` / :meth:`checkpoint`)
        becomes available.  Without it the cluster is process-local, as
        before.
    fault_fs:
        Optional :class:`~repro.durability.FaultFS` shared by every
        shard's journal (the chaos-test seam).
    journal_sync:
        WAL sync policy for every shard journal (``"os"`` or ``"always"``).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  An *enabled* one is
        shared (shard-labeled) with every shard's serving stack and feeds
        the cluster facade's own counters and topology gauges; anything
        else leaves every path uninstrumented.
    """

    def __init__(
        self,
        n_shards: int,
        n_hints: int,
        default_hint: int = 0,
        regression_margin: float = 1.0,
        als_config: Optional[ALSConfig] = None,
        refresh_iterations: int = 3,
        refresh_budget: int = 1,
        failure_threshold: int = 3,
        clock=time.perf_counter,
        durability_dir: Optional[str] = None,
        fault_fs: Optional[FaultFS] = None,
        journal_sync: str = "os",
        telemetry=None,
    ) -> None:
        if n_shards < 1:
            raise ClusterError(f"cluster needs at least one shard, got {n_shards}")
        self.n_hints = int(n_hints)
        self.default_hint = int(default_hint)
        self.regression_margin = float(regression_margin)
        self._als_config = als_config or ALSConfig()
        self._refresh_iterations = int(refresh_iterations)
        self._clock = clock
        self.durability_dir = durability_dir
        self._fault_fs = fault_fs
        self._journal_sync = journal_sync
        self.router = RendezvousRouter()
        self.health = HealthBoard(failure_threshold=failure_threshold)
        self.scheduler = RefreshScheduler(
            budget_per_tick=refresh_budget, health=self.health
        )
        self.shards: Dict[int, ClusterShard] = {}
        self._tenants: Dict[str, _TenantDirectory] = {}
        self._next_shard_id = 0
        self._routed_batches = 0
        self._fan_out_total = 0
        self._degraded_decisions = 0
        self._shed_decisions = 0
        self._rebalanced_rows = 0
        self._crashes = 0
        self._restarts = 0
        self._queued_feedback = 0
        self._replayed_feedback = 0
        # Feedback addressed to a crashed shard waits here (per shard id)
        # and replays on restart; entries are ("observe"|"censor", args).
        self._outage_queue: Dict[int, List[Tuple[str, tuple]]] = {}
        # Normalised once: disabled telemetry costs one is-None check on
        # the routed path.
        self.telemetry = (
            telemetry
            if telemetry is not None and telemetry.config.enabled
            else None
        )
        self._cluster_metrics = (
            self.telemetry.cluster_metrics() if self.telemetry is not None else None
        )
        for _ in range(n_shards):
            self._create_shard()

    # -- topology --------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Current shard count."""
        return len(self.shards)

    @property
    def shard_ids(self) -> List[int]:
        """Shard ids in creation order."""
        return self.router.shard_ids

    @property
    def tenants(self) -> List[str]:
        """Registered tenant ids."""
        return list(self._tenants)

    def _shard_dir(self, shard_id: int) -> str:
        if self.durability_dir is None:
            raise ClusterError(
                "this cluster has no durability_dir; crash/restart needs one"
            )
        return os.path.join(self.durability_dir, f"shard-{shard_id}")

    def _create_shard(self) -> ClusterShard:
        journal = None
        if self.durability_dir is not None:
            journal = ShardJournal(
                self._shard_dir(self._next_shard_id),
                fs=self._fault_fs,
                sync=self._journal_sync,
            )
        shard = ClusterShard(
            shard_id=self._next_shard_id,
            n_hints=self.n_hints,
            default_hint=self.default_hint,
            regression_margin=self.regression_margin,
            als_config=self._als_config,
            refresh_iterations=self._refresh_iterations,
            clock=self._clock,
            journal=journal,
            telemetry=(
                self.telemetry.labeled(str(self._next_shard_id))
                if self.telemetry is not None
                else None
            ),
        )
        self._next_shard_id += 1
        self.shards[shard.shard_id] = shard
        self.router.add_shard(shard.shard_id)
        self.health.register(shard.shard_id)
        self.scheduler.register(shard)
        return shard

    def add_shard(self) -> int:
        """Add a shard live, migrating exactly the rows that re-route to it.

        Rendezvous hashing guarantees every row either stays put or moves
        to the *new* shard; each migrated row carries its full observation
        state, so decisions before and after rebalancing are identical.
        Rebalancing requires every shard up: rows on a crashed shard are
        unreachable until it restarts.
        """
        down = sorted(sid for sid, shard in self.shards.items() if shard.crashed)
        if down:
            raise ClusterError(
                f"cannot rebalance while shards {down} are down; restart them first"
            )
        new_id = self._next_shard_id
        all_keys = [
            directory.key(q)
            for directory in self._tenants.values()
            for q in range(directory.n_queries)
        ]
        moved = self.router.moves_for_new_shard(all_keys, new_id)
        shard = self._create_shard()
        if moved:
            moved_set = set(moved)
            for source in list(self.shards.values()):
                if source.shard_id == new_id:
                    continue
                owned = [k for k in source.keys if k in moved_set]
                if not owned:
                    continue
                payload = source.export_rows(owned)
                source.remove_rows(owned)
                shard.import_rows(payload)
            self._rebalanced_rows += len(moved)
            if self._cluster_metrics is not None:
                self._cluster_metrics.rebalanced_rows.inc(len(moved))
            self._rebuild_directories()
        return new_id

    def _rebuild_directories(self) -> None:
        """Recompute every tenant's shard/local-row arrays after a move."""
        for directory in self._tenants.values():
            n = directory.n_queries
            shard_of = np.empty(n, dtype=np.int64)
            local = np.empty(n, dtype=np.int64)
            for q in range(n):
                key = directory.key(q)
                sid = self.router.shard_for(key)
                shard_of[q] = sid
                local[q] = self.shards[sid].local_row(key)
            directory.shard_of = shard_of
            directory.local_row = local

    # -- tenant registration ----------------------------------------------------
    def add_tenant(self, tenant: str, query_names: Sequence[str]) -> None:
        """Register a workload under its own namespace."""
        if tenant in self._tenants:
            raise ClusterError(f"tenant {tenant!r} already registered")
        routing_key(tenant, "")  # validates the tenant id
        self._tenants[tenant] = _TenantDirectory(tenant=tenant)
        self.add_queries(tenant, query_names)

    def add_queries(self, tenant: str, names: Sequence[str]) -> List[int]:
        """Grow a tenant's workload; returns the new tenant-global indices."""
        directory = self._directory(tenant)
        names = list(names)
        for name in names:
            if name in directory.index:
                raise ClusterError(
                    f"tenant {tenant!r} already has a query named {name!r}"
                )
        if len(set(names)) != len(names):
            raise ClusterError("duplicate query names in one registration")
        keys = [routing_key(tenant, name) for name in names]
        assigned = self.router.assign(keys)
        first = directory.n_queries
        new_shard_of = np.empty(len(names), dtype=np.int64)
        new_local = np.empty(len(names), dtype=np.int64)
        for sid, positions in split_batch(assigned):
            shard_keys = [keys[p] for p in positions]
            local_indices = self.shards[sid].add_rows(shard_keys)
            new_shard_of[positions] = sid
            new_local[positions] = local_indices
        for offset, name in enumerate(names):
            directory.index[name] = first + offset
        directory.names.extend(names)
        directory.shard_of = np.concatenate([directory.shard_of, new_shard_of])
        directory.local_row = np.concatenate([directory.local_row, new_local])
        return list(range(first, first + len(names)))

    def _directory(self, tenant: str) -> _TenantDirectory:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ClusterError(f"unknown tenant {tenant!r}") from None

    def query_index(self, tenant: str, name: str) -> int:
        """Tenant-global index of a named query."""
        directory = self._directory(tenant)
        try:
            return directory.index[name]
        except KeyError:
            raise ClusterError(
                f"tenant {tenant!r} has no query named {name!r}"
            ) from None

    def n_queries(self, tenant: str) -> int:
        """Number of queries registered for a tenant."""
        return self._directory(tenant).n_queries

    # -- the hot path ------------------------------------------------------------
    def _resolve(
        self, tenant: str, queries
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        directory = self._directory(tenant)
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 1:
            raise ClusterError("expected a 1-D array of tenant query indices")
        if queries.size and (
            queries.min() < 0 or queries.max() >= directory.n_queries
        ):
            raise ClusterError(
                f"query index out of range [0, {directory.n_queries}) "
                f"for tenant {tenant!r}"
            )
        return queries, directory.shard_of[queries], directory.local_row[queries]

    def locate(self, tenant: str, queries) -> Tuple[np.ndarray, np.ndarray]:
        """Map tenant-global query indices to ``(shard_ids, local_rows)``.

        The public face of the routing directory: per-shard consumers --
        the adaptive drift controller attributes residuals to the owning
        shard this way -- resolve rows without re-hashing keys.
        """
        _, shard_ids, local = self._resolve(tenant, queries)
        return shard_ids, local

    def serve_batch(self, tenant: str, queries) -> BatchDecisions:
        """Answer one tenant's batch of arrivals (tenant-global indices)."""
        queries, shard_ids, local = self._resolve(tenant, queries)
        return self._serve_assigned(queries, shard_ids, local)

    def serve_mixed(
        self, arrivals: Sequence[Tuple[str, int]]
    ) -> BatchDecisions:
        """Answer a mixed-tenant batch of ``(tenant, query_index)`` arrivals.

        All arrivals landing on the same shard -- regardless of tenant --
        fan out as a single vectorised sub-batch; the returned decisions
        are regathered in arrival order (``queries`` holds the per-arrival
        tenant-global indices).
        """
        n = len(arrivals)
        queries = np.empty(n, dtype=np.int64)
        shard_ids = np.empty(n, dtype=np.int64)
        local = np.empty(n, dtype=np.int64)
        by_tenant: Dict[str, List[int]] = {}
        for i, (tenant, _) in enumerate(arrivals):
            by_tenant.setdefault(tenant, []).append(i)
        for tenant, positions in by_tenant.items():
            tenant_queries = np.asarray(
                [arrivals[i][1] for i in positions], dtype=np.int64
            )
            resolved, assigned, rows = self._resolve(tenant, tenant_queries)
            queries[positions] = resolved
            shard_ids[positions] = assigned
            local[positions] = rows
        return self._serve_assigned(queries, shard_ids, local)

    def _serve_assigned(
        self, queries: np.ndarray, shard_ids: np.ndarray, local: np.ndarray
    ) -> BatchDecisions:
        n = queries.shape[0]
        hints = np.full(n, self.default_hint, dtype=np.int64)
        used_default = np.ones(n, dtype=bool)
        expected = np.full(n, np.inf)
        self._routed_batches += 1
        cm = self._cluster_metrics
        if cm is None:
            groups = split_batch(shard_ids)
        else:
            start = self._clock()
            groups = split_batch(shard_ids)
            self.telemetry.tracer.record_stage(
                "router.split", self._clock() - start
            )
            cm.routed_batches.inc()
            cm.fan_out.inc(len(groups))
        self._fan_out_total += len(groups)
        for sid, positions in groups:
            if not self.health.is_up(sid):
                sub = degraded_decisions(local[positions], self.default_hint)
                self._degraded_decisions += int(positions.size)
                if cm is not None:
                    cm.degraded.inc(int(positions.size))
            else:
                try:
                    sub = self.shards[sid].serve_local(local[positions])
                    self.health.record_success(sid)
                except ReproError:
                    # One failed sub-batch degrades, counts against the
                    # breaker, and never fails the cluster-level batch.
                    self.health.record_failure(sid)
                    sub = degraded_decisions(local[positions], self.default_hint)
                    self._degraded_decisions += int(positions.size)
                    if cm is not None:
                        cm.degraded.inc(int(positions.size))
            hints[positions] = sub.hints
            used_default[positions] = sub.used_default
            expected[positions] = sub.expected_latency
        return BatchDecisions(
            queries=queries,
            hints=hints,
            used_default=used_default,
            expected_latency=expected,
        )

    def serve_all(self, tenant: str) -> BatchDecisions:
        """Answer every query of one tenant as a single batch."""
        return self.serve_batch(tenant, np.arange(self.n_queries(tenant)))

    # -- the feedback path --------------------------------------------------------
    def observe_batch(self, tenant: str, queries, hints, latencies) -> None:
        """Record measured latencies for one tenant's queries.

        The affected shards become dirty; the actual ALS refreshes run when
        the background scheduler next picks them (:meth:`tick`), never
        inline.  Health does not gate feedback: observations always land
        (in-process the matrix is reachable; a deployment would queue them).
        """
        queries, shard_ids, local = self._resolve(tenant, queries)
        hints = np.asarray(hints, dtype=np.int64)
        latencies = np.asarray(latencies, dtype=float)
        if not (queries.shape == hints.shape == latencies.shape):
            raise ClusterError(
                "observe_batch needs three 1-D arrays of equal length"
            )
        # Validate the whole batch before touching any shard: a bad element
        # must not leave earlier shard groups mutated and later ones not.
        if hints.size:
            if hints.min() < 0 or hints.max() >= self.n_hints:
                raise ClusterError(
                    f"hint index out of range [0, {self.n_hints}) in batch"
                )
            if not np.all(np.isfinite(latencies)) or np.any(latencies < 0):
                raise ClusterError(
                    "observe_batch: latencies must be finite and >= 0"
                )
        for sid, positions in split_batch(shard_ids):
            sid = int(sid)
            args = (local[positions], hints[positions], latencies[positions])
            if self.shards[sid].crashed:
                self._queue_feedback(sid, "observe", args)
                continue
            try:
                self.shards[sid].observe_local(*args)
            except InjectedCrash:
                # The record never applied (write-ahead ordering), so the
                # whole sub-batch is queued; matrix mutations are
                # idempotent, so any prefix the WAL did capture converges.
                self._handle_crash(sid)
                self._queue_feedback(sid, "observe", args)

    def observe_censored(
        self, tenant: str, query: int, hint: int, lower_bound: float
    ) -> None:
        """Record one timed-out execution (a latency lower bound)."""
        directory = self._directory(tenant)
        if not 0 <= query < directory.n_queries:
            raise ClusterError(
                f"query index {query} out of range for tenant {tenant!r}"
            )
        sid = int(directory.shard_of[query])
        args = (int(directory.local_row[query]), hint, lower_bound)
        if self.shards[sid].crashed:
            self._queue_feedback(sid, "censor", args)
            return
        try:
            self.shards[sid].observe_censored_local(*args)
        except InjectedCrash:
            self._handle_crash(sid)
            self._queue_feedback(sid, "censor", args)

    # -- background refresh ---------------------------------------------------------
    def tick(self) -> List[int]:
        """One scheduler tick: refresh up to the budget of dirty shards."""
        return self.scheduler.tick()

    def drain_refreshes(self) -> int:
        """Tick until every reachable shard is clean; returns refreshes run."""
        return self.scheduler.drain()

    # -- admission control --------------------------------------------------------------
    def record_shed(self, count: int = 1) -> None:
        """Count arrivals degraded to default plans by an ingress layer.

        Shed requests never reach a shard (that is the point of admission
        control), so the counter lives on the cluster facade rather than
        any shard's recorder; it surfaces in :class:`ClusterStats`.
        """
        if count < 0:
            raise ClusterError(f"shed count must be >= 0, got {count}")
        self._shed_decisions += int(count)
        if self._cluster_metrics is not None:
            self._cluster_metrics.shed.inc(count)

    # -- failover ---------------------------------------------------------------------
    def mark_down(self, shard_id: int) -> None:
        """Degrade a shard: its queries get default plans until marked up."""
        self.health.mark_down(shard_id)

    def mark_up(self, shard_id: int) -> None:
        """Restore a shard to verified serving."""
        self.health.mark_up(shard_id)

    # -- crash-and-rejoin lifecycle -----------------------------------------------------
    def _shard(self, shard_id: int) -> ClusterShard:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ClusterError(f"unknown shard {shard_id}") from None

    def _queue_feedback(self, shard_id: int, kind: str, args: tuple) -> None:
        self._outage_queue.setdefault(shard_id, []).append((kind, args))
        queued = int(np.asarray(args[0]).size) if kind == "observe" else 1
        self._queued_feedback += queued
        if self._cluster_metrics is not None:
            self._cluster_metrics.queued_feedback.inc(queued)

    def _handle_crash(self, shard_id: int) -> None:
        """Turn an :class:`InjectedCrash` (or operator kill) into an outage."""
        shard = self._shard(shard_id)
        if not shard.crashed:
            shard.crash()
        self.health.mark_down(shard_id)
        self._outage_queue.setdefault(shard_id, [])
        self._crashes += 1
        if self._cluster_metrics is not None:
            self._cluster_metrics.crashes.inc()

    def kill_shard(self, shard_id: int) -> None:
        """Crash a shard: in-memory state is gone, its rows degrade to
        default plans, and feedback for them queues until
        :meth:`restart_shard` replays it.  Requires a ``durability_dir``
        (without one the state would be unrecoverable)."""
        self._shard_dir(shard_id)  # raises without durability
        if self._shard(shard_id).crashed:
            raise ClusterError(f"shard {shard_id} is already down")
        self._handle_crash(shard_id)

    def restart_shard(self, shard_id: int) -> RecoveredState:
        """Recover a crashed shard from its journal and rejoin it.

        Snapshot + WAL replay rebuild the matrix byte-identically, the
        recovered shard takes over its old id in the router, health board,
        and refresh scheduler, and every feedback batch queued during the
        outage is applied (and journaled) in arrival order.  Returns the
        :class:`~repro.durability.RecoveredState`, whose ``backlog`` the
        owner should hand to the adaptation layer
        (:meth:`ClusterAdaptationController.restore_backlog`).

        A crash injected while the queue drains downs the shard again and
        keeps the unapplied tail queued; a further restart converges.
        """
        old = self._shard(shard_id)
        if not old.crashed:
            raise ClusterError(f"shard {shard_id} is not down; kill it first")
        shard = ClusterShard.recover(
            self._shard_dir(shard_id),
            shard_id=shard_id,
            n_hints=self.n_hints,
            default_hint=self.default_hint,
            regression_margin=self.regression_margin,
            als_config=self._als_config,
            refresh_iterations=self._refresh_iterations,
            clock=self._clock,
            fs=self._fault_fs,
            sync=self._journal_sync,
            telemetry=(
                self.telemetry.labeled(str(shard_id))
                if self.telemetry is not None
                else None
            ),
        )
        self.shards[shard_id] = shard
        self.scheduler.replace(shard)
        self.health.mark_up(shard_id)
        pending = self._outage_queue.pop(shard_id, [])
        cm = self._cluster_metrics
        for index, (kind, args) in enumerate(pending):
            try:
                if kind == "observe":
                    shard.observe_local(*args)
                    replayed = int(np.asarray(args[0]).size)
                else:
                    shard.observe_censored_local(*args)
                    replayed = 1
                self._replayed_feedback += replayed
                if cm is not None:
                    cm.replayed_feedback.inc(replayed)
            except InjectedCrash:
                # Same supervision as the live feedback paths: the crashed
                # entry never applied (write-ahead ordering), so it and
                # everything behind it stay queued for the next restart;
                # idempotent replay converges on any WAL-captured prefix.
                self._handle_crash(shard_id)
                self._outage_queue[shard_id] = pending[index:]
                break
        self._restarts += 1
        if cm is not None:
            cm.restarts.inc()
        assert shard.recovered is not None
        return shard.recovered

    def checkpoint(self, shard_id: Optional[int] = None) -> List[int]:
        """Snapshot + WAL-truncate shards (one, or every live journaled one).

        A crash injected mid-checkpoint downs that shard (supervision
        mirrors the feedback path) without failing the sweep.  Returns the
        ids that completed a checkpoint.
        """
        targets = [shard_id] if shard_id is not None else sorted(self.shards)
        done: List[int] = []
        for sid in targets:
            shard = self._shard(sid)
            if shard.journal is None or shard.crashed:
                continue
            try:
                shard.checkpoint()
                done.append(sid)
            except InjectedCrash:
                self._handle_crash(sid)
        return done

    def close(self) -> None:
        """Clean shutdown: final checkpoint and journal release per shard."""
        for shard in self.shards.values():
            if not shard.crashed:
                shard.close()

    # -- introspection -----------------------------------------------------------------
    def export_tenant_matrix(self, tenant: str) -> WorkloadMatrix:
        """Reassemble one tenant's union matrix from its shard-resident rows.

        The inverse of sharding, in tenant-global query order -- what a
        single :class:`ServingService` over the whole workload would hold.
        Used by the equivalence tests and benchmark.
        """
        directory = self._directory(tenant)
        n = directory.n_queries
        if n == 0:
            raise ClusterError(f"tenant {tenant!r} has no queries to export")
        values = np.full((n, self.n_hints), np.inf)
        observed = np.zeros((n, self.n_hints), dtype=bool)
        censored = np.zeros((n, self.n_hints), dtype=bool)
        timeouts = np.zeros((n, self.n_hints))
        # One batched export per shard, scattered back into global order.
        for sid, positions in split_batch(directory.shard_of):
            payload = self.shards[sid].export_rows(
                [directory.key(int(q)) for q in positions]
            )
            values[positions] = payload["values"]
            observed[positions] = payload["observed"]
            censored[positions] = payload["censored"]
            timeouts[positions] = payload["timeouts"]
        return WorkloadMatrix.from_dict(
            {
                "values": values,
                "observed": observed,
                "censored": censored,
                "timeouts": timeouts,
                "query_names": list(directory.names),
                "hint_names": [f"h{j}" for j in range(self.n_hints)],
            }
        )

    def stats(self) -> ClusterStats:
        """Cluster-wide report: merged counters, exact global percentiles.

        With telemetry enabled, the topology and scheduler gauges are
        refreshed here (cold path) so a registry read right after
        ``stats()`` -- :meth:`ClusterStats.from_registry`, the snapshot
        collector -- sees current values.
        """
        cm = self._cluster_metrics
        if cm is not None:
            cm.shards.set(self.n_shards)
            cm.shards_up.set(len(self.health.up_shards()))
            cm.tenants.set(len(self._tenants))
            cm.total_rows.set(sum(s.n_rows for s in self.shards.values()))
            cm.scheduler_ticks.set(self.scheduler.ticks)
            cm.scheduler_refreshes.set(self.scheduler.refreshes)
            cm.scheduler_budget.set(self.scheduler.budget_per_tick)
        per_shard = {sid: shard.stats() for sid, shard in self.shards.items()}
        return ClusterStats(
            n_shards=self.n_shards,
            n_tenants=len(self._tenants),
            total_rows=sum(shard.n_rows for shard in self.shards.values()),
            per_shard=per_shard,
            cluster=aggregate_shard_stats(self.shards.values()),
            parallel_qps=parallel_throughput_qps(per_shard),
            routed_batches=self._routed_batches,
            fan_out=(
                self._fan_out_total / self._routed_batches
                if self._routed_batches
                else 0.0
            ),
            degraded_decisions=self._degraded_decisions,
            shed_decisions=self._shed_decisions,
            rebalanced_rows=self._rebalanced_rows,
            scheduler_ticks=self.scheduler.ticks,
            scheduler_refreshes=self.scheduler.refreshes,
            crashes=self._crashes,
            restarts=self._restarts,
            queued_feedback=self._queued_feedback,
            replayed_feedback=self._replayed_feedback,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingCluster({self.n_shards} shards, "
            f"{len(self._tenants)} tenants, "
            f"{sum(s.n_rows for s in self.shards.values())} rows)"
        )
