"""Shard health tracking and the degraded serving mode.

When a shard is down, the queries routed to it are *not* errors: the
cluster answers them with the tenant's default plan.  The default plan is
what the DBMS would have executed with no hint service at all, so the
paper's no-regression guarantee holds cell-for-cell through an outage --
a degraded answer can never be slower than having no cluster.  What is
lost is only the upside (verified faster plans) and the expected-latency
annotation (the down shard's matrix is unreachable, so it reports ``inf``).

:class:`HealthBoard` is deliberately simple bookkeeping: explicit
``mark_down`` / ``mark_up`` plus a consecutive-failure counter that trips a
shard automatically at a threshold, the way a serving-side circuit breaker
would.
"""

from __future__ import annotations

import enum
from typing import Dict, List

import numpy as np

from ..errors import ClusterError
from ..serving.batch_cache import BatchDecisions


class ShardHealth(enum.Enum):
    """Health state of one shard."""

    UP = "up"
    DOWN = "down"


class HealthBoard:
    """Tracks per-shard health and consecutive serve failures.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls that trip a shard to
        DOWN automatically.  A successful serve (:meth:`record_success`)
        resets the streak.
    """

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise ClusterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self._health: Dict[int, ShardHealth] = {}
        self._streaks: Dict[int, int] = {}

    def register(self, shard_id: int) -> None:
        """Start tracking a shard (initially UP)."""
        if shard_id in self._health:
            raise ClusterError(f"shard {shard_id} already registered")
        self._health[shard_id] = ShardHealth.UP
        self._streaks[shard_id] = 0

    def _check(self, shard_id: int) -> None:
        if shard_id not in self._health:
            raise ClusterError(f"shard {shard_id} not registered")

    def is_up(self, shard_id: int) -> bool:
        """True when the shard may serve verified decisions."""
        self._check(shard_id)
        return self._health[shard_id] is ShardHealth.UP

    def mark_down(self, shard_id: int) -> None:
        """Force a shard into degraded mode (operator action or crash)."""
        self._check(shard_id)
        self._health[shard_id] = ShardHealth.DOWN

    def mark_up(self, shard_id: int) -> None:
        """Restore a shard to service; the failure streak resets."""
        self._check(shard_id)
        self._health[shard_id] = ShardHealth.UP
        self._streaks[shard_id] = 0

    def record_failure(self, shard_id: int) -> bool:
        """Count one serve failure; returns True when the breaker trips."""
        self._check(shard_id)
        self._streaks[shard_id] += 1
        if self._streaks[shard_id] >= self.failure_threshold:
            self._health[shard_id] = ShardHealth.DOWN
            return True
        return False

    def record_success(self, shard_id: int) -> None:
        """Reset the failure streak after a healthy serve."""
        self._check(shard_id)
        self._streaks[shard_id] = 0

    def up_shards(self) -> List[int]:
        """Ids of shards currently UP."""
        return [s for s, h in self._health.items() if h is ShardHealth.UP]

    def down_shards(self) -> List[int]:
        """Ids of shards currently DOWN."""
        return [s for s, h in self._health.items() if h is ShardHealth.DOWN]


def degraded_decisions(queries: np.ndarray, default_hint: int) -> BatchDecisions:
    """Default-plan answers for arrivals whose shard is down.

    ``used_default`` is True and ``expected_latency`` is ``inf`` for every
    arrival: without the shard's matrix no latency is verifiable, and
    serving the default is exactly the no-service behaviour the
    no-regression guarantee is anchored to.
    """
    queries = np.asarray(queries, dtype=np.int64)
    n = queries.shape[0]
    return BatchDecisions(
        queries=queries,
        hints=np.full(n, int(default_hint), dtype=np.int64),
        used_default=np.ones(n, dtype=bool),
        expected_latency=np.full(n, np.inf),
    )
