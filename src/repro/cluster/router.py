"""Rendezvous-hash routing of namespaced query keys to shards.

Every query in the cluster is identified by a *routing key*
``"tenant/query_name"`` -- the tenant prefix keeps workloads (millions of
users means many workloads) in disjoint namespaces even when their query
names collide.  Keys are mapped to shards with rendezvous (highest-random-
weight) hashing: each ``(key, shard)`` pair gets a deterministic 64-bit
score from BLAKE2b and the key lives on the highest-scoring shard.

Rendezvous hashing is what makes live rebalancing cheap: when a shard is
added, a key either keeps its old shard or moves to the *new* shard
(whichever existing shard scored highest still scores highest among the old
set), so only ~``1/(n+1)`` of the rows migrate and none shuffle between old
shards.  That minimal-disruption property is asserted by a hypothesis test
in ``tests/test_cluster.py``.

The scoring hash is :func:`hashlib.blake2b`, not Python's built-in
``hash`` -- the built-in is salted per process, which would re-route every
key on restart.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ClusterError


def routing_key(tenant: str, name: str) -> str:
    """The cluster-wide identifier of one tenant's query."""
    if not tenant or "/" in tenant:
        raise ClusterError(
            f"tenant id must be non-empty and must not contain '/', got {tenant!r}"
        )
    return f"{tenant}/{name}"


def rendezvous_score(key: str, shard_id: int) -> int:
    """Deterministic 64-bit score of a (key, shard) pair."""
    digest = hashlib.blake2b(
        f"{key}|shard:{shard_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RendezvousRouter:
    """Maps routing keys to shard ids; stable under shard addition.

    The router is pure routing state: it knows the shard id set and nothing
    about matrices or services.  Assignments are cached per key (the score
    loop is Python-level) and the cache is dropped whenever the topology
    changes.
    """

    def __init__(self, shard_ids: Iterable[int] = ()) -> None:
        self._shard_ids: List[int] = []
        self._cache: Dict[str, int] = {}
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    @property
    def shard_ids(self) -> List[int]:
        """Current topology (insertion order)."""
        return list(self._shard_ids)

    @property
    def n_shards(self) -> int:
        """Number of shards in the topology."""
        return len(self._shard_ids)

    def add_shard(self, shard_id: int) -> None:
        """Grow the topology by one shard (invalidates cached assignments)."""
        if shard_id in self._shard_ids:
            raise ClusterError(f"shard {shard_id} already routed to")
        self._shard_ids.append(int(shard_id))
        self._cache.clear()

    def remove_shard(self, shard_id: int) -> None:
        """Shrink the topology (invalidates cached assignments)."""
        if shard_id not in self._shard_ids:
            raise ClusterError(f"shard {shard_id} not in the topology")
        self._shard_ids.remove(shard_id)
        self._cache.clear()

    # -- assignment -----------------------------------------------------------
    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` under the current topology."""
        if not self._shard_ids:
            raise ClusterError("cannot route with an empty topology")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        best = max(self._shard_ids, key=lambda sid: rendezvous_score(key, sid))
        self._cache[key] = best
        return best

    def assign(self, keys: Sequence[str]) -> np.ndarray:
        """Shard id per key, as an int64 array parallel to ``keys``."""
        return np.fromiter(
            (self.shard_for(k) for k in keys), dtype=np.int64, count=len(keys)
        )

    def moves_for_new_shard(
        self, keys: Iterable[str], new_shard_id: int
    ) -> List[str]:
        """Keys that would migrate to ``new_shard_id`` if it were added.

        Computed *before* mutating the topology so the caller can stage the
        row migration; by the rendezvous property these are exactly the keys
        whose assignment changes.
        """
        if new_shard_id in self._shard_ids:
            raise ClusterError(f"shard {new_shard_id} already routed to")
        moved = []
        for key in keys:
            current = rendezvous_score(key, self.shard_for(key))
            if rendezvous_score(key, new_shard_id) > current:
                moved.append(key)
        return moved


def split_batch(shard_ids: np.ndarray) -> List[Tuple[int, np.ndarray]]:
    """Group batch positions by shard: one vectorised sub-batch per shard.

    Given the per-arrival shard assignment of a (possibly mixed-tenant)
    batch, returns ``(shard_id, positions)`` pairs where ``positions``
    indexes into the original batch.  Scattering each sub-batch's answers
    back through its ``positions`` regathers the batch in arrival order --
    no per-arrival Python loop on either side.
    """
    shard_ids = np.asarray(shard_ids, dtype=np.int64)
    if shard_ids.ndim != 1:
        raise ClusterError("split_batch expects a 1-D shard assignment array")
    order = np.argsort(shard_ids, kind="stable")
    sorted_ids = shard_ids[order]
    boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
    groups = np.split(order, boundaries)
    return [(int(shard_ids[g[0]]), g) for g in groups if g.size]
