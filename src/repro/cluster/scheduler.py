"""Budgeted round-robin scheduling of background ALS refreshes.

Feedback lands on shards with ``refresh=False`` -- the serve path never
pays for matrix completion.  Instead the cluster owner calls
:meth:`RefreshScheduler.tick` from whatever background cadence it has (an
idle loop, a timer, the gaps between arrival bursts), and each tick
warm-starts at most ``budget_per_tick`` dirty shards.  The cursor is
round-robin over the shard ring so a permanently chatty tenant cannot
starve the refreshes of a quiet one, and DOWN shards are skipped entirely
(their matrices may be unreachable; they re-enter the rotation on
``mark_up``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ClusterError
from .failover import HealthBoard
from .shard import ClusterShard


class RefreshScheduler:
    """Round-robin refresh budgeting across the cluster's shards."""

    def __init__(
        self,
        budget_per_tick: int = 1,
        health: Optional[HealthBoard] = None,
    ) -> None:
        if budget_per_tick < 1:
            raise ClusterError(
                f"budget_per_tick must be >= 1, got {budget_per_tick}"
            )
        self.budget_per_tick = int(budget_per_tick)
        self.health = health
        self._shards: Dict[int, ClusterShard] = {}
        self._ring: List[int] = []
        self._priority: List[int] = []
        self._cursor = 0
        self.ticks = 0
        self.refreshes = 0
        self.skipped_down = 0
        self.escalations = 0

    def register(self, shard: ClusterShard) -> None:
        """Add a shard to the refresh rotation."""
        if shard.shard_id in self._shards:
            raise ClusterError(f"shard {shard.shard_id} already scheduled")
        self._shards[shard.shard_id] = shard
        self._ring.append(shard.shard_id)

    def replace(self, shard: ClusterShard) -> None:
        """Swap in a recovered shard object under an existing id.

        Ring position, cursor, and any pending escalation are preserved --
        a restarted shard keeps exactly the schedule slot of its previous
        incarnation.
        """
        if shard.shard_id not in self._shards:
            raise ClusterError(f"cannot replace unscheduled shard {shard.shard_id}")
        self._shards[shard.shard_id] = shard

    def set_budget(self, budget_per_tick: int) -> None:
        """Reallocate the per-tick refresh budget (adaptation escalation)."""
        if budget_per_tick < 1:
            raise ClusterError(
                f"budget_per_tick must be >= 1, got {budget_per_tick}"
            )
        self.budget_per_tick = int(budget_per_tick)

    def escalate(self, shard_id: int) -> None:
        """Jump a shard to the front of the next tick, outside the budget.

        The adaptation controller calls this when it detects drift on a
        shard: the shard's warm ALS refresh must land on the very next
        tick even if the round-robin budget is already spoken for.  An
        escalation is one-shot and deduplicated; unknown shards raise.
        """
        if shard_id not in self._shards:
            raise ClusterError(f"cannot escalate unknown shard {shard_id}")
        if shard_id not in self._priority:
            self._priority.append(shard_id)
            self.escalations += 1

    def dirty_shards(self) -> List[int]:
        """Ids of shards with observations newer than their last refresh."""
        return [sid for sid in self._ring if self._shards[sid].is_dirty]

    def _refreshable(self, shard_id: int) -> bool:
        if self.health is not None and not self.health.is_up(shard_id):
            return False
        return self._shards[shard_id].is_dirty

    def tick(self) -> List[int]:
        """Refresh up to ``budget_per_tick`` dirty shards; returns their ids.

        Escalated shards (see :meth:`escalate`) refresh first and do not
        consume the round-robin budget.  Then one full lap of the ring per
        tick at most: shards that are clean cost one ``is_dirty`` check,
        DOWN shards are counted as skipped, and the cursor persists across
        ticks so the budget rotates fairly.
        """
        self.ticks += 1
        refreshed: List[int] = []
        counted_down: set = set()
        if self._priority:
            escalated, self._priority = self._priority, []
            for shard_id in escalated:
                if self.health is not None and not self.health.is_up(shard_id):
                    # A DOWN shard keeps its escalation: the refresh must
                    # still land on the first tick after it recovers.  The
                    # skip counter keeps the ring pass's semantics -- only
                    # shards with a refresh actually pending count.
                    if self._shards[shard_id].is_dirty:
                        self.skipped_down += 1
                        counted_down.add(shard_id)
                    self._priority.append(shard_id)
                    continue
                shard = self._shards[shard_id]
                if shard.is_dirty and shard.refresh():
                    self.refreshes += 1
                    refreshed.append(shard_id)
        if not self._ring:
            return refreshed
        examined = 0
        from_ring = 0
        n = len(self._ring)
        while examined < n and from_ring < self.budget_per_tick:
            shard_id = self._ring[self._cursor % n]
            self._cursor = (self._cursor + 1) % n
            examined += 1
            shard = self._shards[shard_id]
            if self.health is not None and not self.health.is_up(shard_id):
                # One skip event per shard per tick, even when the shard
                # was already counted in the escalation pass above.
                if shard.is_dirty and shard_id not in counted_down:
                    self.skipped_down += 1
                continue
            if shard.is_dirty and shard.refresh():
                self.refreshes += 1
                from_ring += 1
                refreshed.append(shard_id)
        return refreshed

    def drain(self, max_ticks: int = 1000) -> int:
        """Tick until no refreshable shard is dirty; returns refreshes run."""
        total = 0
        for _ in range(max_ticks):
            if not any(self._refreshable(sid) for sid in self._ring):
                break
            total += len(self.tick())
        return total
