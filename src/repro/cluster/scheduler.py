"""Budgeted round-robin scheduling of background ALS refreshes.

Feedback lands on shards with ``refresh=False`` -- the serve path never
pays for matrix completion.  Instead the cluster owner calls
:meth:`RefreshScheduler.tick` from whatever background cadence it has (an
idle loop, a timer, the gaps between arrival bursts), and each tick
warm-starts at most ``budget_per_tick`` dirty shards.  The cursor is
round-robin over the shard ring so a permanently chatty tenant cannot
starve the refreshes of a quiet one, and DOWN shards are skipped entirely
(their matrices may be unreachable; they re-enter the rotation on
``mark_up``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ClusterError
from .failover import HealthBoard
from .shard import ClusterShard


class RefreshScheduler:
    """Round-robin refresh budgeting across the cluster's shards."""

    def __init__(
        self,
        budget_per_tick: int = 1,
        health: Optional[HealthBoard] = None,
    ) -> None:
        if budget_per_tick < 1:
            raise ClusterError(
                f"budget_per_tick must be >= 1, got {budget_per_tick}"
            )
        self.budget_per_tick = int(budget_per_tick)
        self.health = health
        self._shards: Dict[int, ClusterShard] = {}
        self._ring: List[int] = []
        self._cursor = 0
        self.ticks = 0
        self.refreshes = 0
        self.skipped_down = 0

    def register(self, shard: ClusterShard) -> None:
        """Add a shard to the refresh rotation."""
        if shard.shard_id in self._shards:
            raise ClusterError(f"shard {shard.shard_id} already scheduled")
        self._shards[shard.shard_id] = shard
        self._ring.append(shard.shard_id)

    def dirty_shards(self) -> List[int]:
        """Ids of shards with observations newer than their last refresh."""
        return [sid for sid in self._ring if self._shards[sid].is_dirty]

    def _refreshable(self, shard_id: int) -> bool:
        if self.health is not None and not self.health.is_up(shard_id):
            return False
        return self._shards[shard_id].is_dirty

    def tick(self) -> List[int]:
        """Refresh up to ``budget_per_tick`` dirty shards; returns their ids.

        One full lap of the ring per tick at most: shards that are clean
        cost one ``is_dirty`` check, DOWN shards are counted as skipped,
        and the cursor persists across ticks so the budget rotates fairly.
        """
        self.ticks += 1
        refreshed: List[int] = []
        if not self._ring:
            return refreshed
        examined = 0
        n = len(self._ring)
        while examined < n and len(refreshed) < self.budget_per_tick:
            shard_id = self._ring[self._cursor % n]
            self._cursor = (self._cursor + 1) % n
            examined += 1
            shard = self._shards[shard_id]
            if self.health is not None and not self.health.is_up(shard_id):
                if shard.is_dirty:
                    self.skipped_down += 1
                continue
            if shard.is_dirty and shard.refresh():
                self.refreshes += 1
                refreshed.append(shard_id)
        return refreshed

    def drain(self, max_ticks: int = 1000) -> int:
        """Tick until no refreshable shard is dirty; returns refreshes run."""
        total = 0
        for _ in range(max_ticks):
            if not any(self._refreshable(sid) for sid in self._ring):
                break
            total += len(self.tick())
        return total
