"""One serving shard: a routed slice of rows behind a `ServingService`.

A shard owns the full single-node serving stack from PR 1 -- its own
:class:`WorkloadMatrix` (only the rows routed to it), a
:class:`ServingService` (which carries the vectorised
:class:`~repro.serving.batch_cache.BatchedPlanCache`), and an
:class:`IncrementalALSRefresher` -- plus the row bookkeeping the cluster
needs: a routing-key -> local-row table, and export / import / remove
operations so rows can migrate between shards live (rebalancing keeps every
observation and censored lower bound; the receiving shard's decisions for a
migrated row are byte-identical to the sender's).

The matrix is created lazily on the first row: :class:`WorkloadMatrix`
requires at least one row, and a freshly added shard legitimately owns
nothing until the router hands it keys.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ALSConfig
from ..core.workload_matrix import WorkloadMatrix
from ..durability.journal import ShardJournal
from ..durability.recovery import RecoveredState, recover_journal
from ..durability.snapshot import matrix_to_jsonable
from ..errors import ClusterError
from ..serving.batch_cache import BatchDecisions
from ..serving.refresh import IncrementalALSRefresher
from ..serving.service import ServingService
from ..serving.stats import LatencyRecorder, ServingStats


class ClusterShard:
    """Lifecycle and row bookkeeping for one shard of the cluster.

    Parameters mirror :class:`ServingService`; ``clock`` is injectable so
    tests (and the deterministic parallel-throughput model in the cluster
    benchmark) can fake time.  With a ``journal`` attached every matrix
    mutation is written ahead to disk, :meth:`checkpoint` bounds the log,
    and :meth:`recover` rebuilds the shard after :meth:`crash`.
    """

    def __init__(
        self,
        shard_id: int,
        n_hints: int,
        default_hint: int = 0,
        regression_margin: float = 1.0,
        als_config: Optional[ALSConfig] = None,
        refresh_iterations: int = 3,
        clock=time.perf_counter,
        journal: Optional[ShardJournal] = None,
        telemetry=None,
    ) -> None:
        if n_hints < 1:
            raise ClusterError(f"shard needs a positive hint count, got {n_hints}")
        if not 0 <= default_hint < n_hints:
            raise ClusterError(
                f"default hint {default_hint} out of range for {n_hints} hints"
            )
        self.shard_id = int(shard_id)
        self.n_hints = int(n_hints)
        self.default_hint = int(default_hint)
        self.regression_margin = float(regression_margin)
        self.refresher = IncrementalALSRefresher(
            als_config or ALSConfig(), refresh_iterations=refresh_iterations
        )
        self._clock = clock
        self.journal = journal
        self.crashed = False
        self.recovered: Optional[RecoveredState] = None
        self.matrix: Optional[WorkloadMatrix] = None
        self.service: Optional[ServingService] = None
        self._rows: Dict[str, int] = {}
        self._refreshed_version: Optional[int] = None
        # Owned by the shard, not the service: telemetry must survive the
        # service being retired and rebuilt when every row migrates away.
        self._recorder = LatencyRecorder()
        # A shard-labeled view of the cluster's context (or None); handed
        # to every service this shard builds so its metrics carry the
        # shard's label.
        self.telemetry = (
            telemetry
            if telemetry is not None and telemetry.config.enabled
            else None
        )

    # -- row bookkeeping -----------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows this shard currently owns."""
        return len(self._rows)

    @property
    def keys(self) -> List[str]:
        """Routing keys in local row order."""
        return [] if self.matrix is None else list(self.matrix.query_names)

    def owns(self, key: str) -> bool:
        """True when ``key``'s row lives on this shard."""
        return key in self._rows

    def local_row(self, key: str) -> int:
        """Local row index of ``key`` (raises when not owned)."""
        try:
            return self._rows[key]
        except KeyError:
            raise ClusterError(
                f"shard {self.shard_id} does not own key {key!r}"
            ) from None

    def _empty_payload(self, keys: Sequence[str]) -> Dict:
        n = len(keys)
        return {
            "values": np.full((n, self.n_hints), np.inf),
            "observed": np.zeros((n, self.n_hints), dtype=bool),
            "censored": np.zeros((n, self.n_hints), dtype=bool),
            "timeouts": np.zeros((n, self.n_hints)),
            "query_names": list(keys),
        }

    def add_rows(self, keys: Sequence[str]) -> List[int]:
        """Create fully unobserved rows for new keys; returns local indices."""
        return self.import_rows(self._empty_payload(keys))

    def import_rows(self, payload: Dict) -> List[int]:
        """Attach rows (from :meth:`export_rows` or :meth:`add_rows`)."""
        names = list(payload["query_names"])
        for key in names:
            if key in self._rows:
                raise ClusterError(
                    f"shard {self.shard_id} already owns key {key!r}"
                )
        if not names:
            return []
        if self.crashed:
            raise ClusterError(
                f"shard {self.shard_id} has crashed; restart it before adding rows"
            )
        if self.matrix is None:
            if self.journal is not None:
                # The matrix does not exist yet, so the write-ahead record
                # is logged here instead of by the matrix hook.
                self.journal.log_import(matrix_to_jsonable(payload))
            self.matrix = WorkloadMatrix.from_dict(
                {**payload, "hint_names": [f"h{j}" for j in range(self.n_hints)]}
            )
            self.service = ServingService(
                self.matrix,
                default_hint=self.default_hint,
                regression_margin=self.regression_margin,
                refresher=self.refresher,
                clock=self._clock,
                recorder=self._recorder,
                journal=self.journal,
                telemetry=self.telemetry,
            )
            indices = list(range(len(names)))
        else:
            indices = self.matrix.import_rows(payload)
        for key, index in zip(names, indices):
            self._rows[key] = index
        return indices

    def export_rows(self, keys: Sequence[str]) -> Dict:
        """Row payload for a set of owned keys (for migration elsewhere)."""
        if self.matrix is None:
            raise ClusterError(f"shard {self.shard_id} owns no rows to export")
        return self.matrix.export_rows([self.local_row(k) for k in keys])

    def remove_rows(self, keys: Sequence[str]) -> None:
        """Drop owned rows after their migration; remaining rows re-index."""
        keys = list(keys)
        if not keys:
            return
        indices = [self.local_row(k) for k in keys]
        if len(indices) == self.n_rows:
            # The matrix cannot become empty; retire the whole serving stack.
            if self.journal is not None:
                self.journal.log_retire()
            if self.matrix is not None:
                self.matrix.journal = None
            self.matrix = None
            self.service = None
            self._rows.clear()
            self._refreshed_version = None
            return
        self.matrix.remove_queries(indices)
        self._rows = {key: row for row, key in enumerate(self.matrix.query_names)}

    # -- serving (called by the cluster with local row indices) ----------------
    def serve_local(self, local_queries: np.ndarray) -> BatchDecisions:
        """Answer a sub-batch of locally indexed arrivals."""
        if self.crashed:
            raise ClusterError(f"shard {self.shard_id} has crashed")
        if self.service is None:
            raise ClusterError(f"shard {self.shard_id} owns no rows yet")
        return self.service.serve_batch(local_queries)

    def observe_local(self, local_queries, hints, latencies) -> None:
        """Record feedback for locally indexed rows.

        Never runs ALS inline -- the refresh happens when the cluster's
        background scheduler picks this shard (:meth:`refresh`), so a serve
        batch can never be stuck behind a recompute.
        """
        if self.crashed:
            raise ClusterError(f"shard {self.shard_id} has crashed")
        if self.service is None:
            raise ClusterError(f"shard {self.shard_id} owns no rows yet")
        self.service.observe_batch(local_queries, hints, latencies, refresh=False)

    def observe_censored_local(
        self, local_query: int, hint: int, lower_bound: float
    ) -> None:
        """Record a timed-out execution for a locally indexed row."""
        if self.crashed:
            raise ClusterError(f"shard {self.shard_id} has crashed")
        if self.matrix is None:
            raise ClusterError(f"shard {self.shard_id} owns no rows yet")
        self.matrix.observe_censored(local_query, hint, lower_bound)

    # -- background refresh ----------------------------------------------------
    @property
    def is_dirty(self) -> bool:
        """True when observations landed since the last completed refresh."""
        if self.matrix is None:
            return False
        return self._refreshed_version != self.matrix.version

    def refresh(self) -> bool:
        """Warm-started ALS refresh (scheduler hook); True when a solve ran."""
        if self.matrix is None:
            return False
        ran = self.service.refresh_now()
        self._refreshed_version = self.matrix.version
        return ran

    # -- durability lifecycle ---------------------------------------------------
    def checkpoint(self) -> int:
        """Snapshot the matrix and truncate the WAL; returns the covered LSN."""
        if self.journal is None:
            raise ClusterError(f"shard {self.shard_id} has no journal to checkpoint")
        if self.crashed:
            raise ClusterError(f"shard {self.shard_id} has crashed")
        state = None
        if self.matrix is not None:
            state = matrix_to_jsonable(self.matrix.to_dict())
        return self.journal.checkpoint(state)

    def close(self) -> None:
        """Clean shutdown: final checkpoint, then release the journal."""
        if self.journal is not None and not self.crashed:
            self.checkpoint()
            self.journal.close()

    def crash(self) -> None:
        """Simulated process death: sever all in-memory serving state.

        The journal's file handles are dropped as-is (everything appended
        is already with the kernel), the matrix and service vanish, and
        only the cluster-side bookkeeping (``_rows``, telemetry) survives
        -- the cluster needs it to keep routing and queueing during the
        outage.  :meth:`recover` is the only way back.
        """
        if self.crashed:
            raise ClusterError(f"shard {self.shard_id} has already crashed")
        if self.matrix is not None:
            self.matrix.journal = None
        if self.journal is not None:
            self.journal.crash()
        self.matrix = None
        self.service = None
        self._refreshed_version = None
        self.crashed = True

    @classmethod
    def recover(
        cls,
        directory: str,
        shard_id: int,
        n_hints: int,
        default_hint: int = 0,
        regression_margin: float = 1.0,
        als_config: Optional[ALSConfig] = None,
        refresh_iterations: int = 3,
        clock=time.perf_counter,
        fs=None,
        sync: str = "os",
        telemetry=None,
    ) -> "ClusterShard":
        """Rebuild a shard from its journal directory after a crash.

        Replays snapshot + WAL into a fresh matrix/service and resumes
        journaling where the log left off.  ``shard.recovered`` carries
        the replay accounting (including the adaptation backlog the owner
        should re-seed).
        """
        journal, state = recover_journal(directory, fs=fs, sync=sync, clock=clock)
        shard = cls(
            shard_id=shard_id,
            n_hints=n_hints,
            default_hint=default_hint,
            regression_margin=regression_margin,
            als_config=als_config,
            refresh_iterations=refresh_iterations,
            clock=clock,
            journal=journal,
            telemetry=telemetry,
        )
        if state.matrix is not None:
            if state.matrix.n_hints != shard.n_hints:
                raise ClusterError(
                    f"journal at {directory} holds {state.matrix.n_hints}-hint rows, "
                    f"shard expects {n_hints}"
                )
            shard.matrix = state.matrix
            shard.service = ServingService(
                shard.matrix,
                default_hint=shard.default_hint,
                regression_margin=shard.regression_margin,
                refresher=shard.refresher,
                clock=clock,
                recorder=shard._recorder,
                journal=journal,
                telemetry=shard.telemetry,
            )
            shard._rows = {
                name: index for index, name in enumerate(shard.matrix.query_names)
            }
        shard.recovered = state
        return shard

    # -- telemetry -------------------------------------------------------------
    def stats(self) -> ServingStats:
        """This shard's serving report (survives full-row retirement)."""
        return self._recorder.report()

    def recorder(self) -> LatencyRecorder:
        """Raw recorder for exact cluster-wide percentile pooling."""
        return self._recorder

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterShard(id={self.shard_id}, rows={self.n_rows}, "
            f"dirty={self.is_dirty})"
        )
