"""Cluster-wide telemetry: mergeable per-shard reports plus routing counters.

Two views of the same traffic:

* ``cluster`` -- the fold of every shard's :class:`ServingStats` through
  :meth:`ServingStats.merge` (the mergeable-counter path any external
  aggregator could run from per-shard summaries alone), with the global
  p50/p99 recomputed *exactly* from the pooled raw recorders since this
  aggregator holds every shard in-process
  (:meth:`LatencyRecorder.merged`);
* ``parallel_qps`` -- the distributed-parallel reading of throughput:
  shards are independent units, so a deployment's wall-clock for a fanned-
  out batch is its slowest shard, and aggregate throughput is total
  decisions over the *maximum* per-shard busy time (the in-process
  ``cluster.throughput_qps`` divides by the sum instead and is the
  conservative serial reading).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Union

from ..serving.stats import LatencyRecorder, ServingStats
from ..telemetry.runtime import (
    CLUSTER_SHED_TOTAL,
    CRASHES_TOTAL,
    DECISIONS_TOTAL,
    DEGRADED_TOTAL,
    FAN_OUT_TOTAL,
    QUEUED_FEEDBACK_TOTAL,
    REBALANCED_ROWS_TOTAL,
    REPLAYED_FEEDBACK_TOTAL,
    RESTARTS_TOTAL,
    ROUTED_BATCHES_TOTAL,
    ROWS_GAUGE,
    SCHEDULER_REFRESHES_GAUGE,
    SCHEDULER_TICKS_GAUGE,
    SHARDS_GAUGE,
    TENANTS_GAUGE,
)


@dataclass(frozen=True)
class ClusterStats:
    """Point-in-time report over the whole cluster.

    Attributes
    ----------
    n_shards / n_tenants / total_rows:
        Topology: shard count, registered tenants, rows across all shards.
    per_shard:
        Each shard's own :class:`ServingStats`.
    cluster:
        The merged report (exact counters, exact pooled percentiles).
    parallel_qps:
        Total decisions over the maximum per-shard busy time -- the
        throughput of the same shards deployed as parallel units.
    routed_batches / fan_out:
        Batches routed through the cluster and the average number of
        per-shard sub-batches each one split into.
    degraded_decisions:
        Arrivals answered with the default plan because their shard was
        down.
    shed_decisions:
        Arrivals answered with the default plan by ingress admission
        control before reaching any shard (:meth:`ServingCluster.record_shed`).
    rebalanced_rows:
        Rows migrated between shards by topology changes so far.
    scheduler_ticks / scheduler_refreshes:
        Background refresh activity.
    crashes / restarts:
        Shard processes lost (operator kill or injected fault) and shards
        recovered from their journals.
    queued_feedback / replayed_feedback:
        Observations addressed to a crashed shard that waited in the
        outage queue, and how many of them have been applied by restarts.
    """

    n_shards: int
    n_tenants: int
    total_rows: int
    per_shard: Dict[int, ServingStats]
    cluster: ServingStats
    parallel_qps: float
    routed_batches: int
    fan_out: float
    degraded_decisions: int
    rebalanced_rows: int
    scheduler_ticks: int
    scheduler_refreshes: int
    shed_decisions: int = 0
    crashes: int = 0
    restarts: int = 0
    queued_feedback: int = 0
    replayed_feedback: int = 0

    def as_dict(self, registry=None) -> Dict[str, Union[int, float, Dict]]:
        """Plain nested dictionary for dashboards and benchmark JSON.

        With a :class:`~repro.telemetry.MetricsRegistry` passed, the
        dictionary gains a ``telemetry`` section rebuilt from the registry
        (:meth:`from_registry`) plus a ``consistent`` flag over the
        facade counters -- same contract as :meth:`ServingStats.as_dict`.
        The flag deliberately excludes per-shard decision counts: the
        registry is monotonic across shard crash/restart cycles while a
        recovered shard starts a fresh in-memory recorder, so after a
        restart the registry legitimately remembers *more* than the
        dataclass (it is the more durable of the two views).
        """
        out = self._base_dict()
        if registry is not None:
            mirror = ClusterStats.from_registry(registry)
            section = mirror._base_dict()
            section["consistent"] = (
                mirror.routed_batches == self.routed_batches
                and mirror.degraded_decisions == self.degraded_decisions
                and mirror.shed_decisions == self.shed_decisions
                and mirror.crashes == self.crashes
                and mirror.restarts == self.restarts
                and mirror.cluster.decisions >= self.cluster.decisions
            )
            out["telemetry"] = section
        return out

    @classmethod
    def from_registry(cls, registry) -> "ClusterStats":
        """Rebuild the cluster report from the registry alone.

        Per-shard serving stats come from the shard-labeled children of
        the well-known serving metrics; facade counters from the cluster
        counters; topology and scheduler figures from the gauges that
        :meth:`ServingCluster.stats` refreshes.  Percentiles are
        bucket-interpolated (see :meth:`ServingStats.from_registry`).
        """

        def value(name, default=0):
            if name not in registry:
                return default
            return registry.get(name).child.value

        per_shard: Dict[int, ServingStats] = {}
        if DECISIONS_TOTAL in registry:
            for key, _ in registry.get(DECISIONS_TOTAL).children():
                label = key[0]
                if label.isdigit():
                    per_shard[int(label)] = ServingStats.from_registry(
                        registry, shard=label
                    )
        cluster = ServingStats.from_registry(registry)
        # The facade-level shed counter lives outside any shard's recorder
        # (shed arrivals never reach a shard), exactly like the dataclass.
        shed = int(value(CLUSTER_SHED_TOTAL))
        routed = int(value(ROUTED_BATCHES_TOTAL))
        return cls(
            n_shards=int(value(SHARDS_GAUGE, len(per_shard))),
            n_tenants=int(value(TENANTS_GAUGE)),
            total_rows=int(value(ROWS_GAUGE)),
            per_shard=per_shard,
            cluster=cluster,
            parallel_qps=parallel_throughput_qps(per_shard),
            routed_batches=routed,
            fan_out=(value(FAN_OUT_TOTAL) / routed if routed else 0.0),
            degraded_decisions=int(value(DEGRADED_TOTAL)),
            shed_decisions=shed,
            rebalanced_rows=int(value(REBALANCED_ROWS_TOTAL)),
            scheduler_ticks=int(value(SCHEDULER_TICKS_GAUGE)),
            scheduler_refreshes=int(value(SCHEDULER_REFRESHES_GAUGE)),
            crashes=int(value(CRASHES_TOTAL)),
            restarts=int(value(RESTARTS_TOTAL)),
            queued_feedback=int(value(QUEUED_FEEDBACK_TOTAL)),
            replayed_feedback=int(value(REPLAYED_FEEDBACK_TOTAL)),
        )

    def _base_dict(self) -> Dict[str, Union[int, float, Dict]]:
        return {
            "n_shards": self.n_shards,
            "n_tenants": self.n_tenants,
            "total_rows": self.total_rows,
            "per_shard": {
                str(sid): stats.as_dict() for sid, stats in self.per_shard.items()
            },
            "cluster": self.cluster.as_dict(),
            "parallel_qps": self.parallel_qps,
            "routed_batches": self.routed_batches,
            "fan_out": self.fan_out,
            "degraded_decisions": self.degraded_decisions,
            "shed_decisions": self.shed_decisions,
            "rebalanced_rows": self.rebalanced_rows,
            "scheduler_ticks": self.scheduler_ticks,
            "scheduler_refreshes": self.scheduler_refreshes,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "queued_feedback": self.queued_feedback,
            "replayed_feedback": self.replayed_feedback,
        }

    def __str__(self) -> str:
        return (
            f"ClusterStats({self.n_shards} shards, {self.total_rows} rows, "
            f"{self.cluster.decisions} decisions, "
            f"parallel {self.parallel_qps:,.0f} qps, "
            f"degraded={self.degraded_decisions}, "
            f"shed={self.shed_decisions}, "
            f"rebalanced={self.rebalanced_rows})"
        )


def aggregate_shard_stats(shards) -> ServingStats:
    """Merge per-shard reports; percentiles recomputed exactly from samples.

    ``ServingStats.merge`` supplies the counter algebra; because every
    shard's raw :class:`LatencyRecorder` is reachable in-process, the
    approximate merged percentiles are replaced with the exact percentiles
    of the pooled per-decision population.
    """
    shards = list(shards)
    merged = ServingStats.merge(s.stats() for s in shards)
    if merged.decisions == 0:
        return merged
    pooled = LatencyRecorder.merged([s.recorder() for s in shards]).report()
    return dataclasses.replace(
        merged,
        p50_latency_s=pooled.p50_latency_s,
        p99_latency_s=pooled.p99_latency_s,
    )


def parallel_throughput_qps(per_shard: Dict[int, ServingStats]) -> float:
    """Total decisions over the slowest shard's busy time (parallel model)."""
    active = [s for s in per_shard.values() if s.decisions > 0]
    if not active:
        return 0.0
    slowest = max(s.wall_seconds for s in active)
    total = sum(s.decisions for s in active)
    return total / slowest if slowest > 0 else float("inf")
