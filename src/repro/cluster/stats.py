"""Cluster-wide telemetry: mergeable per-shard reports plus routing counters.

Two views of the same traffic:

* ``cluster`` -- the fold of every shard's :class:`ServingStats` through
  :meth:`ServingStats.merge` (the mergeable-counter path any external
  aggregator could run from per-shard summaries alone), with the global
  p50/p99 recomputed *exactly* from the pooled raw recorders since this
  aggregator holds every shard in-process
  (:meth:`LatencyRecorder.merged`);
* ``parallel_qps`` -- the distributed-parallel reading of throughput:
  shards are independent units, so a deployment's wall-clock for a fanned-
  out batch is its slowest shard, and aggregate throughput is total
  decisions over the *maximum* per-shard busy time (the in-process
  ``cluster.throughput_qps`` divides by the sum instead and is the
  conservative serial reading).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Union

from ..serving.stats import LatencyRecorder, ServingStats


@dataclass(frozen=True)
class ClusterStats:
    """Point-in-time report over the whole cluster.

    Attributes
    ----------
    n_shards / n_tenants / total_rows:
        Topology: shard count, registered tenants, rows across all shards.
    per_shard:
        Each shard's own :class:`ServingStats`.
    cluster:
        The merged report (exact counters, exact pooled percentiles).
    parallel_qps:
        Total decisions over the maximum per-shard busy time -- the
        throughput of the same shards deployed as parallel units.
    routed_batches / fan_out:
        Batches routed through the cluster and the average number of
        per-shard sub-batches each one split into.
    degraded_decisions:
        Arrivals answered with the default plan because their shard was
        down.
    shed_decisions:
        Arrivals answered with the default plan by ingress admission
        control before reaching any shard (:meth:`ServingCluster.record_shed`).
    rebalanced_rows:
        Rows migrated between shards by topology changes so far.
    scheduler_ticks / scheduler_refreshes:
        Background refresh activity.
    crashes / restarts:
        Shard processes lost (operator kill or injected fault) and shards
        recovered from their journals.
    queued_feedback / replayed_feedback:
        Observations addressed to a crashed shard that waited in the
        outage queue, and how many of them have been applied by restarts.
    """

    n_shards: int
    n_tenants: int
    total_rows: int
    per_shard: Dict[int, ServingStats]
    cluster: ServingStats
    parallel_qps: float
    routed_batches: int
    fan_out: float
    degraded_decisions: int
    rebalanced_rows: int
    scheduler_ticks: int
    scheduler_refreshes: int
    shed_decisions: int = 0
    crashes: int = 0
    restarts: int = 0
    queued_feedback: int = 0
    replayed_feedback: int = 0

    def as_dict(self) -> Dict[str, Union[int, float, Dict]]:
        """Plain nested dictionary for dashboards and benchmark JSON."""
        return {
            "n_shards": self.n_shards,
            "n_tenants": self.n_tenants,
            "total_rows": self.total_rows,
            "per_shard": {
                str(sid): stats.as_dict() for sid, stats in self.per_shard.items()
            },
            "cluster": self.cluster.as_dict(),
            "parallel_qps": self.parallel_qps,
            "routed_batches": self.routed_batches,
            "fan_out": self.fan_out,
            "degraded_decisions": self.degraded_decisions,
            "shed_decisions": self.shed_decisions,
            "rebalanced_rows": self.rebalanced_rows,
            "scheduler_ticks": self.scheduler_ticks,
            "scheduler_refreshes": self.scheduler_refreshes,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "queued_feedback": self.queued_feedback,
            "replayed_feedback": self.replayed_feedback,
        }

    def __str__(self) -> str:
        return (
            f"ClusterStats({self.n_shards} shards, {self.total_rows} rows, "
            f"{self.cluster.decisions} decisions, "
            f"parallel {self.parallel_qps:,.0f} qps, "
            f"degraded={self.degraded_decisions}, "
            f"shed={self.shed_decisions}, "
            f"rebalanced={self.rebalanced_rows})"
        )


def aggregate_shard_stats(shards) -> ServingStats:
    """Merge per-shard reports; percentiles recomputed exactly from samples.

    ``ServingStats.merge`` supplies the counter algebra; because every
    shard's raw :class:`LatencyRecorder` is reachable in-process, the
    approximate merged percentiles are replaced with the exact percentiles
    of the pooled per-decision population.
    """
    shards = list(shards)
    merged = ServingStats.merge(s.stats() for s in shards)
    if merged.decisions == 0:
        return merged
    pooled = LatencyRecorder.merged([s.recorder() for s in shards]).report()
    return dataclasses.replace(
        merged,
        p50_latency_s=pooled.p50_latency_s,
        p99_latency_s=pooled.p99_latency_s,
    )


def parallel_throughput_qps(per_shard: Dict[int, ServingStats]) -> float:
    """Total decisions over the slowest shard's busy time (parallel model)."""
    active = [s for s in per_shard.values() if s.decisions > 0]
    if not active:
        return 0.0
    slowest = max(s.wall_seconds for s in active)
    total = sum(s.decisions for s in active)
    return total / slowest if slowest > 0 else float("inf")
