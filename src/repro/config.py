"""Configuration dataclasses shared across the library.

Every knob the paper exposes (rank, regularisation, ALS iterations, the
selection batch size ``m``, the timeout multiplier ``alpha``, TCNN training
hyper-parameters) lives here so experiments can be described declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError


@dataclass(frozen=True)
class ALSConfig:
    """Hyper-parameters of the censored ALS solver (paper Algorithm 2).

    The paper's defaults are ``rank=5``, ``regularization=0.2``,
    ``iterations=50`` (Section 5, "Techniques and tests").  With the rank-1
    baseline initialisation used here (see :func:`repro.core.als.censored_als`)
    15 fill-in iterations are sufficient and noticeably more robust in the
    very sparse cold-start regime, so that is the default; pass
    ``iterations=50`` to match the paper exactly.
    """

    rank: int = 5
    regularization: float = 0.2
    iterations: int = 15
    nonnegative: bool = True
    censored: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ConfigError(f"rank must be >= 1, got {self.rank}")
        if self.regularization < 0:
            raise ConfigError(
                f"regularization must be >= 0, got {self.regularization}"
            )
        if self.iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {self.iterations}")


@dataclass(frozen=True)
class ExplorationConfig:
    """Knobs of the offline exploration loop (paper Algorithm 1)."""

    batch_size: int = 10
    timeout_alpha: float = 2.0
    allow_random_fill: bool = True
    max_steps: int = 10_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.timeout_alpha <= 0:
            raise ConfigError(
                f"timeout_alpha must be > 0, got {self.timeout_alpha}"
            )
        if self.max_steps < 1:
            raise ConfigError(f"max_steps must be >= 1, got {self.max_steps}")


@dataclass(frozen=True)
class TCNNConfig:
    """Hyper-parameters of the (transductive) tree convolutional network.

    Defaults follow Section 5: embedding rank 5, dropout 0.3, Adam with
    batch size 32, at most 100 epochs with a 1%-over-10-epochs convergence
    criterion.
    """

    embedding_rank: int = 5
    channels: tuple = (64, 32, 16)
    hidden_units: tuple = (32, 16)
    dropout: float = 0.3
    learning_rate: float = 1e-3
    batch_size: int = 32
    max_epochs: int = 100
    convergence_window: int = 10
    convergence_threshold: float = 0.01
    use_embeddings: bool = True
    censored: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.embedding_rank < 1:
            raise ConfigError(
                f"embedding_rank must be >= 1, got {self.embedding_rank}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.learning_rate <= 0:
            raise ConfigError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_epochs < 1:
            raise ConfigError(f"max_epochs must be >= 1, got {self.max_epochs}")


@dataclass(frozen=True)
class SimulationConfig:
    """Controls the simulated offline exploration clock."""

    total_exploration_time: float = float("inf")
    checkpoint_times: tuple = field(default_factory=tuple)
    record_every_step: bool = True

    def __post_init__(self) -> None:
        if self.total_exploration_time <= 0:
            raise ConfigError(
                "total_exploration_time must be > 0, got "
                f"{self.total_exploration_time}"
            )
        for t in self.checkpoint_times:
            if t < 0:
                raise ConfigError(f"checkpoint time must be >= 0, got {t}")


DEFAULT_ALS_CONFIG = ALSConfig()
DEFAULT_EXPLORATION_CONFIG = ExplorationConfig()
DEFAULT_TCNN_CONFIG = TCNNConfig()
DEFAULT_SIMULATION_CONFIG = SimulationConfig()
