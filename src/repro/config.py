"""Configuration dataclasses shared across the library.

Every knob the paper exposes (rank, regularisation, ALS iterations, the
selection batch size ``m``, the timeout multiplier ``alpha``, TCNN training
hyper-parameters) lives here so experiments can be described declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError


@dataclass(frozen=True)
class ALSConfig:
    """Hyper-parameters of the censored ALS solver (paper Algorithm 2).

    The paper's defaults are ``rank=5``, ``regularization=0.2``,
    ``iterations=50`` (Section 5, "Techniques and tests").  With the rank-1
    baseline initialisation used here (see :func:`repro.core.als.censored_als`)
    15 fill-in iterations are sufficient and noticeably more robust in the
    very sparse cold-start regime, so that is the default; pass
    ``iterations=50`` to match the paper exactly.

    ``tol`` enables an early stop on the objective trace: when the relative
    decrease of the masked squared error between consecutive iterations
    falls below ``tol``, the solve returns early (the trace is then shorter
    than ``iterations``).  The default of 0 disables the early stop so the
    iteration count -- and therefore the factor trajectory -- is exactly
    reproducible.
    """

    rank: int = 5
    regularization: float = 0.2
    iterations: int = 15
    nonnegative: bool = True
    censored: bool = True
    tol: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ConfigError(f"rank must be >= 1, got {self.rank}")
        if self.regularization < 0:
            raise ConfigError(
                f"regularization must be >= 0, got {self.regularization}"
            )
        if self.iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {self.iterations}")
        if self.tol < 0:
            raise ConfigError(f"tol must be >= 0, got {self.tol}")


@dataclass(frozen=True)
class ExplorationConfig:
    """Knobs of the offline exploration loop (paper Algorithm 1).

    The ``incremental_als`` family controls the warm-started incremental
    predictor path: instead of re-solving the factorisation cold on every
    exploration step, an :class:`~repro.core.predictors.ALSPredictor`
    attached to the explorer carries its ``(Q, H)`` factors across steps and
    runs ``als_refresh_iterations`` fill-in iterations per step, with a full
    cold re-solve every ``als_full_solve_every`` refreshes to bound drift.
    All three default to ``None`` meaning *leave the predictor's own
    settings alone* (the predictor's constructor defaults are warm starts
    with 5 refresh iterations and a full solve every 10); set a value to
    override whatever the predictor was built with when it attaches to an
    explorer.
    """

    batch_size: int = 10
    timeout_alpha: float = 2.0
    allow_random_fill: bool = True
    max_steps: int = 10_000
    incremental_als: Optional[bool] = None
    als_refresh_iterations: Optional[int] = None
    als_full_solve_every: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.timeout_alpha <= 0:
            raise ConfigError(
                f"timeout_alpha must be > 0, got {self.timeout_alpha}"
            )
        if self.max_steps < 1:
            raise ConfigError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.als_refresh_iterations is not None and self.als_refresh_iterations < 1:
            raise ConfigError(
                "als_refresh_iterations must be >= 1, got "
                f"{self.als_refresh_iterations}"
            )
        if self.als_full_solve_every is not None and self.als_full_solve_every < 1:
            raise ConfigError(
                f"als_full_solve_every must be >= 1, got {self.als_full_solve_every}"
            )


@dataclass(frozen=True)
class TCNNConfig:
    """Hyper-parameters of the (transductive) tree convolutional network.

    Defaults follow Section 5: embedding rank 5, dropout 0.3, Adam with
    batch size 32, at most 100 epochs with a 1%-over-10-epochs convergence
    criterion.
    """

    embedding_rank: int = 5
    channels: tuple = (64, 32, 16)
    hidden_units: tuple = (32, 16)
    dropout: float = 0.3
    learning_rate: float = 1e-3
    batch_size: int = 32
    max_epochs: int = 100
    convergence_window: int = 10
    convergence_threshold: float = 0.01
    use_embeddings: bool = True
    censored: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.embedding_rank < 1:
            raise ConfigError(
                f"embedding_rank must be >= 1, got {self.embedding_rank}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.learning_rate <= 0:
            raise ConfigError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_epochs < 1:
            raise ConfigError(f"max_epochs must be >= 1, got {self.max_epochs}")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the drift-aware adaptation controller (:mod:`repro.adaptive`).

    Detection works over a sliding window of serving feedback: each served
    arrival whose measured latency deviates from the snapshot's expected
    latency by more than ``tolerance`` (relative error) counts as a drift
    exceedance, and the controller responds when the exceedance fraction
    crosses ``drift_threshold``.  Arrivals served with *no* observation at
    all (expected latency is infinite -- new templates, freshly invalidated
    rows) feed a second signal, the unseen rate, thresholded separately so
    a stream of brand-new queries triggers re-exploration even when nothing
    measured has drifted yet.  Below those global thresholds a *per-row*
    persistence gate still catches tails: any row with >= ``persistent_hits``
    exceedances (or unseen serves) inside one window gets swept by a
    budgeted response even though its traffic share never moved the global
    score -- repeated evidence on one row is drift, not noise.

    A response is budgeted: at most ``response_budget_cells`` live
    executions (default-plan re-measurements plus policy-selected
    exploration cells) per response, and at least ``cooldown_ticks``
    controller ticks between responses, so adaptation can never starve the
    serve path it protects.  Rows a response touched stay on a *recovery
    backlog* -- re-explored one budgeted pass at a time on quiet ticks --
    until ``reverify_observations`` of their cells are known again
    (``None``, the default, means every cell: a drifted optimum can land
    on any hint, so only full re-verification guarantees the lost upside
    is recovered rather than merely anchored back to the default plan;
    set an integer to trade completeness for execution cost).
    """

    window: int = 256
    tolerance: float = 0.35
    drift_threshold: float = 0.10
    unseen_threshold: float = 0.10
    min_samples: int = 32
    response_budget_cells: int = 64
    explore_batch_size: int = 8
    cooldown_ticks: int = 2
    reverify_observations: Optional[int] = None
    persistent_hits: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.tolerance <= 0:
            raise ConfigError(f"tolerance must be > 0, got {self.tolerance}")
        if not 0.0 < self.drift_threshold <= 1.0:
            raise ConfigError(
                f"drift_threshold must be in (0, 1], got {self.drift_threshold}"
            )
        if not 0.0 < self.unseen_threshold <= 1.0:
            raise ConfigError(
                f"unseen_threshold must be in (0, 1], got {self.unseen_threshold}"
            )
        if self.min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.min_samples > self.window:
            raise ConfigError(
                f"min_samples ({self.min_samples}) cannot exceed the window "
                f"({self.window})"
            )
        if self.response_budget_cells < 1:
            raise ConfigError(
                "response_budget_cells must be >= 1, got "
                f"{self.response_budget_cells}"
            )
        if self.explore_batch_size < 1:
            raise ConfigError(
                f"explore_batch_size must be >= 1, got {self.explore_batch_size}"
            )
        if self.cooldown_ticks < 0:
            raise ConfigError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )
        if self.persistent_hits < 1:
            raise ConfigError(
                f"persistent_hits must be >= 1, got {self.persistent_hits}"
            )
        if self.reverify_observations is not None and self.reverify_observations < 2:
            raise ConfigError(
                "reverify_observations must be >= 2 (default plan plus one "
                f"candidate) or None for full rows, got "
                f"{self.reverify_observations}"
            )


@dataclass(frozen=True)
class IngressConfig:
    """Knobs of the asyncio ingress layer (:mod:`repro.ingress`).

    The coalescer turns independent single-query ``await serve(...)`` calls
    into the vectorised batches the serving layer is fast at.  A batch is
    flushed as soon as ``max_batch`` requests are pending, or when the
    *oldest* pending request has waited ``max_wait_s`` -- whichever comes
    first, so ``max_wait_s`` is the queueing-delay SLO an arrival can be
    charged by coalescing (it bounds time-in-queue, not the backend's own
    decision time).

    Admission is a bounded queue: at most ``queue_capacity`` requests may
    be pending at once.  Overflow arrivals are *shed*, not errored: they
    are answered immediately with the default plan (the paper's
    no-regression anchor, so shedding is safe by construction) and counted
    in :class:`~repro.serving.stats.ServingStats` under ``shed``.

    ``tick_interval_s`` / ``refresh_interval_s`` are the cadences of the
    background asyncio tasks the ingress hosts: the adaptation
    controller's detection tick and the (cluster scheduler or single
    service) warm-ALS refresh tick.  Both run on the event loop between
    batches -- never on a request's await path.
    """

    max_batch: int = 256
    max_wait_s: float = 0.001
    queue_capacity: int = 4096
    tick_interval_s: float = 0.05
    refresh_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ConfigError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.queue_capacity < self.max_batch:
            raise ConfigError(
                f"queue_capacity ({self.queue_capacity}) must be >= max_batch "
                f"({self.max_batch}): a full batch must be admittable"
            )
        if self.tick_interval_s <= 0:
            raise ConfigError(
                f"tick_interval_s must be > 0, got {self.tick_interval_s}"
            )
        if self.refresh_interval_s <= 0:
            raise ConfigError(
                f"refresh_interval_s must be > 0, got {self.refresh_interval_s}"
            )


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the observability layer (:mod:`repro.telemetry`).

    Telemetry is **off by default**: a service, cluster, or ingress built
    without a :class:`~repro.telemetry.Telemetry` object (or with one whose
    config has ``enabled=False``) runs exactly the pre-telemetry code path
    -- the hot paths normalise a disabled telemetry object to ``None`` at
    construction, so the disabled cost is literally zero extra allocations
    (asserted in ``tests/test_telemetry.py``).

    ``latency_buckets`` are the fixed upper bounds (seconds) of every
    stage/batch latency histogram.  Fixed buckets are what make per-shard
    histograms *mergeable*: merging is element-wise addition of bucket
    counts, and ``merge(a, b)`` equals observing the union of samples
    (hypothesis-verified).

    ``slow_trace_seconds`` is the admission threshold of the slow-trace
    ring: a finished request trace whose stage total meets it is kept in a
    ring buffer of the ``trace_ring`` most recent such traces (0.0, the
    default, keeps every trace -- "recent traces" -- which is what the
    demo's top-5-slowest listing reads).

    ``max_label_values`` bounds per-metric label cardinality: past the
    limit, new label sets collapse into a shared ``"__overflow__"`` child
    (and a registry-level overflow counter increments) instead of growing
    the registry without bound -- a tenant-id explosion must never OOM the
    metrics layer.
    """

    enabled: bool = False
    latency_buckets: tuple = (
        1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
        1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
    )
    slow_trace_seconds: float = 0.0
    trace_ring: int = 64
    max_label_values: int = 64

    def __post_init__(self) -> None:
        if not self.latency_buckets:
            raise ConfigError("latency_buckets must not be empty")
        bounds = tuple(float(b) for b in self.latency_buckets)
        if any(b <= 0 for b in bounds):
            raise ConfigError("latency bucket bounds must be > 0")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigError("latency_buckets must be strictly increasing")
        if self.slow_trace_seconds < 0:
            raise ConfigError(
                f"slow_trace_seconds must be >= 0, got {self.slow_trace_seconds}"
            )
        if self.trace_ring < 1:
            raise ConfigError(f"trace_ring must be >= 1, got {self.trace_ring}")
        if self.max_label_values < 1:
            raise ConfigError(
                f"max_label_values must be >= 1, got {self.max_label_values}"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Controls the simulated offline exploration clock."""

    total_exploration_time: float = float("inf")
    checkpoint_times: tuple = field(default_factory=tuple)
    record_every_step: bool = True

    def __post_init__(self) -> None:
        if self.total_exploration_time <= 0:
            raise ConfigError(
                "total_exploration_time must be > 0, got "
                f"{self.total_exploration_time}"
            )
        for t in self.checkpoint_times:
            if t < 0:
                raise ConfigError(f"checkpoint time must be >= 0, got {t}")


DEFAULT_TELEMETRY_CONFIG = TelemetryConfig()
DEFAULT_ADAPTIVE_CONFIG = AdaptiveConfig()
DEFAULT_INGRESS_CONFIG = IngressConfig()
DEFAULT_ALS_CONFIG = ALSConfig()
DEFAULT_EXPLORATION_CONFIG = ExplorationConfig()
DEFAULT_TCNN_CONFIG = TCNNConfig()
DEFAULT_SIMULATION_CONFIG = SimulationConfig()
