"""LimeQO's core: the workload matrix, matrix completion, and exploration.

This package implements the paper's primary contribution:

* :mod:`repro.core.workload_matrix` -- the partially observed workload
  matrix with censored (timed-out) observations,
* :mod:`repro.core.als` -- censored alternating least squares (Algorithm 2),
* :mod:`repro.core.matrix_completion` -- ALS / SVT / nuclear-norm completers
  compared in Figure 17,
* :mod:`repro.core.predictors` -- the pluggable predictive models (linear
  ALS, pure TCNN, transductive TCNN),
* :mod:`repro.core.policies` -- exploration policies (Random, Greedy,
  QO-Advisor, Bao-Cache, LimeQO, LimeQO+),
* :mod:`repro.core.explorer` / :mod:`repro.core.simulation` -- Algorithm 1's
  offline exploration loop and its simulated clock,
* :mod:`repro.core.plan_cache` / :mod:`repro.core.limeqo` -- the online,
  no-regression serving path and the top-level facade.
"""

from .als import CensoredALSResult, censored_als
from .explorer import ExplorationStep, MatrixOracle, OfflineExplorer
from .limeqo import LimeQO
from .matrix_completion import (
    ALSCompleter,
    MatrixCompleter,
    NuclearNormCompleter,
    SVTCompleter,
    completion_mse,
    completion_rmse,
)
from .plan_cache import CacheDecision, CacheSnapshot, PlanCache
from .policies import (
    BaoCachePolicy,
    ExplorationPolicy,
    GreedyPolicy,
    LimeQOPlusPolicy,
    LimeQOPolicy,
    QOAdvisorPolicy,
    RandomPolicy,
)
from .predictors import ALSPredictor, Predictor, TCNNPredictor
from .scoring import expected_improvement_ratios, select_top_m
from .simulation import ExplorationSimulator, ExplorationTrace
from .workload_matrix import WorkloadMatrix

__all__ = [
    "CensoredALSResult",
    "censored_als",
    "ExplorationStep",
    "MatrixOracle",
    "OfflineExplorer",
    "LimeQO",
    "ALSCompleter",
    "MatrixCompleter",
    "NuclearNormCompleter",
    "SVTCompleter",
    "completion_mse",
    "completion_rmse",
    "CacheDecision",
    "CacheSnapshot",
    "PlanCache",
    "BaoCachePolicy",
    "ExplorationPolicy",
    "GreedyPolicy",
    "LimeQOPlusPolicy",
    "LimeQOPolicy",
    "QOAdvisorPolicy",
    "RandomPolicy",
    "ALSPredictor",
    "Predictor",
    "TCNNPredictor",
    "expected_improvement_ratios",
    "select_top_m",
    "ExplorationSimulator",
    "ExplorationTrace",
    "WorkloadMatrix",
]
