"""Censored Alternating Least Squares (paper Algorithm 2).

Completes the workload matrix ``W ≈ Q Hᵀ`` under a rank constraint, a ridge
penalty, non-negativity projection of the factors, and the *censored*
technique: predictions for timed-out entries are clamped up to their
timeout lower bound between factor updates, so the solver is penalised for
under-estimating a censored latency but never for (potentially correct)
over-estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import ALSConfig
from ..errors import CompletionError


@dataclass
class CensoredALSResult:
    """Output of :func:`censored_als`.

    Attributes
    ----------
    completed:
        The completed matrix: observed values where known, ``Q Hᵀ``
        predictions elsewhere (clamped to censored lower bounds).
    query_factors / hint_factors:
        The ``n x r`` and ``k x r`` factor matrices (``Q`` and ``H``).
    objective_trace:
        Masked squared-error objective after each iteration; useful for
        convergence diagnostics and tests.
    """

    completed: np.ndarray
    query_factors: np.ndarray
    hint_factors: np.ndarray
    objective_trace: np.ndarray

    @property
    def low_rank_estimate(self) -> np.ndarray:
        """The pure ``Q Hᵀ`` product without observed-value substitution."""
        return self.query_factors @ self.hint_factors.T

    @property
    def factors(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(Q, H)`` pair, ready to pass as ``warm_start`` to the next solve."""
        return (self.query_factors, self.hint_factors)


def _validate_inputs(
    observed: np.ndarray, mask: np.ndarray, timeouts: Optional[np.ndarray]
) -> np.ndarray:
    observed = np.asarray(observed, dtype=float)
    mask = np.asarray(mask, dtype=float)
    if observed.ndim != 2:
        raise CompletionError(f"observed matrix must be 2-D, got shape {observed.shape}")
    if mask.shape != observed.shape:
        raise CompletionError(
            f"mask shape {mask.shape} does not match observed shape {observed.shape}"
        )
    if timeouts is None:
        timeouts = np.zeros_like(observed)
    timeouts = np.asarray(timeouts, dtype=float)
    if timeouts.shape != observed.shape:
        raise CompletionError(
            f"timeout shape {timeouts.shape} does not match observed shape {observed.shape}"
        )
    if mask.sum() == 0:
        raise CompletionError("cannot run ALS with an empty observation mask")
    masked_values = observed[mask > 0]
    if not np.all(np.isfinite(masked_values)):
        raise CompletionError("observed entries must be finite where mask == 1")
    return timeouts


def censored_als(
    observed: np.ndarray,
    mask: np.ndarray,
    timeouts: Optional[np.ndarray] = None,
    config: Optional[ALSConfig] = None,
    warm_start: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    iterations: Optional[int] = None,
) -> CensoredALSResult:
    """Run Algorithm 2 and return the completed matrix and factors.

    Parameters
    ----------
    observed:
        ``n x k`` matrix; entries where ``mask == 1`` must be finite
        latencies, other entries are ignored (may be ``inf``).
    mask:
        ``n x k`` 0/1 matrix of completed observations.
    timeouts:
        ``n x k`` matrix of censored lower bounds (0 where not censored).
        Ignored when ``config.censored`` is False.
    config:
        Hyper-parameters; defaults to the paper's ``r=5``, ``λ=0.2``,
        ``t=50``.
    warm_start:
        Optional ``(Q, H)`` factor pair from a previous solve (see
        :attr:`CensoredALSResult.factors`).  Rows beyond the warm factors'
        extent (queries that arrived since) keep the cold-start baseline
        initialisation, so the workload may have grown in between.  Warm
        starts are what make incremental serving-time refreshes cheap: a few
        fill-in iterations recover the optimum instead of a full solve.
    iterations:
        Optional override of ``config.iterations`` (used by incremental
        refreshes without rebuilding the config).
    """
    config = config or ALSConfig()
    timeouts = _validate_inputs(observed, mask, timeouts)
    if not config.censored:
        timeouts = np.zeros_like(timeouts)

    mask = np.asarray(mask, dtype=float)
    n, k = observed.shape
    rank = min(config.rank, n, k)
    rng = np.random.default_rng(config.seed)

    observed_filled = np.where(mask > 0, observed, 0.0)
    # Initialisation: the first factor pair encodes the rank-1 multiplicative
    # baseline (per-row scale x per-column ratio-to-row-mean), which is what
    # collaborative filtering systems use as their bias term.  The remaining
    # factors start near zero and learn residual structure.  This makes the
    # fill-in iteration useful even when only a few percent of the matrix is
    # observed (the cold-start regime of offline exploration).
    mean_value = float(observed_filled[mask > 0].mean()) if mask.sum() else 1.0
    row_counts = mask.sum(axis=1)
    row_means = np.where(
        row_counts > 0,
        (observed_filled * mask).sum(axis=1) / np.maximum(row_counts, 1.0),
        mean_value,
    )
    ratio_matrix = np.where(
        mask > 0, observed_filled / np.maximum(row_means[:, None], 1e-9), 0.0
    )
    column_counts = mask.sum(axis=0)
    column_ratios = np.where(
        column_counts > 0,
        ratio_matrix.sum(axis=0) / np.maximum(column_counts, 1.0),
        1.0,
    )
    query_factors = rng.random((n, rank)) * 1e-2
    hint_factors = rng.random((k, rank)) * 1e-2
    query_factors[:, 0] = np.maximum(row_means, 1e-9)
    hint_factors[:, 0] = np.maximum(column_ratios, 1e-9)

    if warm_start is not None:
        warm_q, warm_h = warm_start
        warm_q = np.asarray(warm_q, dtype=float)
        warm_h = np.asarray(warm_h, dtype=float)
        if warm_q.ndim != 2 or warm_h.ndim != 2:
            raise CompletionError("warm_start factors must be 2-D arrays")
        if warm_q.shape[1] != rank or warm_h.shape[1] != rank:
            raise CompletionError(
                f"warm_start rank {warm_q.shape[1]}x{warm_h.shape[1]} does not "
                f"match solver rank {rank}"
            )
        if warm_q.shape[0] > n or warm_h.shape[0] > k:
            raise CompletionError(
                "warm_start factors have more rows than the matrix; shrinkage "
                "is not supported"
            )
        query_factors[: warm_q.shape[0]] = warm_q
        hint_factors[: warm_h.shape[0]] = warm_h

    n_iterations = config.iterations if iterations is None else int(iterations)
    if n_iterations < 1:
        raise CompletionError(f"iterations must be >= 1, got {n_iterations}")

    reg = config.regularization * np.eye(rank)
    objective_trace = []

    # Hot-loop precomputation: the observed and censored index sets are
    # fixed for the whole solve, so the per-half-iteration fill-in reduces
    # to one BLAS matmul into a preallocated buffer plus two fancy-indexed
    # scatters -- no full n x k temporaries.  The mask is interpreted as
    # binary (any positive entry means observed), which is the contract
    # every caller already follows.
    obs_rows, obs_cols = np.nonzero(mask > 0)
    obs_vals = observed_filled[obs_rows, obs_cols]
    cen_rows, cen_cols = np.nonzero(timeouts > 0)
    cen_vals = timeouts[cen_rows, cen_cols]

    estimate = np.empty((n, k))
    completed = np.empty((n, k))

    def _fill_from_estimate() -> None:
        """``completed`` <- observed values where known, censored-clamped
        ``estimate`` elsewhere (Algorithm 2 lines 4-5 and 9-10)."""
        np.copyto(completed, estimate)
        completed[obs_rows, obs_cols] = obs_vals
        if cen_rows.size:
            completed[cen_rows, cen_cols] = np.maximum(
                completed[cen_rows, cen_cols], cen_vals
            )

    np.matmul(query_factors, hint_factors.T, out=estimate)
    for _ in range(n_iterations):
        _fill_from_estimate()
        gram_h = hint_factors.T @ hint_factors + reg
        # ``A @ inv(G)`` for symmetric G is ``solve(G, A.T).T``: one
        # Cholesky/LU factorisation instead of a full matrix inverse.
        query_factors = np.linalg.solve(gram_h, (completed @ hint_factors).T).T
        if config.nonnegative:
            np.maximum(query_factors, 0.0, out=query_factors)

        np.matmul(query_factors, hint_factors.T, out=estimate)
        _fill_from_estimate()
        gram_q = query_factors.T @ query_factors + reg
        hint_factors = np.linalg.solve(gram_q, (completed.T @ query_factors).T).T
        if config.nonnegative:
            np.maximum(hint_factors, 0.0, out=hint_factors)

        # The product for the objective doubles as the next iteration's
        # (and the final) fill-in estimate.
        np.matmul(query_factors, hint_factors.T, out=estimate)
        residual = obs_vals - estimate[obs_rows, obs_cols]
        objective = float((residual ** 2).sum())
        objective_trace.append(objective)
        if config.tol > 0 and len(objective_trace) >= 2:
            previous = objective_trace[-2]
            if previous <= 0:
                break
            if (previous - objective) / previous < config.tol:
                break

    _fill_from_estimate()
    return CensoredALSResult(
        completed=completed,
        query_factors=query_factors,
        hint_factors=hint_factors,
        objective_trace=np.asarray(objective_trace),
    )
