"""The offline exploration loop (paper Algorithm 1) and execution oracles.

The explorer is agnostic to where latencies come from: it talks to an
*execution oracle* that runs one (query, hint) cell with a timeout and
returns an :class:`~repro.db.executor.ExecutionResult`.  Two oracles ship
with the library:

* :class:`MatrixOracle` -- backed by a fully known ground-truth latency
  matrix (used by the simulator and every benchmark),
* :class:`DatabaseOracle` -- backed by the simulated DBMS substrate
  (planner + latency model), used by the end-to-end examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..config import ExplorationConfig
from ..db.executor import ExecutionResult, HintedExecutor
from ..db.hints import HintSet
from ..db.query import Query
from ..errors import ExplorationError
from .policies import ExplorationPolicy
from .workload_matrix import WorkloadMatrix


class ExecutionOracle(Protocol):
    """Anything that can execute one workload-matrix cell with a timeout.

    The scalar :meth:`execute` is the whole required surface.  Oracles may
    *additionally* provide an ``execute_many(queries, hints, timeouts)``
    batch entry point (both built-in oracles do); the explorer discovers it
    dynamically and falls back to per-cell :meth:`execute` calls when it is
    absent, so scalar-only oracles keep working unchanged.
    """

    def execute(
        self, query: int, hint: int, timeout: Optional[float] = None
    ) -> ExecutionResult:
        """Run cell (query, hint); censor at ``timeout`` when provided."""
        ...  # pragma: no cover - protocol


class MatrixOracle:
    """Oracle backed by a ground-truth latency matrix."""

    def __init__(self, true_latencies: np.ndarray) -> None:
        self.true_latencies = np.asarray(true_latencies, dtype=float)
        if self.true_latencies.ndim != 2:
            raise ExplorationError("true latency matrix must be 2-D")
        if not np.all(np.isfinite(self.true_latencies)):
            raise ExplorationError("true latency matrix must be fully finite")
        if np.any(self.true_latencies < 0):
            raise ExplorationError("latencies must be non-negative")

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the underlying ground-truth matrix."""
        return self.true_latencies.shape

    def execute(
        self, query: int, hint: int, timeout: Optional[float] = None
    ) -> ExecutionResult:
        latency = float(self.true_latencies[query, hint])
        if timeout is not None and timeout > 0 and latency >= timeout:
            return ExecutionResult(latency=latency, timed_out=True, charged_time=float(timeout))
        return ExecutionResult(latency=latency, timed_out=False, charged_time=latency)

    def execute_many(
        self,
        queries: Sequence[int],
        hints: Sequence[int],
        timeouts: Optional[Sequence[Optional[float]]] = None,
    ) -> List[ExecutionResult]:
        """Vectorised batch execution: one gather + one comparison pass."""
        query_idx = np.asarray(queries, dtype=np.int64)
        hint_idx = np.asarray(hints, dtype=np.int64)
        if query_idx.shape != hint_idx.shape or query_idx.ndim != 1:
            raise ExplorationError(
                "execute_many needs matching 1-D query and hint index arrays"
            )
        if query_idx.size == 0:
            return []
        latencies = self.true_latencies[query_idx, hint_idx]
        if timeouts is None:
            bounds = np.full(query_idx.size, np.inf)
        else:
            if len(timeouts) != query_idx.size:
                raise ExplorationError(
                    f"got {len(timeouts)} timeouts for {query_idx.size} cells"
                )
            bounds = np.array(
                [np.inf if t is None or t <= 0 else float(t) for t in timeouts]
            )
        timed_out = latencies >= bounds
        charged = np.where(timed_out, bounds, latencies)
        return [
            ExecutionResult(
                latency=float(lat), timed_out=bool(out), charged_time=float(chg)
            )
            for lat, out, chg in zip(latencies, timed_out, charged)
        ]


class DatabaseOracle:
    """Oracle backed by the simulated DBMS (planner + execution engine)."""

    def __init__(
        self,
        executor: HintedExecutor,
        queries: Sequence[Query],
        hint_sets: Sequence[HintSet],
    ) -> None:
        self.executor = executor
        self.queries = list(queries)
        self.hint_sets = list(hint_sets)
        if not self.queries or not self.hint_sets:
            raise ExplorationError("DatabaseOracle needs queries and hint sets")

    @property
    def shape(self) -> Tuple[int, int]:
        """(number of queries, number of hint sets)."""
        return (len(self.queries), len(self.hint_sets))

    def execute(
        self, query: int, hint: int, timeout: Optional[float] = None
    ) -> ExecutionResult:
        if not 0 <= query < len(self.queries):
            raise ExplorationError(f"query index {query} out of range")
        if not 0 <= hint < len(self.hint_sets):
            raise ExplorationError(f"hint index {hint} out of range")
        return self.executor.execute_with_hint(
            self.queries[query], self.hint_sets[hint], timeout=timeout
        )

    def execute_many(
        self,
        queries: Sequence[int],
        hints: Sequence[int],
        timeouts: Optional[Sequence[Optional[float]]] = None,
    ) -> List[ExecutionResult]:
        """Loop fallback: a real DBMS executes one plan at a time."""
        queries = list(queries)
        hints = list(hints)
        if timeouts is None:
            timeouts = [None] * len(queries)
        return [
            self.execute(int(q), int(h), timeout=t)
            for q, h, t in zip(queries, hints, timeouts)
        ]


@dataclass
class ExplorationStep:
    """Bookkeeping for one iteration of Algorithm 1."""

    index: int
    selected: List[Tuple[int, int]]
    results: List[ExecutionResult]
    exploration_time_delta: float
    cumulative_exploration_time: float
    workload_latency: float
    overhead_seconds: float
    timeouts_used: List[Optional[float]] = field(default_factory=list)

    @property
    def num_censored(self) -> int:
        """How many of this step's executions were cancelled at their timeout."""
        return sum(1 for r in self.results if r.timed_out)


class OfflineExplorer:
    """Runs Algorithm 1 against an execution oracle.

    Parameters
    ----------
    matrix:
        The evolving partially observed workload matrix (mutated in place).
    policy:
        Which cells to execute next.
    oracle:
        Where latencies come from.
    config:
        Batch size ``m``, timeout multiplier ``alpha``, step limits.
    """

    def __init__(
        self,
        matrix: WorkloadMatrix,
        policy: ExplorationPolicy,
        oracle: ExecutionOracle,
        config: Optional[ExplorationConfig] = None,
    ) -> None:
        self.matrix = matrix
        self.policy = policy
        self.oracle = oracle
        self.config = config or ExplorationConfig()
        self.policy.configure(self.config)
        self._rng = np.random.default_rng(self.config.seed)
        self._steps: List[ExplorationStep] = []
        self._cumulative_time = 0.0

    # -- state ---------------------------------------------------------------
    @property
    def steps(self) -> List[ExplorationStep]:
        """All steps taken so far."""
        return list(self._steps)

    @property
    def cumulative_exploration_time(self) -> float:
        """Total offline execution time charged so far (seconds)."""
        return self._cumulative_time

    @property
    def overhead_seconds(self) -> float:
        """Cumulative model overhead of the policy's predictor."""
        return self.policy.overhead_seconds

    # -- the loop ---------------------------------------------------------------
    def step(self) -> Optional[ExplorationStep]:
        """Run one iteration; returns None when nothing is left to explore."""
        selected = self.policy.select(self.matrix, self.config.batch_size, self._rng)
        selected = [pair for pair in selected if not self.matrix.is_observed(*pair)]
        if not selected:
            return None

        results: List[ExecutionResult] = []
        timeouts_used: List[Optional[float]] = []
        time_delta = 0.0
        predicted = self.policy.last_prediction
        # Cells are executed in sub-batches of distinct rows: a timeout
        # depends only on its own row's state (row minimum, observation
        # count), so batching cells that touch different rows is exactly
        # equivalent to the historical one-cell-at-a-time loop, while a
        # repeated row starts a new sub-batch so its timeout still sees the
        # earlier observation.  In practice policies pick one cell per query
        # and the whole step is a single ``execute_many`` call.
        for chunk in self._row_distinct_chunks(selected):
            chunk_timeouts = [
                self._timeout_for(query, hint, predicted) for query, hint in chunk
            ]
            chunk_results = self._execute_chunk(chunk, chunk_timeouts)
            self._record_chunk(chunk, chunk_results)
            results.extend(chunk_results)
            timeouts_used.extend(chunk_timeouts)
            time_delta += sum(r.charged_time for r in chunk_results)

        self._cumulative_time += time_delta
        step = ExplorationStep(
            index=len(self._steps),
            selected=selected,
            results=results,
            exploration_time_delta=time_delta,
            cumulative_exploration_time=self._cumulative_time,
            workload_latency=self.matrix.workload_latency(),
            overhead_seconds=self.policy.overhead_seconds,
            timeouts_used=timeouts_used,
        )
        self._steps.append(step)
        return step

    def run(
        self,
        time_budget: float = float("inf"),
        max_steps: Optional[int] = None,
        max_cells: Optional[int] = None,
    ) -> List[ExplorationStep]:
        """Run steps until the exploration-time budget or step limit is hit.

        ``max_cells`` caps the number of *cells executed* across the taken
        steps; it is the entry point the online adaptation controller uses
        to keep a drift response within a fixed execution budget (the last
        step may overshoot by at most ``batch_size - 1`` cells).
        """
        if time_budget <= 0:
            raise ExplorationError(f"time_budget must be > 0, got {time_budget}")
        if max_cells is not None and max_cells < 1:
            raise ExplorationError(f"max_cells must be >= 1, got {max_cells}")
        limit = max_steps if max_steps is not None else self.config.max_steps
        taken: List[ExplorationStep] = []
        executed = 0
        while len(taken) < limit and self._cumulative_time < time_budget:
            if max_cells is not None and executed >= max_cells:
                break
            step = self.step()
            if step is None:
                break
            taken.append(step)
            executed += len(step.results)
        return taken

    # -- batched execution helpers ------------------------------------------
    @staticmethod
    def _row_distinct_chunks(
        selected: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, int]]]:
        """Split ``selected`` (order preserved) at repeated query rows."""
        chunks: List[List[Tuple[int, int]]] = []
        current: List[Tuple[int, int]] = []
        seen_rows: set = set()
        for pair in selected:
            if pair[0] in seen_rows:
                chunks.append(current)
                current = []
                seen_rows = set()
            current.append(pair)
            seen_rows.add(pair[0])
        if current:
            chunks.append(current)
        return chunks

    def _execute_chunk(
        self,
        chunk: Sequence[Tuple[int, int]],
        timeouts: Sequence[Optional[float]],
    ) -> List[ExecutionResult]:
        """Run one sub-batch through the oracle's fastest entry point."""
        execute_many = getattr(self.oracle, "execute_many", None)
        if execute_many is not None:
            return execute_many(
                [q for q, _ in chunk], [h for _, h in chunk], timeouts
            )
        return [
            self.oracle.execute(query, hint, timeout=timeout)
            for (query, hint), timeout in zip(chunk, timeouts)
        ]

    def _record_chunk(
        self,
        chunk: Sequence[Tuple[int, int]],
        results: Sequence[ExecutionResult],
    ) -> None:
        """Feed a sub-batch's results into the matrix (batched where possible)."""
        completed_q: List[int] = []
        completed_h: List[int] = []
        completed_lat: List[float] = []
        for (query, hint), result in zip(chunk, results):
            if result.timed_out:
                self.matrix.observe_censored(query, hint, result.charged_time)
            else:
                completed_q.append(query)
                completed_h.append(hint)
                completed_lat.append(result.latency)
        if completed_q:
            self.matrix.observe_batch(completed_q, completed_h, completed_lat)

    # -- results -------------------------------------------------------------------
    def recommend_hints(self, default_hint: int = 0) -> List[int]:
        """Best observed hint per query; the default hint when nothing observed.

        This is Algorithm 1 lines 13-14 and carries the no-regression
        guarantee: a non-default hint is returned only when its observed
        latency beats every other observation for that query, including the
        default plan's.
        """
        best = self.matrix.best_hint_array()
        return [default_hint if h < 0 else int(h) for h in best]

    # -- internals -------------------------------------------------------------------
    def _timeout_for(
        self, query: int, hint: int, predicted: Optional[np.ndarray]
    ) -> Optional[float]:
        """Algorithm 1 line 10: ``T_ij = min(min(W~_i), alpha * Ŵ_ij)``.

        The prediction-based cap is only applied once the row has at least
        two completed observations: with just the default plan observed the
        model has nothing row-specific to learn from, and a spuriously low
        prediction would censor the candidate at a useless threshold and
        permanently burn the cell.
        """
        row_min = self.matrix.row_min(query)
        candidates = []
        if np.isfinite(row_min):
            candidates.append(row_min)
        prediction_usable = (
            predicted is not None
            and predicted.shape == self.matrix.shape
            and self.matrix.observed_count_in_row(query) >= 2
        )
        if prediction_usable:
            predicted_value = float(predicted[query, hint])
            if np.isfinite(predicted_value) and predicted_value > 0:
                candidates.append(predicted_value * self.config.timeout_alpha)
        if not candidates:
            return None
        return float(min(candidates))
