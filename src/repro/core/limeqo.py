"""The top-level LimeQO facade (Figure 2's whole system).

Wires together the workload matrix, an exploration policy, an execution
oracle, and the online plan cache behind the interface a practitioner would
use:

* register queries (rows) as they are first seen,
* run offline exploration whenever the DBMS is idle,
* answer online lookups with verified plans only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


from ..config import ExplorationConfig
from ..errors import ExplorationError
from .explorer import ExecutionOracle, OfflineExplorer
from .plan_cache import CacheDecision, PlanCache
from .policies import ExplorationPolicy, LimeQOPolicy
from .workload_matrix import WorkloadMatrix


class LimeQO:
    """Offline query optimization for a repetitive workload.

    Parameters
    ----------
    n_hints:
        Number of hint sets (columns); 49 for the Bao/PostgreSQL hint space.
    oracle:
        Execution oracle used during offline exploration.
    policy:
        Exploration policy; defaults to Algorithm 1 with censored ALS.
    config:
        Exploration loop configuration.
    default_hint:
        Column index of the DBMS default plan.
    """

    def __init__(
        self,
        n_hints: int,
        oracle: ExecutionOracle,
        policy: Optional[ExplorationPolicy] = None,
        config: Optional[ExplorationConfig] = None,
        default_hint: int = 0,
        query_names: Optional[Sequence[str]] = None,
    ) -> None:
        if n_hints < 2:
            raise ExplorationError("LimeQO needs at least two hint sets")
        self.n_hints = int(n_hints)
        self.oracle = oracle
        self.policy = policy or LimeQOPolicy()
        self.config = config or ExplorationConfig()
        self.default_hint = int(default_hint)
        self._matrix: Optional[WorkloadMatrix] = None
        self._query_index: Dict[str, int] = {}
        self._explorer: Optional[OfflineExplorer] = None
        self._plan_cache: Optional[PlanCache] = None
        if query_names:
            for name in query_names:
                self.register_query(name)

    # -- workload management -----------------------------------------------
    @property
    def matrix(self) -> WorkloadMatrix:
        """The underlying workload matrix (created lazily)."""
        if self._matrix is None:
            raise ExplorationError("no queries registered yet")
        return self._matrix

    @property
    def num_queries(self) -> int:
        """Number of registered (cached) queries."""
        return 0 if self._matrix is None else self._matrix.n_queries

    def register_query(self, name: str, default_latency: Optional[float] = None) -> int:
        """Add a query to the workload; returns its row index.

        The first time a query is seen it is executed with the default plan
        (Section 3, "Handling novel queries"), so callers normally provide
        ``default_latency``; when omitted, the oracle is consulted.
        """
        if name in self._query_index:
            return self._query_index[name]
        if self._matrix is None:
            self._matrix = WorkloadMatrix(1, self.n_hints, query_names=[name])
            index = 0
        else:
            index = self._matrix.add_query(name)
        self._query_index[name] = index
        if default_latency is None:
            result = self.oracle.execute(index, self.default_hint, timeout=None)
            default_latency = result.latency
        self._matrix.observe(index, self.default_hint, float(default_latency))
        self._explorer = None  # matrix shape changed; rebuild on next explore
        return index

    def query_index(self, name: str) -> int:
        """Row index of a registered query."""
        try:
            return self._query_index[name]
        except KeyError:
            raise ExplorationError(f"unknown query {name!r}") from None

    # -- offline path ---------------------------------------------------------
    def explore(self, time_budget: float, max_steps: Optional[int] = None) -> List:
        """Run offline exploration for up to ``time_budget`` seconds."""
        if self._matrix is None:
            raise ExplorationError("register queries before exploring")
        if self._explorer is None:
            self._explorer = OfflineExplorer(
                self._matrix, self.policy, self.oracle, self.config
            )
        return self._explorer.run(time_budget=time_budget, max_steps=max_steps)

    @property
    def exploration_time(self) -> float:
        """Total offline exploration time charged so far."""
        return 0.0 if self._explorer is None else self._explorer.cumulative_exploration_time

    @property
    def overhead_seconds(self) -> float:
        """Cumulative model overhead of the policy."""
        return self.policy.overhead_seconds

    # -- online path -------------------------------------------------------------
    def plan_cache(self) -> PlanCache:
        """The verified plan cache over the live matrix (cached).

        The cache holds a reference to the evolving matrix, so one instance
        stays valid across exploration; reusing it keeps its decision-array
        snapshot warm for batched lookups.
        """
        matrix = self.matrix
        if self._plan_cache is None or self._plan_cache.matrix is not matrix:
            self._plan_cache = PlanCache(matrix, default_hint=self.default_hint)
        return self._plan_cache

    def lookup(self, name: str) -> CacheDecision:
        """Online lookup: which hint should this query use right now?"""
        return self.plan_cache().lookup(self.query_index(name))

    def lookup_batch(self, names: Sequence[str]) -> List[CacheDecision]:
        """Batched online lookups (one snapshot pass, not one walk per query)."""
        indices = [self.query_index(name) for name in names]
        return self.plan_cache().lookup_batch(indices)

    def serving_service(
        self,
        regression_margin: float = 1.0,
        refresher=None,
        estimator=None,
    ) -> "ServingService":
        """A batched serving front end sharing this facade's live matrix.

        See :class:`repro.serving.service.ServingService`; imported lazily so
        the facade keeps zero serving-layer dependencies until asked.
        """
        from ..serving.service import ServingService

        return ServingService(
            self.matrix,
            default_hint=self.default_hint,
            regression_margin=regression_margin,
            refresher=refresher,
            estimator=estimator,
        )

    def recommended_hints(self) -> List[int]:
        """Best verified hint per registered query (default when unknown).

        Reads the vectorised snapshot rather than running counted scalar
        lookups, so bulk introspection does not pollute the plan cache's
        online hit-rate accounting.
        """
        return self.plan_cache().snapshot().hints.tolist()

    def workload_latency(self) -> float:
        """Current total workload latency using verified hints (Equation 2)."""
        return self.matrix.workload_latency()

    def summary(self) -> Dict[str, float]:
        """A small status dictionary for dashboards and logs."""
        return {
            "queries": float(self.num_queries),
            "hints": float(self.n_hints),
            "observed_fraction": self.matrix.observed_fraction() if self._matrix else 0.0,
            "workload_latency": self.workload_latency() if self._matrix else float("nan"),
            "exploration_time": self.exploration_time,
            "overhead_seconds": self.overhead_seconds,
        }
