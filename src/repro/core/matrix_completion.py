"""Matrix-completion solvers compared in the paper (Figure 17).

Three completers behind one interface:

* :class:`ALSCompleter` -- the censored alternating-least-squares method the
  paper adopts (Algorithm 2),
* :class:`SVTCompleter` -- singular value thresholding (Cai et al. 2010),
* :class:`NuclearNormCompleter` -- nuclear-norm minimisation approximated by
  the Soft-Impute iteration (iteratively soft-thresholded SVD), which solves
  the same convex relaxation without an external SDP solver.

All completers consume the same (observed, mask, timeouts) triple produced
by :class:`~repro.core.workload_matrix.WorkloadMatrix`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from ..config import ALSConfig
from ..errors import CompletionError
from .als import CensoredALSResult, censored_als


class MatrixCompleter(ABC):
    """Interface shared by all matrix-completion solvers."""

    name = "base"

    @abstractmethod
    def complete(
        self,
        observed: np.ndarray,
        mask: np.ndarray,
        timeouts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return a fully filled matrix of the same shape as ``observed``."""

    @staticmethod
    def _validate(observed: np.ndarray, mask: np.ndarray) -> None:
        observed = np.asarray(observed)
        mask = np.asarray(mask)
        if observed.ndim != 2 or mask.shape != observed.shape:
            raise CompletionError(
                f"observed {observed.shape} and mask {mask.shape} must be matching 2-D arrays"
            )
        if mask.sum() == 0:
            raise CompletionError("observation mask is empty")


class ALSCompleter(MatrixCompleter):
    """Censored ALS (the paper's choice)."""

    name = "als"

    def __init__(self, config: Optional[ALSConfig] = None) -> None:
        self.config = config or ALSConfig()

    def complete(
        self,
        observed: np.ndarray,
        mask: np.ndarray,
        timeouts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.complete_result(observed, mask, timeouts).completed

    def complete_result(
        self,
        observed: np.ndarray,
        mask: np.ndarray,
        timeouts: Optional[np.ndarray] = None,
        warm_start: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        iterations: Optional[int] = None,
    ) -> CensoredALSResult:
        """Full solver output, including the ``(Q, H)`` factor pair.

        ``warm_start`` and ``iterations`` pass straight through to
        :func:`~repro.core.als.censored_als`; callers that carry factors
        across solves (the incremental predictor, the serving refresher) use
        this entry point so the factors survive the completion step.
        """
        self._validate(observed, mask)
        return censored_als(
            observed,
            mask,
            timeouts,
            self.config,
            warm_start=warm_start,
            iterations=iterations,
        )


class SVTCompleter(MatrixCompleter):
    """Singular Value Thresholding.

    Iterates ``Y += step * M ⊙ (W - shrink(Y))`` where ``shrink`` soft-
    thresholds the singular values at ``tau``.  Struggles at very low fill
    fractions -- the behaviour Figure 17 documents.
    """

    name = "svt"

    def __init__(
        self,
        tau: Optional[float] = None,
        step: float = 1.2,
        iterations: int = 150,
        tolerance: float = 1e-4,
    ) -> None:
        if iterations < 1:
            raise CompletionError("SVT needs at least one iteration")
        self.tau = tau
        self.step = float(step)
        self.iterations = int(iterations)
        self.tolerance = float(tolerance)

    def complete(
        self,
        observed: np.ndarray,
        mask: np.ndarray,
        timeouts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._validate(observed, mask)
        mask = np.asarray(mask, dtype=float)
        observed_filled = np.where(mask > 0, np.asarray(observed, dtype=float), 0.0)
        n, k = observed_filled.shape
        # Cai et al. recommend a threshold of roughly 5 * sqrt(n * k); smaller
        # values over-shrink the recovered spectrum.
        tau = self.tau if self.tau is not None else 5.0 * np.sqrt(n * k)
        dual = self.step * observed_filled * mask
        estimate = np.zeros_like(observed_filled)
        norm_observed = np.linalg.norm(observed_filled * mask)
        if norm_observed == 0:
            raise CompletionError("SVT cannot run: all observed entries are zero")
        for _ in range(self.iterations):
            u, s, vt = np.linalg.svd(dual, full_matrices=False)
            s_shrunk = np.maximum(s - tau, 0.0)
            estimate = (u * s_shrunk) @ vt
            residual = mask * (observed_filled - estimate)
            dual = dual + self.step * residual
            if np.linalg.norm(residual) / norm_observed < self.tolerance:
                break
        completed = mask * observed_filled + (1.0 - mask) * estimate
        return np.maximum(completed, 0.0)


class NuclearNormCompleter(MatrixCompleter):
    """Nuclear-norm minimisation via the Soft-Impute iteration.

    Repeatedly fills the missing entries with the current estimate and
    soft-thresholds the singular values, converging to the solution of the
    convex nuclear-norm relaxation.  Accurate but noticeably slower than ALS
    -- the trade-off Figure 17 illustrates.
    """

    name = "nuc"

    def __init__(
        self,
        shrinkage: Optional[float] = None,
        iterations: int = 300,
        tolerance: float = 1e-6,
    ) -> None:
        if iterations < 1:
            raise CompletionError("NuclearNormCompleter needs at least one iteration")
        self.shrinkage = shrinkage
        self.iterations = int(iterations)
        self.tolerance = float(tolerance)

    def complete(
        self,
        observed: np.ndarray,
        mask: np.ndarray,
        timeouts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._validate(observed, mask)
        mask = np.asarray(mask, dtype=float)
        observed_filled = np.where(mask > 0, np.asarray(observed, dtype=float), 0.0)
        # Default shrinkage: a small fraction of the top singular value, so
        # the solution keeps most of the observed structure.
        top_singular = np.linalg.svd(observed_filled, compute_uv=False)[0]
        lam = self.shrinkage if self.shrinkage is not None else 0.01 * top_singular
        estimate = np.zeros_like(observed_filled)
        for _ in range(self.iterations):
            filled = mask * observed_filled + (1.0 - mask) * estimate
            u, s, vt = np.linalg.svd(filled, full_matrices=False)
            s_shrunk = np.maximum(s - lam, 0.0)
            new_estimate = (u * s_shrunk) @ vt
            change = np.linalg.norm(new_estimate - estimate) / (
                np.linalg.norm(estimate) + 1e-12
            )
            estimate = new_estimate
            if change < self.tolerance:
                break
        completed = mask * observed_filled + (1.0 - mask) * estimate
        return np.maximum(completed, 0.0)


def completion_mse(
    truth: np.ndarray, completed: np.ndarray, holdout_mask: Optional[np.ndarray] = None
) -> float:
    """Mean squared error of ``completed`` against ``truth``.

    When ``holdout_mask`` is given, only entries where it is non-zero count
    (the usual train/test split for matrix completion benchmarks).
    """
    truth = np.asarray(truth, dtype=float)
    completed = np.asarray(completed, dtype=float)
    if truth.shape != completed.shape:
        raise CompletionError(
            f"shape mismatch: truth {truth.shape} vs completed {completed.shape}"
        )
    if holdout_mask is None:
        diff = truth - completed
        return float(np.mean(diff ** 2))
    holdout_mask = np.asarray(holdout_mask, dtype=bool)
    if holdout_mask.shape != truth.shape:
        raise CompletionError("holdout mask shape mismatch")
    if not holdout_mask.any():
        raise CompletionError("holdout mask selects no entries")
    diff = truth[holdout_mask] - completed[holdout_mask]
    return float(np.mean(diff ** 2))


def completion_rmse(
    truth: np.ndarray, completed: np.ndarray, holdout_mask: Optional[np.ndarray] = None
) -> float:
    """Root of :func:`completion_mse`."""
    return float(np.sqrt(completion_mse(truth, completed, holdout_mask)))
