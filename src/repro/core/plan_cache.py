"""The online serving path: a verified plan cache with no regressions.

Figure 2's online path: when a query arrives, the DBMS asks LimeQO whether
a *verified* better plan exists.  The cache answers with the best hint whose
latency has actually been observed during offline exploration, or the
default plan otherwise.  Because the default plan's latency is always
observed first (it is executed as part of normal operation), a non-default
hint is only ever returned when it was measured to be at least
``regression_margin`` times faster -- the no-regression guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ExplorationError
from .workload_matrix import WorkloadMatrix


@dataclass(frozen=True)
class CacheDecision:
    """What the cache decided for one query lookup."""

    query: int
    hint: int
    used_default: bool
    expected_latency: float


@dataclass(frozen=True)
class CacheSnapshot:
    """Precomputed decision arrays for every query at one matrix version.

    The scalar :meth:`PlanCache.lookup` walks one matrix row per call; a
    snapshot evaluates the same no-regression rule for *all* rows with a
    handful of vectorised operations and is then reused until the matrix
    changes (detected via :attr:`WorkloadMatrix.version`).  This is the
    kernel the batched serving layer (:mod:`repro.serving`) is built on.
    """

    version: int
    default_hint: int
    regression_margin: float
    hints: np.ndarray
    used_default: np.ndarray
    expected_latency: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries covered by the snapshot."""
        return self.hints.shape[0]

    def decision(self, query: int) -> CacheDecision:
        """The precomputed decision for one query."""
        return CacheDecision(
            query=int(query),
            hint=int(self.hints[query]),
            used_default=bool(self.used_default[query]),
            expected_latency=float(self.expected_latency[query]),
        )

    @classmethod
    def compute(
        cls,
        matrix: WorkloadMatrix,
        default_hint: int,
        regression_margin: float,
    ) -> "CacheSnapshot":
        """Evaluate the serving rule for every query in one vectorised pass."""
        values = matrix.values
        observed = matrix.mask > 0
        default_latency = np.where(
            observed[:, default_hint], values[:, default_hint], np.inf
        )
        best = matrix.best_hint_array()
        safe_best = np.maximum(best, 0)
        best_latency = values[np.arange(matrix.n_queries), safe_best]
        best_latency = np.where(best >= 0, best_latency, np.inf)
        serve_best = (
            (best >= 0)
            & (best != default_hint)
            & (best_latency <= default_latency * regression_margin)
        )
        hints = np.where(serve_best, safe_best, default_hint).astype(np.int64)
        expected = np.where(serve_best, best_latency, default_latency)
        return cls(
            version=matrix.version,
            default_hint=int(default_hint),
            regression_margin=float(regression_margin),
            hints=hints,
            used_default=~serve_best,
            expected_latency=expected,
        )


class PlanCache:
    """Maps queries to their best verified hint, defaulting safely.

    Parameters
    ----------
    matrix:
        The workload matrix holding verified (observed) latencies.
    default_hint:
        Column index of the DBMS default plan (0 by convention).
    regression_margin:
        A non-default hint is served only when its observed latency is at
        most ``regression_margin`` times the default's observed latency.
        1.0 means "at least as fast as the default".
    """

    def __init__(
        self,
        matrix: WorkloadMatrix,
        default_hint: int = 0,
        regression_margin: float = 1.0,
    ) -> None:
        if not 0 <= default_hint < matrix.n_hints:
            raise ExplorationError(
                f"default hint {default_hint} out of range for {matrix.n_hints} hints"
            )
        if regression_margin <= 0:
            raise ExplorationError("regression_margin must be > 0")
        self.matrix = matrix
        self.default_hint = int(default_hint)
        self.regression_margin = float(regression_margin)
        self._lookups = 0
        self._non_default_served = 0
        self._snapshot: Optional[CacheSnapshot] = None

    # -- lookups ----------------------------------------------------------
    def lookup(self, query: int) -> CacheDecision:
        """Return the hint to use for ``query`` right now."""
        self._lookups += 1
        default_latency = (
            self.matrix.value(query, self.default_hint)
            if self.matrix.is_observed(query, self.default_hint)
            else float("inf")
        )
        best = self.matrix.best_hint(query)
        if best is None or best == self.default_hint:
            return CacheDecision(
                query=query,
                hint=self.default_hint,
                used_default=True,
                expected_latency=default_latency,
            )
        best_latency = self.matrix.value(query, best)
        if best_latency <= default_latency * self.regression_margin:
            self._non_default_served += 1
            return CacheDecision(
                query=query, hint=best, used_default=False, expected_latency=best_latency
            )
        return CacheDecision(
            query=query,
            hint=self.default_hint,
            used_default=True,
            expected_latency=default_latency,
        )

    def lookup_all(self) -> List[CacheDecision]:
        """Decisions for every query in the workload."""
        return [self.lookup(q) for q in range(self.matrix.n_queries)]

    # -- batched lookups ----------------------------------------------------
    def snapshot(self, force: bool = False) -> CacheSnapshot:
        """Precomputed decision arrays, cached until the matrix mutates."""
        if (
            force
            or self._snapshot is None
            or self._snapshot.version != self.matrix.version
        ):
            self._snapshot = CacheSnapshot.compute(
                self.matrix, self.default_hint, self.regression_margin
            )
        return self._snapshot

    @property
    def cached_snapshot(self) -> Optional[CacheSnapshot]:
        """The currently cached snapshot, possibly stale or None (introspection)."""
        return self._snapshot

    def lookup_batch(self, queries) -> List[CacheDecision]:
        """Decisions for a batch of query indices via the cached snapshot.

        Equivalent to ``[self.lookup(q) for q in queries]`` (including the
        hit-rate accounting) but evaluates the serving rule once per matrix
        version instead of once per call.
        """
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 1:
            raise ExplorationError("lookup_batch expects a 1-D array of query indices")
        if queries.size and (queries.min() < 0 or queries.max() >= self.matrix.n_queries):
            raise ExplorationError("lookup_batch: query index out of range")
        snap = self.snapshot()
        self._lookups += int(queries.size)
        self._non_default_served += int((~snap.used_default[queries]).sum())
        return [snap.decision(q) for q in queries]

    # -- guarantees and stats ----------------------------------------------
    def verify_no_regression(self, true_latencies) -> bool:
        """Check the no-regression guarantee against ground truth.

        For every query, the latency of the served hint must not exceed the
        latency of the default hint (up to the regression margin) *under the
        observed measurements used to make the decision*.  Ground truth is
        accepted for convenience in tests and benchmarks.
        """
        true_latencies = np.asarray(true_latencies, dtype=float)
        if true_latencies.shape != self.matrix.shape:
            raise ExplorationError("true latency matrix shape mismatch")
        for decision in self.lookup_all():
            if decision.used_default:
                continue
            default_true = true_latencies[decision.query, self.default_hint]
            served_true = true_latencies[decision.query, decision.hint]
            # Allow the margin plus simulator noise headroom.
            if served_true > default_true * self.regression_margin * 1.5:
                return False
        return True

    def hit_rate(self) -> float:
        """Fraction of lookups answered with a verified non-default plan."""
        if self._lookups == 0:
            return 0.0
        return self._non_default_served / self._lookups

    def as_hint_map(self) -> Dict[int, int]:
        """Mapping query index -> hint index currently served."""
        return {d.query: d.hint for d in self.lookup_all()}
