"""The online serving path: a verified plan cache with no regressions.

Figure 2's online path: when a query arrives, the DBMS asks LimeQO whether
a *verified* better plan exists.  The cache answers with the best hint whose
latency has actually been observed during offline exploration, or the
default plan otherwise.  Because the default plan's latency is always
observed first (it is executed as part of normal operation), a non-default
hint is only ever returned when it was measured to be at least
``regression_margin`` times faster -- the no-regression guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ExplorationError
from .workload_matrix import WorkloadMatrix


@dataclass(frozen=True)
class CacheDecision:
    """What the cache decided for one query lookup."""

    query: int
    hint: int
    used_default: bool
    expected_latency: float


class PlanCache:
    """Maps queries to their best verified hint, defaulting safely.

    Parameters
    ----------
    matrix:
        The workload matrix holding verified (observed) latencies.
    default_hint:
        Column index of the DBMS default plan (0 by convention).
    regression_margin:
        A non-default hint is served only when its observed latency is at
        most ``regression_margin`` times the default's observed latency.
        1.0 means "at least as fast as the default".
    """

    def __init__(
        self,
        matrix: WorkloadMatrix,
        default_hint: int = 0,
        regression_margin: float = 1.0,
    ) -> None:
        if not 0 <= default_hint < matrix.n_hints:
            raise ExplorationError(
                f"default hint {default_hint} out of range for {matrix.n_hints} hints"
            )
        if regression_margin <= 0:
            raise ExplorationError("regression_margin must be > 0")
        self.matrix = matrix
        self.default_hint = int(default_hint)
        self.regression_margin = float(regression_margin)
        self._lookups = 0
        self._non_default_served = 0

    # -- lookups ----------------------------------------------------------
    def lookup(self, query: int) -> CacheDecision:
        """Return the hint to use for ``query`` right now."""
        self._lookups += 1
        default_latency = (
            self.matrix.value(query, self.default_hint)
            if self.matrix.is_observed(query, self.default_hint)
            else float("inf")
        )
        best = self.matrix.best_hint(query)
        if best is None or best == self.default_hint:
            return CacheDecision(
                query=query,
                hint=self.default_hint,
                used_default=True,
                expected_latency=default_latency,
            )
        best_latency = self.matrix.value(query, best)
        if best_latency <= default_latency * self.regression_margin:
            self._non_default_served += 1
            return CacheDecision(
                query=query, hint=best, used_default=False, expected_latency=best_latency
            )
        return CacheDecision(
            query=query,
            hint=self.default_hint,
            used_default=True,
            expected_latency=default_latency,
        )

    def lookup_all(self) -> List[CacheDecision]:
        """Decisions for every query in the workload."""
        return [self.lookup(q) for q in range(self.matrix.n_queries)]

    # -- guarantees and stats ----------------------------------------------
    def verify_no_regression(self, true_latencies) -> bool:
        """Check the no-regression guarantee against ground truth.

        For every query, the latency of the served hint must not exceed the
        latency of the default hint (up to the regression margin) *under the
        observed measurements used to make the decision*.  Ground truth is
        accepted for convenience in tests and benchmarks.
        """
        import numpy as np

        true_latencies = np.asarray(true_latencies, dtype=float)
        if true_latencies.shape != self.matrix.shape:
            raise ExplorationError("true latency matrix shape mismatch")
        for decision in self.lookup_all():
            if decision.used_default:
                continue
            default_true = true_latencies[decision.query, self.default_hint]
            served_true = true_latencies[decision.query, decision.hint]
            # Allow the margin plus simulator noise headroom.
            if served_true > default_true * self.regression_margin * 1.5:
                return False
        return True

    def hit_rate(self) -> float:
        """Fraction of lookups answered with a verified non-default plan."""
        if self._lookups == 0:
            return 0.0
        return self._non_default_served / self._lookups

    def as_hint_map(self) -> Dict[int, int]:
        """Mapping query index -> hint index currently served."""
        return {d.query: d.hint for d in self.lookup_all()}
