"""Offline exploration policies (paper Sections 4.2 and 5, "Techniques").

Each policy answers one question per exploration step: *which unexplored
(query, hint) cells should be executed next?*  The six methods compared in
Figure 5 are implemented here:

* :class:`RandomPolicy` -- uniform over unexplored cells,
* :class:`GreedyPolicy` -- longest-running queries first, random hint,
* :class:`QOAdvisorPolicy` -- lowest optimizer-estimated cost first,
* :class:`BaoCachePolicy` -- cells with the lowest model-predicted latency,
* :class:`LimeQOPolicy` -- Algorithm 1 with a pluggable predictor (ALS by
  default: the linear method),
* :class:`LimeQOPlusPolicy` -- Algorithm 1 with the transductive TCNN.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import ALSConfig
from ..errors import ExplorationError
from .predictors import ALSPredictor, Predictor
from .scoring import expected_improvement_ratios
from .workload_matrix import WorkloadMatrix

Candidate = Tuple[int, int]


class ExplorationPolicy:
    """Base class: subclasses override :meth:`select`."""

    name = "base"
    uses_predictor = False

    def __init__(self) -> None:
        self._last_prediction: Optional[np.ndarray] = None

    # -- selection ---------------------------------------------------------
    def select(
        self, matrix: WorkloadMatrix, batch_size: int, rng: np.random.Generator
    ) -> List[Candidate]:
        """Return up to ``batch_size`` unexplored (query, hint) cells."""
        raise NotImplementedError

    def configure(self, config) -> None:
        """Adopt exploration-loop knobs (called when attached to an explorer).

        The default implementation forwards the ``incremental_als`` family
        of :class:`~repro.config.ExplorationConfig` knobs to the policy's
        predictor when it supports warm-started refreshes (the censored-ALS
        predictor does); model-free policies ignore it.  Knobs left at
        ``None`` do not touch the predictor, so explicitly constructed
        settings (e.g. ``ALSPredictor(warm_start=False)`` for the
        paper-exact cold baseline) survive attachment to an explorer.
        """
        predictor = getattr(self, "predictor", None)
        if predictor is None or not hasattr(predictor, "set_incremental"):
            return
        if (
            config.incremental_als is None
            and config.als_refresh_iterations is None
            and config.als_full_solve_every is None
        ):
            return
        enabled = (
            predictor.warm_start
            if config.incremental_als is None
            else config.incremental_als
        )
        predictor.set_incremental(
            enabled,
            refresh_iterations=config.als_refresh_iterations,
            full_solve_every=config.als_full_solve_every,
        )

    # -- shared helpers ------------------------------------------------------
    @property
    def last_prediction(self) -> Optional[np.ndarray]:
        """The predictor's last completed matrix (None for model-free policies)."""
        return self._last_prediction

    @property
    def overhead_seconds(self) -> float:
        """Cumulative model overhead (0 for model-free policies)."""
        return 0.0

    @staticmethod
    def _random_fill(
        matrix: WorkloadMatrix,
        already: Sequence[Candidate],
        needed: int,
        rng: np.random.Generator,
    ) -> List[Candidate]:
        """Uniformly sample additional unexplored cells, avoiding duplicates.

        Works on flat indices into the unknown mask; the pool has the same
        row-major order (minus ``already``) as the historical list-of-tuples
        implementation, so the generator draws -- and therefore the sampled
        cells -- are unchanged.
        """
        if needed <= 0:
            return []
        unknown = matrix.unknown_mask()
        if already:
            unknown = unknown.copy()
            rows = [c[0] for c in already]
            cols = [c[1] for c in already]
            unknown[rows, cols] = False
        pool = np.flatnonzero(unknown)
        if pool.size == 0:
            return []
        take = min(needed, pool.size)
        picks = pool[np.atleast_1d(rng.choice(pool.size, size=take, replace=False))]
        n_hints = matrix.n_hints
        return [(int(p // n_hints), int(p % n_hints)) for p in picks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class RandomPolicy(ExplorationPolicy):
    """Explore uniformly random unexplored cells."""

    name = "random"

    def select(self, matrix, batch_size, rng):
        return self._random_fill(matrix, [], batch_size, rng)


class GreedyPolicy(ExplorationPolicy):
    """Explore the longest-running queries first (Section 4.2, "Greedy").

    Queries are ranked by their current best observed latency, descending;
    for each selected query a random unexplored hint is chosen.
    """

    name = "greedy"

    def select(self, matrix, batch_size, rng):
        minima = matrix.row_minima()
        order = np.argsort(-np.where(np.isinf(minima), np.finfo(float).max, minima))
        picks: List[Candidate] = []
        for query in order:
            if len(picks) >= batch_size:
                break
            unknown = matrix.unknown_in_row(int(query))
            if not unknown:
                continue
            hint = int(rng.choice(unknown))
            picks.append((int(query), hint))
        picks.extend(self._random_fill(matrix, picks, batch_size - len(picks), rng))
        return picks


class QOAdvisorPolicy(ExplorationPolicy):
    """Explore the unexplored cell with the lowest optimizer-estimated cost.

    This is the paper's PostgreSQL adaptation of QO-Advisor: the contextual
    bandit's best possible action is the plan the cost model likes most, so
    we rank unexplored cells by the optimizer's estimated plan cost.
    """

    name = "qo-advisor"

    def __init__(self, cost_matrix: np.ndarray) -> None:
        super().__init__()
        self.cost_matrix = np.asarray(cost_matrix, dtype=float)
        if self.cost_matrix.ndim != 2:
            raise ExplorationError("QOAdvisorPolicy needs a 2-D cost matrix")

    def select(self, matrix, batch_size, rng):
        if self.cost_matrix.shape[1] != matrix.n_hints:
            raise ExplorationError(
                "cost matrix column count does not match the workload matrix"
            )
        unknown = matrix.unknown_mask()
        if self.cost_matrix.shape[0] < matrix.n_queries:
            unknown = unknown.copy()
            unknown[self.cost_matrix.shape[0]:] = False
        flat = np.flatnonzero(unknown)
        if flat.size == 0:
            return []
        rows, cols = np.divmod(flat, matrix.n_hints)
        order = np.argsort(self.cost_matrix[rows, cols])
        top = flat[order[:batch_size]]
        picks = [(int(p // matrix.n_hints), int(p % matrix.n_hints)) for p in top]
        picks.extend(self._random_fill(matrix, picks, batch_size - len(picks), rng))
        return picks


class BaoCachePolicy(ExplorationPolicy):
    """Explore the cells the value model predicts to be fastest.

    The offline adaptation of Bao described in Section 5: the TCNN value
    model scores every unexplored plan and the most promising (lowest
    predicted latency) plans are executed and cached.  Unlike LimeQO it does
    not normalise by expected improvement, so it happily spends time on
    queries that are already fast.
    """

    name = "bao-cache"
    uses_predictor = True

    def __init__(self, predictor: Predictor) -> None:
        super().__init__()
        self.predictor = predictor

    @property
    def overhead_seconds(self) -> float:
        return self.predictor.overhead_seconds

    def select(self, matrix, batch_size, rng):
        predicted = self.predictor.predict(matrix)
        self._last_prediction = predicted
        flat = np.flatnonzero(matrix.unknown_mask())
        if flat.size == 0:
            return []
        order = np.argsort(predicted.ravel()[flat])
        top = flat[order[:batch_size]]
        return [(int(p // matrix.n_hints), int(p % matrix.n_hints)) for p in top]


class LimeQOPolicy(ExplorationPolicy):
    """Algorithm 1: model-guided exploration by expected improvement ratio.

    Per step: complete the matrix with the predictor, compute each query's
    expected improvement ratio (Equation 6) at its predicted-best unexplored
    hint, execute the top ``m``; when fewer than ``m`` queries have positive
    predicted improvement, pad with random unexplored cells (lines 8-9).
    """

    name = "limeqo"
    uses_predictor = True

    def __init__(
        self,
        predictor: Optional[Predictor] = None,
        als_config: Optional[ALSConfig] = None,
        allow_random_fill: bool = True,
    ) -> None:
        super().__init__()
        self.predictor = predictor or ALSPredictor(als_config)
        self.allow_random_fill = bool(allow_random_fill)

    @property
    def overhead_seconds(self) -> float:
        return self.predictor.overhead_seconds

    def select(self, matrix, batch_size, rng):
        predicted = self.predictor.predict(matrix)
        self._last_prediction = predicted

        # One vectorised pass replaces the per-query Python loop: restrict
        # the predicted argmin to unexplored cells, compute Equation 6 for
        # every row, keep rows with positive expected improvement.  The
        # score array is built in ascending query order with the exact same
        # float operations as the historical loop, so the argsort (and
        # therefore the selection) is unchanged.
        unknown = matrix.unknown_mask()
        masked = np.where(unknown, predicted, np.inf)
        best_unknown = masked.argmin(axis=1)
        has_unknown = unknown.any(axis=1)
        current_best = matrix.row_minima()

        rows = np.arange(matrix.n_queries)
        predicted_latency = np.maximum(predicted[rows, best_unknown], 1e-9)
        with np.errstate(invalid="ignore"):
            ratios = np.where(
                np.isinf(current_best),
                np.inf,
                (current_best - predicted_latency) / predicted_latency,
            )
        eligible = has_unknown & (ratios > 0)
        candidate_rows = np.nonzero(eligible)[0]
        scores = ratios[eligible]

        if scores.size:
            order = np.argsort(-scores)
            top_rows = candidate_rows[order[:batch_size]]
            picks = [
                (int(q), int(best_unknown[q])) for q in top_rows
            ]
        else:
            picks = []
        if self.allow_random_fill and len(picks) < batch_size:
            picks.extend(
                self._random_fill(matrix, picks, batch_size - len(picks), rng)
            )
        return picks

    def improvement_ratios(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Expose Equation 6 ratios for diagnostics (uses a fresh prediction)."""
        predicted = self.predictor.predict(matrix)
        return expected_improvement_ratios(matrix, predicted)


class LimeQOPlusPolicy(LimeQOPolicy):
    """Algorithm 1 driven by the transductive TCNN (the neural method).

    Identical selection logic to :class:`LimeQOPolicy`; only the predictive
    model changes, which is exactly how the paper frames LimeQO+.
    """

    name = "limeqo+"

    def __init__(self, predictor: Predictor, allow_random_fill: bool = True) -> None:
        super().__init__(predictor=predictor, allow_random_fill=allow_random_fill)
