"""Predictive models plugged into Algorithm 1.

A predictor takes the current partially observed workload matrix and
returns a fully filled estimate ``Ŵ``.  Three families:

* :class:`ALSPredictor` -- the linear method (LimeQO),
* :class:`TCNNPredictor` -- a plain tree convolutional network over plan
  features (the "TCNN" ablation of Figure 12),
* :class:`TransductiveTCNNPredictor` -- the TCNN augmented with query/hint
  embedding layers (LimeQO+).

Each predictor tracks the cumulative wall-clock overhead it has consumed,
which is what Figures 7 and 13 report.
"""

from __future__ import annotations

import time
import weakref
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..config import ALSConfig, TCNNConfig
from ..errors import ExplorationError
from .matrix_completion import ALSCompleter
from .workload_matrix import WorkloadMatrix


class Predictor(ABC):
    """Interface for models that complete the workload matrix."""

    name = "base"

    def __init__(self) -> None:
        self._overhead_seconds = 0.0

    @property
    def overhead_seconds(self) -> float:
        """Cumulative model training + inference time consumed so far."""
        return self._overhead_seconds

    def predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Return a completed estimate ``Ŵ`` of the workload matrix."""
        start = time.perf_counter()
        estimate = self._predict(matrix)
        self._overhead_seconds += time.perf_counter() - start
        estimate = np.asarray(estimate, dtype=float)
        if estimate.shape != matrix.shape:
            raise ExplorationError(
                f"predictor {self.name!r} returned shape {estimate.shape}, "
                f"expected {matrix.shape}"
            )
        return estimate

    @abstractmethod
    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Subclass hook: produce the completed matrix."""


class ALSPredictor(Predictor):
    """Censored ALS matrix completion (the LimeQO linear method).

    By default the predictor is *incremental*: it keeps the ``(Q, H)``
    factor pair of its previous solve and, when asked to predict the same
    (possibly grown) matrix again, warm-starts the solver from those factors
    with ``refresh_iterations`` fill-in iterations instead of a full
    ``config.iterations`` cold solve.  Every ``full_solve_every``-th refresh
    runs a full cold solve to bound drift.  Predicting an unchanged matrix
    returns the cached completion without re-solving at all, and predicting
    a *different* matrix object always starts cold (the cached factors
    describe the previous matrix).

    Pass ``warm_start=False`` to recover the historical cold-every-step
    behaviour (the baseline the ``repro.perf`` equivalence benchmark
    measures against).
    """

    name = "als"

    def __init__(
        self,
        config: Optional[ALSConfig] = None,
        warm_start: bool = True,
        refresh_iterations: int = 5,
        full_solve_every: int = 10,
    ) -> None:
        super().__init__()
        self.config = config or ALSConfig()
        self._completer = ALSCompleter(self.config)
        self.set_incremental(warm_start, refresh_iterations, full_solve_every)
        self._result = None
        self._matrix_ref: Optional[weakref.ref] = None
        self._matrix_version: Optional[int] = None
        self._cold_solves = 0
        self._warm_solves = 0
        self._since_full_solve = 0

    # -- incremental-mode plumbing -----------------------------------------
    def set_incremental(
        self,
        enabled: bool,
        refresh_iterations: Optional[int] = None,
        full_solve_every: Optional[int] = None,
    ) -> None:
        """(Re)configure the warm-start behaviour.

        The exploration loop calls this when a policy is attached to an
        :class:`~repro.core.explorer.OfflineExplorer`, forwarding the
        ``incremental_als`` knobs of its ``ExplorationConfig``.
        """
        if refresh_iterations is not None and refresh_iterations < 1:
            raise ExplorationError(
                f"refresh_iterations must be >= 1, got {refresh_iterations}"
            )
        if full_solve_every is not None and full_solve_every < 1:
            raise ExplorationError(
                f"full_solve_every must be >= 1, got {full_solve_every}"
            )
        self.warm_start = bool(enabled)
        if refresh_iterations is not None:
            self.refresh_iterations = int(refresh_iterations)
        if full_solve_every is not None:
            self.full_solve_every = int(full_solve_every)

    @property
    def cold_solves(self) -> int:
        """Number of full from-scratch solves performed."""
        return self._cold_solves

    @property
    def warm_solves(self) -> int:
        """Number of warm-started incremental refreshes performed."""
        return self._warm_solves

    @property
    def factors(self):
        """The ``(Q, H)`` pair of the last solve (None before the first)."""
        return None if self._result is None else self._result.factors

    def reset(self) -> None:
        """Drop all carried factors; the next prediction solves cold."""
        self._result = None
        self._matrix_ref = None
        self._matrix_version = None
        self._since_full_solve = 0

    # -- prediction ---------------------------------------------------------
    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        same_matrix = (
            self._matrix_ref is not None and self._matrix_ref() is matrix
        )
        if (
            self._result is not None
            and same_matrix
            and self._matrix_version == matrix.version
        ):
            return self._result.completed

        warm = None
        iterations: Optional[int] = None
        if self.warm_start and self._result is not None and same_matrix:
            if self._since_full_solve < self.full_solve_every:
                warm_q, warm_h = self._result.factors
                rank = min(self.config.rank, matrix.n_queries, matrix.n_hints)
                # A rank change (possible while the matrix is tiny) or a
                # shrunken matrix invalidates the carried factors.
                if (
                    warm_q.shape[1] == rank
                    and warm_q.shape[0] <= matrix.n_queries
                    and warm_h.shape[0] <= matrix.n_hints
                ):
                    warm = (warm_q, warm_h)
                    iterations = self.refresh_iterations

        self._result = self._completer.complete_result(
            matrix.observed_values(),
            matrix.mask,
            matrix.timeout_matrix,
            warm_start=warm,
            iterations=iterations,
        )
        self._matrix_ref = weakref.ref(matrix)
        self._matrix_version = matrix.version
        if warm is None:
            self._cold_solves += 1
            self._since_full_solve = 0
        else:
            self._warm_solves += 1
            self._since_full_solve += 1
        return self._result.completed


class MeanPredictor(Predictor):
    """Baseline predictor: fill with per-column means (no low-rank structure).

    Not used by the paper, but handy for tests and sanity checks -- any
    reasonable model should beat it.
    """

    name = "mean"

    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        values = matrix.observed_values()
        mask = matrix.mask
        column_counts = mask.sum(axis=0)
        column_sums = values.sum(axis=0)
        global_mean = values[mask > 0].mean() if mask.sum() else 1.0
        column_means = np.where(
            column_counts > 0, column_sums / np.maximum(column_counts, 1), global_mean
        )
        estimate = np.tile(column_means, (matrix.n_queries, 1))
        return np.where(mask > 0, values, estimate)


class TCNNPredictor(Predictor):
    """Tree convolutional network over plan features (no embeddings).

    Requires a plan-feature store (see :mod:`repro.plans.featurize`) mapping
    each (query, hint) cell to a featurised plan tree.  Training follows the
    paper's protocol: Adam, batch size 32, up to 100 epochs with a 1%/10-
    epoch convergence criterion, warm-started from the previous step's
    weights, and the censored loss for timed-out observations.
    """

    name = "tcnn"
    _use_embeddings = False

    def __init__(self, feature_store, config: Optional[TCNNConfig] = None) -> None:
        super().__init__()
        self.feature_store = feature_store
        base = config or TCNNConfig()
        if base.use_embeddings != self._use_embeddings:
            base = TCNNConfig(
                embedding_rank=base.embedding_rank,
                channels=base.channels,
                hidden_units=base.hidden_units,
                dropout=base.dropout,
                learning_rate=base.learning_rate,
                batch_size=base.batch_size,
                max_epochs=base.max_epochs,
                convergence_window=base.convergence_window,
                convergence_threshold=base.convergence_threshold,
                use_embeddings=self._use_embeddings,
                censored=base.censored,
                seed=base.seed,
            )
        self.config = base
        self._trainer = None

    def _get_trainer(self, matrix: WorkloadMatrix):
        # Imported lazily so the linear method has zero neural dependencies.
        from ..nn.trainer import TCNNTrainer

        if self._trainer is None:
            self._trainer = TCNNTrainer(
                feature_store=self.feature_store,
                n_queries=matrix.n_queries,
                n_hints=matrix.n_hints,
                config=self.config,
            )
        elif self._trainer.n_queries < matrix.n_queries:
            self._trainer.grow_queries(matrix.n_queries)
        return self._trainer

    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        trainer = self._get_trainer(matrix)
        trainer.fit(matrix)
        predictions = trainer.predict_full(matrix)
        # Known entries keep their observed values, mirroring Section 4.3.2.
        values = matrix.observed_values()
        mask = matrix.mask
        return np.where(mask > 0, values, predictions)


class TransductiveTCNNPredictor(TCNNPredictor):
    """The transductive TCNN: tree convolution + query/hint embeddings."""

    name = "tcnn+embeddings"
    _use_embeddings = True
