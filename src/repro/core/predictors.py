"""Predictive models plugged into Algorithm 1.

A predictor takes the current partially observed workload matrix and
returns a fully filled estimate ``Ŵ``.  Three families:

* :class:`ALSPredictor` -- the linear method (LimeQO),
* :class:`TCNNPredictor` -- a plain tree convolutional network over plan
  features (the "TCNN" ablation of Figure 12),
* :class:`TransductiveTCNNPredictor` -- the TCNN augmented with query/hint
  embedding layers (LimeQO+).

Each predictor tracks the cumulative wall-clock overhead it has consumed,
which is what Figures 7 and 13 report.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..config import ALSConfig, TCNNConfig
from ..errors import ExplorationError
from .matrix_completion import ALSCompleter
from .workload_matrix import WorkloadMatrix


class Predictor(ABC):
    """Interface for models that complete the workload matrix."""

    name = "base"

    def __init__(self) -> None:
        self._overhead_seconds = 0.0

    @property
    def overhead_seconds(self) -> float:
        """Cumulative model training + inference time consumed so far."""
        return self._overhead_seconds

    def predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Return a completed estimate ``Ŵ`` of the workload matrix."""
        start = time.perf_counter()
        estimate = self._predict(matrix)
        self._overhead_seconds += time.perf_counter() - start
        estimate = np.asarray(estimate, dtype=float)
        if estimate.shape != matrix.shape:
            raise ExplorationError(
                f"predictor {self.name!r} returned shape {estimate.shape}, "
                f"expected {matrix.shape}"
            )
        return estimate

    @abstractmethod
    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Subclass hook: produce the completed matrix."""


class ALSPredictor(Predictor):
    """Censored ALS matrix completion (the LimeQO linear method)."""

    name = "als"

    def __init__(self, config: Optional[ALSConfig] = None) -> None:
        super().__init__()
        self.config = config or ALSConfig()
        self._completer = ALSCompleter(self.config)

    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        return self._completer.complete(
            matrix.observed_values(), matrix.mask, matrix.timeout_matrix
        )


class MeanPredictor(Predictor):
    """Baseline predictor: fill with per-column means (no low-rank structure).

    Not used by the paper, but handy for tests and sanity checks -- any
    reasonable model should beat it.
    """

    name = "mean"

    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        values = matrix.observed_values()
        mask = matrix.mask
        column_counts = mask.sum(axis=0)
        column_sums = values.sum(axis=0)
        global_mean = values[mask > 0].mean() if mask.sum() else 1.0
        column_means = np.where(
            column_counts > 0, column_sums / np.maximum(column_counts, 1), global_mean
        )
        estimate = np.tile(column_means, (matrix.n_queries, 1))
        return np.where(mask > 0, values, estimate)


class TCNNPredictor(Predictor):
    """Tree convolutional network over plan features (no embeddings).

    Requires a plan-feature store (see :mod:`repro.plans.featurize`) mapping
    each (query, hint) cell to a featurised plan tree.  Training follows the
    paper's protocol: Adam, batch size 32, up to 100 epochs with a 1%/10-
    epoch convergence criterion, warm-started from the previous step's
    weights, and the censored loss for timed-out observations.
    """

    name = "tcnn"
    _use_embeddings = False

    def __init__(self, feature_store, config: Optional[TCNNConfig] = None) -> None:
        super().__init__()
        self.feature_store = feature_store
        base = config or TCNNConfig()
        if base.use_embeddings != self._use_embeddings:
            base = TCNNConfig(
                embedding_rank=base.embedding_rank,
                channels=base.channels,
                hidden_units=base.hidden_units,
                dropout=base.dropout,
                learning_rate=base.learning_rate,
                batch_size=base.batch_size,
                max_epochs=base.max_epochs,
                convergence_window=base.convergence_window,
                convergence_threshold=base.convergence_threshold,
                use_embeddings=self._use_embeddings,
                censored=base.censored,
                seed=base.seed,
            )
        self.config = base
        self._trainer = None

    def _get_trainer(self, matrix: WorkloadMatrix):
        # Imported lazily so the linear method has zero neural dependencies.
        from ..nn.trainer import TCNNTrainer

        if self._trainer is None:
            self._trainer = TCNNTrainer(
                feature_store=self.feature_store,
                n_queries=matrix.n_queries,
                n_hints=matrix.n_hints,
                config=self.config,
            )
        elif self._trainer.n_queries < matrix.n_queries:
            self._trainer.grow_queries(matrix.n_queries)
        return self._trainer

    def _predict(self, matrix: WorkloadMatrix) -> np.ndarray:
        trainer = self._get_trainer(matrix)
        trainer.fit(matrix)
        predictions = trainer.predict_all(matrix)
        # Known entries keep their observed values, mirroring Section 4.3.2.
        values = matrix.observed_values()
        mask = matrix.mask
        return np.where(mask > 0, values, predictions)


class TransductiveTCNNPredictor(TCNNPredictor):
    """The transductive TCNN: tree convolution + query/hint embeddings."""

    name = "tcnn+embeddings"
    _use_embeddings = True
