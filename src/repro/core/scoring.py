"""Scoring and candidate selection for Algorithm 1.

The expected improvement ratio (paper Equation 6) compares each query's
current best *observed* latency against the predicted best latency from the
completed matrix; normalising by the predicted best balances workload
improvement against the exploration time the candidate would cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExplorationError
from .workload_matrix import WorkloadMatrix


def expected_improvement_ratios(
    matrix: WorkloadMatrix, predicted: np.ndarray
) -> np.ndarray:
    """Per-query expected improvement ratio ``r_i`` (Equation 6).

    ``r_i = (min W~_i - min Ŵ_i) / min Ŵ_i``.  Rows with no observation yet
    get ``+inf`` (any observation is an improvement over nothing).
    """
    predicted = np.asarray(predicted, dtype=float)
    if predicted.shape != matrix.shape:
        raise ExplorationError(
            f"predicted matrix shape {predicted.shape} does not match workload "
            f"matrix shape {matrix.shape}"
        )
    current_best = matrix.row_minima()
    predicted_best = predicted.min(axis=1)
    predicted_best = np.maximum(predicted_best, 1e-9)
    ratios = (current_best - predicted_best) / predicted_best
    ratios = np.where(np.isinf(current_best), np.inf, ratios)
    return ratios


def predicted_best_hints(
    matrix: WorkloadMatrix, predicted: np.ndarray, only_unknown: bool = True
) -> List[Optional[int]]:
    """For each query, the hint with the lowest predicted latency.

    With ``only_unknown`` the argmin is restricted to entries not yet
    executed; returns ``None`` for rows with nothing left to explore.
    """
    predicted = np.asarray(predicted, dtype=float)
    if predicted.shape != matrix.shape:
        raise ExplorationError("predicted matrix shape mismatch")
    if not only_unknown:
        return [int(h) for h in predicted.argmin(axis=1)]
    # Restricting the argmin with an inf mask preserves the historical
    # tie-break (first minimal hint in ascending index order) while staying
    # one vectorised pass instead of a per-row Python loop.
    unknown = matrix.unknown_mask()
    masked = np.where(unknown, predicted, np.inf)
    best = masked.argmin(axis=1)
    has_unknown = unknown.any(axis=1)
    return [
        int(h) if ok else None for h, ok in zip(best.tolist(), has_unknown.tolist())
    ]


def select_top_m(
    scores: Sequence[float],
    candidates: Sequence[Tuple[int, int]],
    m: int,
    require_positive: bool = True,
) -> List[Tuple[int, int]]:
    """Pick the ``m`` candidates with the largest scores (Algorithm 1 line 7).

    Parameters
    ----------
    scores:
        One score per candidate (same length as ``candidates``).
    candidates:
        (query, hint) pairs.
    m:
        How many to select.
    require_positive:
        When True, only candidates with a strictly positive score qualify
        (Algorithm 1 line 6 keeps only ``r_i > 0``).
    """
    if len(scores) != len(candidates):
        raise ExplorationError(
            f"got {len(scores)} scores for {len(candidates)} candidates"
        )
    if m < 1:
        raise ExplorationError(f"m must be >= 1, got {m}")
    scored = list(zip(scores, range(len(candidates))))
    if require_positive:
        scored = [(s, idx) for s, idx in scored if s > 0]
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return [candidates[idx] for _, idx in scored[:m]]
