"""Simulated offline exploration with an exact exploration-time clock.

The paper's evaluation plots total workload latency against offline
exploration time.  The simulator replays a policy against a fully known
ground-truth latency matrix, charging each executed cell its latency (or
its timeout when censored), and records the workload latency after every
step so the figures can be regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import ExplorationConfig
from ..errors import ExplorationError
from .explorer import MatrixOracle, OfflineExplorer
from .policies import ExplorationPolicy
from .workload_matrix import WorkloadMatrix


@dataclass
class ExplorationTrace:
    """Workload latency as a step function of offline exploration time."""

    times: np.ndarray
    latencies: np.ndarray
    overheads: np.ndarray
    policy_name: str = ""
    default_latency: float = float("nan")
    optimal_latency: float = float("nan")

    def latency_at(self, exploration_time: float) -> float:
        """Workload latency after ``exploration_time`` seconds of exploration."""
        if exploration_time < 0:
            raise ExplorationError("exploration_time must be >= 0")
        idx = np.searchsorted(self.times, exploration_time, side="right") - 1
        if idx < 0:
            return self.default_latency
        return float(self.latencies[idx])

    def overhead_at(self, exploration_time: float) -> float:
        """Cumulative model overhead after ``exploration_time`` seconds."""
        idx = np.searchsorted(self.times, exploration_time, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self.overheads[idx])

    def latencies_at(self, exploration_times: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`latency_at`: one ``searchsorted`` over all times."""
        times = np.asarray(exploration_times, dtype=float)
        if times.size and times.min() < 0:
            raise ExplorationError("exploration_time must be >= 0")
        idx = np.searchsorted(self.times, times, side="right") - 1
        return np.where(
            idx < 0, self.default_latency, self.latencies[np.maximum(idx, 0)]
        )

    @property
    def final_latency(self) -> float:
        """Workload latency at the end of the trace."""
        if len(self.latencies) == 0:
            return self.default_latency
        return float(self.latencies[-1])

    @property
    def total_exploration_time(self) -> float:
        """Total offline time consumed by the trace."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1])

    def speedup_at(self, exploration_time: float) -> float:
        """Default latency divided by the latency at ``exploration_time``."""
        latency = self.latency_at(exploration_time)
        return float(self.default_latency / latency) if latency > 0 else float("inf")


class ExplorationSimulator:
    """Runs a policy against a ground-truth matrix and records its trace.

    Parameters
    ----------
    true_latencies:
        Fully known ``n x k`` latency matrix (column 0 is the default hint).
    config:
        Exploration loop configuration shared by all runs.
    warm_start_default:
        When True (the paper's protocol) the default-hint column is revealed
        before exploration starts and is *not* charged to the exploration
        budget -- those executions happen anyway while serving the workload.
    """

    def __init__(
        self,
        true_latencies: np.ndarray,
        config: Optional[ExplorationConfig] = None,
        warm_start_default: bool = True,
        default_hint: int = 0,
    ) -> None:
        self.true_latencies = np.asarray(true_latencies, dtype=float)
        if self.true_latencies.ndim != 2:
            raise ExplorationError("true latency matrix must be 2-D")
        self.config = config or ExplorationConfig()
        self.warm_start_default = bool(warm_start_default)
        self.default_hint = int(default_hint)

    # -- reference quantities ------------------------------------------------
    @property
    def default_latency(self) -> float:
        """Total workload latency under the default hint (Table 1 "Default")."""
        return float(self.true_latencies[:, self.default_hint].sum())

    @property
    def optimal_latency(self) -> float:
        """Oracle best total latency (Table 1 "Optimal")."""
        return float(self.true_latencies.min(axis=1).sum())

    @property
    def headroom(self) -> float:
        """Default / Optimal ratio."""
        return self.default_latency / self.optimal_latency

    def full_exploration_time(self) -> float:
        """Time to execute every cell exhaustively (the "12 days" number)."""
        return float(self.true_latencies.sum())

    # -- running a policy -----------------------------------------------------
    def initial_matrix(self) -> WorkloadMatrix:
        """A fresh workload matrix, warm-started with the default column."""
        n, k = self.true_latencies.shape
        matrix = WorkloadMatrix(n, k)
        if self.warm_start_default:
            queries = np.arange(n, dtype=np.int64)
            hints = np.full(n, self.default_hint, dtype=np.int64)
            matrix.observe_batch(
                queries, hints, self.true_latencies[:, self.default_hint]
            )
        return matrix

    def run(
        self,
        policy: ExplorationPolicy,
        time_budget: float = float("inf"),
        max_steps: Optional[int] = None,
        matrix: Optional[WorkloadMatrix] = None,
    ) -> ExplorationTrace:
        """Run ``policy`` until ``time_budget`` and return its trace."""
        matrix = matrix if matrix is not None else self.initial_matrix()
        oracle = MatrixOracle(self.true_latencies)
        explorer = OfflineExplorer(matrix, policy, oracle, self.config)
        steps = explorer.run(time_budget=time_budget, max_steps=max_steps)

        times = [0.0] + [s.cumulative_exploration_time for s in steps]
        latencies = [matrix_latency_before(steps, self.default_latency)] + [
            s.workload_latency for s in steps
        ]
        overheads = [0.0] + [s.overhead_seconds for s in steps]
        return ExplorationTrace(
            times=np.asarray(times),
            latencies=np.asarray(latencies),
            overheads=np.asarray(overheads),
            policy_name=policy.name,
            default_latency=self.default_latency,
            optimal_latency=self.optimal_latency,
        )

    def run_many(
        self,
        policies: Sequence[ExplorationPolicy],
        time_budget: float = float("inf"),
        max_steps: Optional[int] = None,
    ) -> List[ExplorationTrace]:
        """Run several policies on identical starting conditions."""
        return [
            self.run(policy, time_budget=time_budget, max_steps=max_steps)
            for policy in policies
        ]


def matrix_latency_before(steps, default_latency: float) -> float:
    """Workload latency before any exploration happened."""
    return float(default_latency)
