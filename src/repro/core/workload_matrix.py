"""The partially observed workload matrix (paper Figure 1, Section 4.1).

Rows are queries, columns are hint sets, entries are plan latencies in
seconds.  Three states per entry:

* **unobserved** -- never executed; the stored value is ``inf``,
* **observed** -- executed to completion; the stored value is the latency,
* **censored** -- executed but cancelled at a timeout; the stored value is
  the timeout, which is a *lower bound* on the true latency.

Censored entries do not count as observed for the purposes of the mask
matrix ``M`` (they must not be fit exactly), but their lower bound is
exposed through the timeout matrix ``T`` used by the censored ALS solver
and the censored TCNN loss.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MatrixError


class WorkloadMatrix:
    """A partially observed latency matrix with censored observations."""

    def __init__(
        self,
        n_queries: int,
        n_hints: int,
        query_names: Optional[Sequence[str]] = None,
        hint_names: Optional[Sequence[str]] = None,
    ) -> None:
        if n_queries < 1 or n_hints < 1:
            raise MatrixError(
                f"workload matrix needs positive dimensions, got {n_queries}x{n_hints}"
            )
        self._values = np.full((n_queries, n_hints), np.inf, dtype=float)
        self._observed = np.zeros((n_queries, n_hints), dtype=bool)
        self._censored = np.zeros((n_queries, n_hints), dtype=bool)
        self._timeouts = np.zeros((n_queries, n_hints), dtype=float)
        self._version = 0
        self.query_names = self._validate_names(query_names, n_queries, "query")
        self.hint_names = self._validate_names(hint_names, n_hints, "hint")
        #: optional write-ahead journal (duck-typed ShardJournal).  Every
        #: mutator logs *before* it mutates, after validation; the hook
        #: lives here rather than on the service because re-exploration
        #: and migration mutate the matrix directly.
        self.journal = None

    @staticmethod
    def _validate_names(names: Optional[Sequence[str]], expected: int, kind: str) -> List[str]:
        if names is None:
            return [f"{kind[0]}{i}" for i in range(expected)]
        names = list(names)
        if len(names) != expected:
            raise MatrixError(
                f"expected {expected} {kind} names, got {len(names)}"
            )
        return names

    # -- shape ------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """(n_queries, n_hints)."""
        return self._values.shape

    @property
    def n_queries(self) -> int:
        """Number of rows (queries)."""
        return self._values.shape[0]

    @property
    def n_hints(self) -> int:
        """Number of columns (hint sets)."""
        return self._values.shape[1]

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation.

        Consumers that precompute derived arrays (the batched serving layer,
        cached plan-cache snapshots) compare versions instead of diffing the
        matrix to decide when to refresh.
        """
        return self._version

    # -- recording observations --------------------------------------------
    def observe(self, query: int, hint: int, latency: float) -> None:
        """Record a completed execution of ``latency`` seconds."""
        self._check_indices(query, hint)
        if not np.isfinite(latency) or latency < 0:
            raise MatrixError(
                f"latency must be finite and >= 0, got {latency} at ({query}, {hint})"
            )
        if self.journal is not None:
            self.journal.log_observe([query], [hint], [latency])
        self._values[query, hint] = float(latency)
        self._observed[query, hint] = True
        self._censored[query, hint] = False
        self._timeouts[query, hint] = 0.0
        self._version += 1

    def observe_batch(self, queries, hints, latencies) -> None:
        """Record many completed executions at once (vectorised `observe`).

        The serving layer feeds fresh measurements back in batches; doing the
        bookkeeping with one fancy-indexed assignment per array keeps the
        feedback path off the per-cell Python loop.
        """
        queries = np.asarray(queries, dtype=np.int64)
        hints = np.asarray(hints, dtype=np.int64)
        latencies = np.asarray(latencies, dtype=float)
        if not (queries.shape == hints.shape == latencies.shape) or queries.ndim != 1:
            raise MatrixError(
                "observe_batch needs three 1-D arrays of equal length, got "
                f"{queries.shape}, {hints.shape}, {latencies.shape}"
            )
        if queries.size == 0:
            return
        if queries.min() < 0 or queries.max() >= self.n_queries:
            raise MatrixError("observe_batch: query index out of range")
        if hints.min() < 0 or hints.max() >= self.n_hints:
            raise MatrixError("observe_batch: hint index out of range")
        if not np.all(np.isfinite(latencies)) or np.any(latencies < 0):
            raise MatrixError("observe_batch: latencies must be finite and >= 0")
        if self.journal is not None:
            self.journal.log_observe(queries, hints, latencies)
        self._values[queries, hints] = latencies
        self._observed[queries, hints] = True
        self._censored[queries, hints] = False
        self._timeouts[queries, hints] = 0.0
        self._version += 1

    def observe_censored(self, query: int, hint: int, lower_bound: float) -> None:
        """Record a timed-out execution: true latency exceeds ``lower_bound``."""
        self._check_indices(query, hint)
        if not np.isfinite(lower_bound) or lower_bound <= 0:
            raise MatrixError(
                f"censored lower bound must be finite and > 0, got {lower_bound}"
            )
        if self._observed[query, hint]:
            # A completed observation is strictly more informative; keep it.
            return
        if self.journal is not None:
            self.journal.log_censor(query, hint, lower_bound)
        # Keep only the tightest (largest) lower bound seen so far.
        self._timeouts[query, hint] = max(self._timeouts[query, hint], float(lower_bound))
        self._censored[query, hint] = True
        self._values[query, hint] = self._timeouts[query, hint]
        self._version += 1

    # -- state queries ------------------------------------------------------
    def is_observed(self, query: int, hint: int) -> bool:
        """True for completed (non-censored) observations."""
        self._check_indices(query, hint)
        return bool(self._observed[query, hint])

    def is_censored(self, query: int, hint: int) -> bool:
        """True for timed-out observations."""
        self._check_indices(query, hint)
        return bool(self._censored[query, hint])

    def is_known(self, query: int, hint: int) -> bool:
        """True when the entry has been executed at all (observed or censored)."""
        self._check_indices(query, hint)
        return bool(self._observed[query, hint] or self._censored[query, hint])

    def value(self, query: int, hint: int) -> float:
        """Stored value: latency, censored lower bound, or ``inf``."""
        self._check_indices(query, hint)
        return float(self._values[query, hint])

    # -- matrix views ---------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Copy of the value matrix (``inf`` for unobserved entries)."""
        return self._values.copy()

    @property
    def mask(self) -> np.ndarray:
        """The mask matrix ``M``: 1 for completed observations, else 0."""
        return self._observed.astype(float)

    @property
    def censored_mask(self) -> np.ndarray:
        """Boolean matrix marking censored (timed-out) entries."""
        return self._censored.copy()

    @property
    def timeout_matrix(self) -> np.ndarray:
        """The timeout matrix ``T``: lower bounds for censored entries, else 0."""
        return self._timeouts.copy()

    def observed_values(self) -> np.ndarray:
        """Value matrix with unobserved entries replaced by 0 (for ``M ⊙ W``)."""
        out = np.where(self._observed, self._values, 0.0)
        return out

    # -- row statistics --------------------------------------------------------
    def row_min(self, query: int) -> float:
        """Best (minimum) *verified* latency currently known for ``query``.

        Only completed observations participate: a censored entry records a
        lower bound on a plan that was never allowed to finish, so it cannot
        be served and must not lower the row minimum (Algorithm 1's timeout
        ``alpha * Ŵ_ij`` can sit below the current best).
        """
        self._check_indices(query, 0)
        observed = self._observed[query]
        if not observed.any():
            return float("inf")
        return float(self._values[query][observed].min())

    def row_minima(self) -> np.ndarray:
        """Vector of :meth:`row_min` over all queries (vectorised)."""
        masked = np.where(self._observed, self._values, np.inf)
        return masked.min(axis=1)

    def observed_count_in_row(self, query: int) -> int:
        """Number of completed observations in a row."""
        self._check_indices(query, 0)
        return int(self._observed[query].sum())

    def best_hint(self, query: int) -> Optional[int]:
        """Index of the best *completed* hint for ``query`` (None if none)."""
        self._check_indices(query, 0)
        if not self._observed[query].any():
            return None
        row = np.where(self._observed[query], self._values[query], np.inf)
        return int(np.argmin(row))

    def best_hints(self) -> List[Optional[int]]:
        """Per-query :meth:`best_hint`."""
        array = self.best_hint_array()
        return [None if h < 0 else int(h) for h in array]

    def best_hint_array(self) -> np.ndarray:
        """Vectorised :meth:`best_hint`: per-query argmin over completed
        observations, ``-1`` where a row has none.

        This is the precomputed array the batched serving path is built on:
        one call replaces ``n_queries`` per-row dictionary walks.
        """
        masked = np.where(self._observed, self._values, np.inf)
        best = masked.argmin(axis=1).astype(np.int64)
        has_observation = self._observed.any(axis=1)
        return np.where(has_observation, best, -1)

    # -- workload-level statistics (paper Equations 2 and 3) -------------------
    def workload_latency(self) -> float:
        """``P(W~)``: total latency of serving each query with its best hint."""
        minima = self.row_minima()
        return float(minima.sum())

    def exploration_time(self) -> float:
        """``T(W~)``: total offline execution time spent revealing entries.

        Completed entries charge their latency; censored entries charge the
        timeout at which they were cancelled.
        """
        completed = self._values[self._observed].sum()
        censored = self._timeouts[self._censored].sum()
        return float(completed + censored)

    # -- unexplored entries -----------------------------------------------------
    def unknown_mask(self) -> np.ndarray:
        """Boolean matrix: True where the entry was never executed.

        The vectorised counterpart of :meth:`unknown_entries`; the policy
        hot path works on this array (and flat indices into it) instead of
        materialising a Python list of tuples every step.
        """
        return ~(self._observed | self._censored)

    def unknown_entries(self) -> List[Tuple[int, int]]:
        """(query, hint) pairs never executed (neither observed nor censored)."""
        rows, cols = np.nonzero(self.unknown_mask())
        return list(zip(rows.tolist(), cols.tolist()))

    def unknown_in_row(self, query: int) -> List[int]:
        """Hint indices never executed for ``query``."""
        self._check_indices(query, 0)
        unknown = ~(self._observed[query] | self._censored[query])
        return np.nonzero(unknown)[0].tolist()

    def observed_fraction(self) -> float:
        """Fraction of entries with completed observations."""
        return float(self._observed.mean())

    def known_fraction(self) -> float:
        """Fraction of entries executed at all (observed or censored)."""
        return float((self._observed | self._censored).mean())

    # -- growth (workload shift) --------------------------------------------------
    def add_query(self, name: Optional[str] = None) -> int:
        """Append a new, fully unobserved row and return its index."""
        if self.journal is not None:
            self.journal.log_add_query(name)
        index = self.n_queries
        self._values = np.vstack([self._values, np.full((1, self.n_hints), np.inf)])
        self._observed = np.vstack([self._observed, np.zeros((1, self.n_hints), bool)])
        self._censored = np.vstack([self._censored, np.zeros((1, self.n_hints), bool)])
        self._timeouts = np.vstack([self._timeouts, np.zeros((1, self.n_hints))])
        self.query_names.append(name if name is not None else f"q{index}")
        self._version += 1
        return index

    # -- row migration (cluster rebalancing) -------------------------------------
    def export_rows(self, queries: Sequence[int]) -> Dict:
        """Extract full row state for a set of queries (order preserved).

        The payload carries everything a row knows -- values, observed and
        censored flags, censored timeouts, and the query names -- so a
        serving shard can hand rows to another shard without losing any
        observation or lower bound.  ``hint_names`` travel along so the
        receiver can verify column compatibility.
        """
        indices = np.asarray(list(queries), dtype=np.int64)
        if indices.ndim != 1:
            raise MatrixError("export_rows expects a 1-D sequence of query indices")
        for q in indices:
            self._check_indices(int(q), 0)
        return {
            "values": self._values[indices].copy(),
            "observed": self._observed[indices].copy(),
            "censored": self._censored[indices].copy(),
            "timeouts": self._timeouts[indices].copy(),
            "query_names": [self.query_names[int(q)] for q in indices],
            "hint_names": list(self.hint_names),
        }

    def import_rows(self, payload: Dict) -> List[int]:
        """Append rows produced by :meth:`export_rows`; returns the new indices.

        The inverse half of a row migration: the exporting matrix drops the
        rows with :meth:`remove_queries`, the importing matrix appends them
        here.  Column count must match (hint sets are shared cluster-wide,
        rows are what gets sharded).
        """
        values = np.asarray(payload["values"], dtype=float)
        observed = np.asarray(payload["observed"], dtype=bool)
        censored = np.asarray(payload["censored"], dtype=bool)
        timeouts = np.asarray(payload["timeouts"], dtype=float)
        names = list(payload["query_names"])
        if values.ndim != 2 or values.shape[1] != self.n_hints:
            raise MatrixError(
                f"import_rows expects rows with {self.n_hints} hints, "
                f"got shape {values.shape}"
            )
        if not (values.shape == observed.shape == censored.shape == timeouts.shape):
            raise MatrixError("import_rows payload arrays disagree on shape")
        if len(names) != values.shape[0]:
            raise MatrixError(
                f"import_rows expects {values.shape[0]} query names, got {len(names)}"
            )
        if values.shape[0] == 0:
            return []
        if self.journal is not None:
            self.journal.log_import(
                {
                    "values": values.tolist(),
                    "observed": observed.tolist(),
                    "censored": censored.tolist(),
                    "timeouts": timeouts.tolist(),
                    "query_names": names,
                }
            )
        first = self.n_queries
        self._values = np.vstack([self._values, values])
        self._observed = np.vstack([self._observed, observed])
        self._censored = np.vstack([self._censored, censored])
        self._timeouts = np.vstack([self._timeouts, timeouts])
        self.query_names.extend(names)
        self._version += 1
        return list(range(first, self.n_queries))

    def remove_queries(self, queries: Sequence[int]) -> None:
        """Drop rows in place; remaining rows shift down, preserving order.

        Callers that index rows by position (the cluster shards) must remap
        their row tables afterwards.  A matrix cannot become empty -- the
        owner should retire the whole matrix instead of removing every row.
        """
        indices = np.asarray(list(queries), dtype=np.int64)
        if indices.size == 0:
            return
        for q in indices:
            self._check_indices(int(q), 0)
        keep = np.ones(self.n_queries, dtype=bool)
        keep[indices] = False
        if not keep.any():
            raise MatrixError(
                "remove_queries cannot drop every row; retire the matrix instead"
            )
        if self.journal is not None:
            self.journal.log_remove(indices.tolist())
        self._values = self._values[keep]
        self._observed = self._observed[keep]
        self._censored = self._censored[keep]
        self._timeouts = self._timeouts[keep]
        self.query_names = [
            name for name, kept in zip(self.query_names, keep) if kept
        ]
        self._version += 1

    def invalidate(self, queries: Optional[Iterable[int]] = None) -> None:
        """Forget observations (all queries, or a subset) after a data shift."""
        if queries is None:
            targets = None
        else:
            targets = list(queries)
            for q in targets:
                self._check_indices(q, 0)
        if self.journal is not None:
            self.journal.log_invalidate(targets)
        for q in targets if targets is not None else range(self.n_queries):
            self._values[q, :] = np.inf
            self._observed[q, :] = False
            self._censored[q, :] = False
            self._timeouts[q, :] = 0.0
        self._version += 1

    # -- persistence -----------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Serialise to plain Python / numpy structures."""
        return {
            "values": self._values.copy(),
            "observed": self._observed.copy(),
            "censored": self._censored.copy(),
            "timeouts": self._timeouts.copy(),
            "query_names": list(self.query_names),
            "hint_names": list(self.hint_names),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "WorkloadMatrix":
        """Inverse of :meth:`to_dict`."""
        values = np.asarray(payload["values"], dtype=float)
        matrix = cls(
            values.shape[0],
            values.shape[1],
            query_names=payload.get("query_names"),
            hint_names=payload.get("hint_names"),
        )
        matrix._values = values.copy()
        matrix._observed = np.asarray(payload["observed"], dtype=bool).copy()
        matrix._censored = np.asarray(payload["censored"], dtype=bool).copy()
        matrix._timeouts = np.asarray(payload["timeouts"], dtype=float).copy()
        matrix._version = 1
        return matrix

    def save(self, path: str) -> None:
        """Persist to an ``.npz`` file."""
        payload = self.to_dict()
        np.savez_compressed(
            path,
            values=payload["values"],
            observed=payload["observed"],
            censored=payload["censored"],
            timeouts=payload["timeouts"],
            query_names=np.array(payload["query_names"], dtype=object),
            hint_names=np.array(payload["hint_names"], dtype=object),
        )

    @classmethod
    def load(cls, path: str) -> "WorkloadMatrix":
        """Load from an ``.npz`` file produced by :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            return cls.from_dict(
                {
                    "values": data["values"],
                    "observed": data["observed"],
                    "censored": data["censored"],
                    "timeouts": data["timeouts"],
                    "query_names": list(data["query_names"]),
                    "hint_names": list(data["hint_names"]),
                }
            )

    def copy(self) -> "WorkloadMatrix":
        """Deep copy."""
        return WorkloadMatrix.from_dict(self.to_dict())

    # -- misc ---------------------------------------------------------------------------
    def _check_indices(self, query: int, hint: int) -> None:
        if not 0 <= query < self.n_queries:
            raise MatrixError(
                f"query index {query} out of range [0, {self.n_queries})"
            )
        if not 0 <= hint < self.n_hints:
            raise MatrixError(
                f"hint index {hint} out of range [0, {self.n_hints})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadMatrix({self.n_queries}x{self.n_hints}, "
            f"observed={self.observed_fraction():.1%}, "
            f"censored={float(self._censored.mean()):.1%})"
        )
