"""A self-contained, PostgreSQL-like database substrate.

The paper measures plan latencies on PostgreSQL 16.1.  This subpackage
replaces that environment with a simulator exposing the same interface
surface LimeQO needs:

* a :class:`~repro.db.catalog.Catalog` with tables, columns, statistics and
  indexes (:mod:`repro.db.catalog`, :mod:`repro.db.datagen`),
* join-graph queries (:mod:`repro.db.query`),
* the Bao/LimeQO hint interface -- six boolean optimizer knobs yielding 49
  valid hint sets (:mod:`repro.db.hints`),
* a cost-based dynamic-programming plan enumerator honouring those knobs
  (:mod:`repro.db.optimizer`) over physical operators
  (:mod:`repro.db.operators`) with a cardinality estimator that makes
  realistic mistakes (:mod:`repro.db.cardinality`),
* a latency model and a simulated execution engine with timeout support
  (:mod:`repro.db.cost_model`, :mod:`repro.db.executor`).
"""

from .catalog import Catalog, Column, Table
from .cardinality import CardinalityEstimator
from .cost_model import CostModel, LatencyModel
from .executor import ExecutionResult, SimulatedExecutor
from .hints import HintSet, all_hint_sets, default_hint_set
from .operators import JoinOperator, PlanNode, ScanOperator
from .optimizer import PlanEnumerator
from .query import JoinEdge, Predicate, Query, QueryGenerator

__all__ = [
    "Catalog",
    "Column",
    "Table",
    "CardinalityEstimator",
    "CostModel",
    "LatencyModel",
    "ExecutionResult",
    "SimulatedExecutor",
    "HintSet",
    "all_hint_sets",
    "default_hint_set",
    "JoinOperator",
    "ScanOperator",
    "PlanNode",
    "PlanEnumerator",
    "Query",
    "QueryGenerator",
    "JoinEdge",
    "Predicate",
]
