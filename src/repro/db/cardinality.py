"""Cardinality estimation -- both the "truth" and the optimizer's estimate.

Two cardinality models are needed to make hint steering meaningful:

* the *true* model, used by the latency simulator, derived from catalog
  statistics plus hidden per-query correlation factors that the optimizer
  does not know about, and
* the *estimated* model, used by the plan enumerator, which applies the
  textbook independence assumptions and therefore makes multiplicative
  errors that compound with the number of joins -- exactly the behaviour
  documented for PostgreSQL on JOB (Leis et al., "How Good Are Query
  Optimizers, Really?").
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Tuple

import numpy as np

from .catalog import Catalog
from .query import Query


def _stable_seed(*parts: str) -> int:
    """Derive a reproducible 32-bit seed from string parts."""
    digest = hashlib.sha256("::".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


class CardinalityEstimator:
    """Computes true and estimated cardinalities for plan sub-expressions.

    Parameters
    ----------
    catalog:
        Schema statistics.
    error_growth:
        Standard deviation (in natural-log space) of the optimizer's
        estimation error *per join*; errors compound multiplicatively.
    correlation_strength:
        Spread of the hidden per-edge correlation factors in the true model.
    """

    def __init__(
        self,
        catalog: Catalog,
        error_growth: float = 0.6,
        correlation_strength: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.catalog = catalog
        self.error_growth = float(error_growth)
        self.correlation_strength = float(correlation_strength)
        self.seed = int(seed)
        self._true_cache: Dict[Tuple[str, FrozenSet[str]], float] = {}
        self._est_cache: Dict[Tuple[str, FrozenSet[str]], float] = {}

    # -- base relations --------------------------------------------------
    def base_rows(self, query: Query, alias: str) -> float:
        """True output rows of scanning ``alias`` with its filters applied."""
        table = self.catalog.table(query.table_for(alias))
        sel = query.filter_selectivity(alias)
        hidden = self._hidden_factor(query, frozenset([alias]))
        return max(1.0, table.row_count * sel * hidden)

    def estimated_base_rows(self, query: Query, alias: str) -> float:
        """The optimizer's estimate for the same scan (no hidden factor)."""
        table = self.catalog.table(query.table_for(alias))
        sel = query.filter_selectivity(alias)
        return max(1.0, table.row_count * sel)

    # -- joins ------------------------------------------------------------
    def join_rows(
        self, query: Query, left_aliases: FrozenSet[str], right_aliases: FrozenSet[str]
    ) -> float:
        """True output rows of joining two disjoint alias sets."""
        return self._rows(query, left_aliases, right_aliases, true=True)

    def estimated_join_rows(
        self, query: Query, left_aliases: FrozenSet[str], right_aliases: FrozenSet[str]
    ) -> float:
        """The optimizer's estimate for the same join."""
        return self._rows(query, left_aliases, right_aliases, true=False)

    def subset_rows(self, query: Query, aliases: FrozenSet[str], true: bool = True) -> float:
        """Rows produced by the (canonical left-deep) join of ``aliases``."""
        aliases = frozenset(aliases)
        cache = self._true_cache if true else self._est_cache
        key = (query.name, aliases)
        if key in cache:
            return cache[key]
        ordered = sorted(aliases)
        if len(ordered) == 1:
            rows = self.base_rows(query, ordered[0]) if true else (
                self.estimated_base_rows(query, ordered[0])
            )
        else:
            left = frozenset(ordered[:-1])
            right = frozenset(ordered[-1:])
            rows = self._rows(query, left, right, true=true)
        cache[key] = rows
        return rows

    # -- internals --------------------------------------------------------
    def _rows(
        self,
        query: Query,
        left_aliases: FrozenSet[str],
        right_aliases: FrozenSet[str],
        true: bool,
    ) -> float:
        left_rows = self.subset_rows(query, left_aliases, true=true)
        right_rows = self.subset_rows(query, right_aliases, true=true)
        edges = query.joins_between(sorted(left_aliases), sorted(right_aliases))
        if not edges:
            # Cartesian product (possible when a hint forces a bad order).
            return left_rows * right_rows
        selectivity = 1.0
        for edge in edges:
            selectivity *= self._edge_selectivity(query, edge)
        rows = left_rows * right_rows * selectivity
        if true:
            combined = frozenset(left_aliases | right_aliases)
            rows *= self._hidden_factor(query, combined)
        return max(1.0, rows)

    def _edge_selectivity(self, query: Query, edge) -> float:
        """Textbook equi-join selectivity: 1 / max(ndv_left, ndv_right)."""
        left_table = self.catalog.table(query.table_for(edge.left_alias))
        right_table = self.catalog.table(query.table_for(edge.right_alias))
        ndv_left = left_table.column(edge.left_column).distinct_values if (
            edge.left_column in left_table.columns
        ) else left_table.row_count
        ndv_right = right_table.column(edge.right_column).distinct_values if (
            edge.right_column in right_table.columns
        ) else right_table.row_count
        return 1.0 / max(1.0, float(max(ndv_left, ndv_right)))

    def _hidden_factor(self, query: Query, aliases: FrozenSet[str]) -> float:
        """Hidden correlation multiplier the optimizer cannot see.

        Deterministic per (query, alias subset) so repeated calls agree; the
        spread grows mildly with the subset size, which makes the optimizer's
        errors compound with the number of joins.
        """
        if self.correlation_strength <= 0:
            return 1.0
        key = _stable_seed(
            str(self.seed), query.name, ",".join(sorted(aliases)), "hidden"
        )
        rng = np.random.default_rng(key)
        sigma = self.correlation_strength * (0.2 + 0.1 * len(aliases))
        return float(np.exp(rng.normal(0.0, sigma)))

    def estimation_error(self, query: Query, aliases: FrozenSet[str]) -> float:
        """Ratio true/estimated rows for a sub-expression (diagnostics)."""
        true_rows = self.subset_rows(query, aliases, true=True)
        est_rows = self.subset_rows(query, aliases, true=False)
        return true_rows / max(1.0, est_rows)
