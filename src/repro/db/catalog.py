"""Schema catalog: tables, columns, statistics, and indexes.

The catalog plays the role of PostgreSQL's ``pg_class`` / ``pg_statistic``:
it records row counts, per-column number-of-distinct-values, null fractions
and value ranges, and which columns carry indexes.  Both the cardinality
estimator and the cost model read from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import CatalogError

# Approximate width in bytes per logical data type; used for page-count
# estimates in the cost model.
_TYPE_WIDTHS = {
    "int": 4,
    "bigint": 8,
    "float": 8,
    "text": 32,
    "date": 8,
    "bool": 1,
}

PAGE_SIZE_BYTES = 8192


@dataclass(frozen=True)
class Column:
    """A column with the statistics the optimizer needs."""

    name: str
    dtype: str = "int"
    distinct_values: int = 1000
    null_fraction: float = 0.0
    min_value: float = 0.0
    max_value: float = 1.0
    indexed: bool = False

    def __post_init__(self) -> None:
        if self.dtype not in _TYPE_WIDTHS:
            raise CatalogError(
                f"unknown dtype {self.dtype!r}; expected one of {sorted(_TYPE_WIDTHS)}"
            )
        if self.distinct_values < 1:
            raise CatalogError(
                f"column {self.name!r}: distinct_values must be >= 1"
            )
        if not 0.0 <= self.null_fraction <= 1.0:
            raise CatalogError(
                f"column {self.name!r}: null_fraction must be in [0, 1]"
            )

    @property
    def width_bytes(self) -> int:
        """Storage width of a single value of this column."""
        return _TYPE_WIDTHS[self.dtype]


@dataclass
class Table:
    """A base relation with row count, columns and indexes."""

    name: str
    row_count: int
    columns: Dict[str, Column] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise CatalogError(f"table {self.name!r}: row_count must be >= 0")

    def add_column(self, column: Column) -> None:
        """Register ``column``; raises on duplicate names."""
        if column.name in self.columns:
            raise CatalogError(
                f"table {self.name!r} already has a column {column.name!r}"
            )
        self.columns[column.name] = column

    def column(self, name: str) -> Column:
        """Return the named column or raise :class:`CatalogError`."""
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_index(self, column_name: str) -> bool:
        """True when ``column_name`` exists and carries an index."""
        col = self.columns.get(column_name)
        return bool(col and col.indexed)

    @property
    def row_width_bytes(self) -> int:
        """Total width of one row (sum of column widths)."""
        return sum(c.width_bytes for c in self.columns.values()) or 4

    @property
    def page_count(self) -> int:
        """Number of heap pages the table occupies."""
        rows_per_page = max(1, PAGE_SIZE_BYTES // max(1, self.row_width_bytes))
        return max(1, -(-self.row_count // rows_per_page))

    def indexed_columns(self) -> List[str]:
        """Names of indexed columns, in insertion order."""
        return [c.name for c in self.columns.values() if c.indexed]


@dataclass
class ForeignKey:
    """A referential link used by the query generator to build join graphs."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


class Catalog:
    """A collection of tables plus foreign-key relationships."""

    def __init__(self, name: str = "catalog") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._foreign_keys: List[ForeignKey] = []

    # -- tables ---------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register ``table``; raises on duplicate names."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Return the named table or raise :class:`CatalogError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True when the catalog contains ``name``."""
        return name in self._tables

    def tables(self) -> List[Table]:
        """All tables in insertion order."""
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        """Names of all tables in insertion order."""
        return list(self._tables.keys())

    # -- foreign keys ---------------------------------------------------
    def add_foreign_key(
        self,
        child_table: str,
        child_column: str,
        parent_table: str,
        parent_column: str,
    ) -> None:
        """Register a foreign key; both endpoints must exist."""
        for tbl, col in ((child_table, child_column), (parent_table, parent_column)):
            self.table(tbl).column(col)
        self._foreign_keys.append(
            ForeignKey(child_table, child_column, parent_table, parent_column)
        )

    def foreign_keys(self) -> List[ForeignKey]:
        """All registered foreign keys."""
        return list(self._foreign_keys)

    def joinable_pairs(self) -> List[Tuple[str, str, str, str]]:
        """(child_table, child_column, parent_table, parent_column) tuples."""
        return [
            (fk.child_table, fk.child_column, fk.parent_table, fk.parent_column)
            for fk in self._foreign_keys
        ]

    def neighbors(self, table_name: str) -> List[str]:
        """Tables connected to ``table_name`` by a foreign key (either side)."""
        out = []
        for fk in self._foreign_keys:
            if fk.child_table == table_name:
                out.append(fk.parent_table)
            elif fk.parent_table == table_name:
                out.append(fk.child_table)
        return out

    # -- summary --------------------------------------------------------
    def total_rows(self) -> int:
        """Sum of row counts across all tables."""
        return sum(t.row_count for t in self._tables.values())

    def size_bytes(self) -> int:
        """Approximate on-disk size of the whole catalog."""
        return sum(t.page_count * PAGE_SIZE_BYTES for t in self._tables.values())

    def describe(self) -> str:
        """Human-readable multi-line summary of the catalog."""
        lines = [f"Catalog {self.name!r}: {len(self._tables)} tables"]
        for table in self._tables.values():
            lines.append(
                f"  {table.name}: {table.row_count} rows, "
                f"{len(table.columns)} columns, "
                f"indexes on {table.indexed_columns() or 'none'}"
            )
        return "\n".join(lines)


def build_catalog(
    tables: Iterable[Table], foreign_keys: Optional[Iterable[ForeignKey]] = None,
    name: str = "catalog",
) -> Catalog:
    """Convenience constructor used by the schema templates."""
    catalog = Catalog(name=name)
    for table in tables:
        catalog.add_table(table)
    for fk in foreign_keys or ():
        catalog.add_foreign_key(
            fk.child_table, fk.child_column, fk.parent_table, fk.parent_column
        )
    return catalog
