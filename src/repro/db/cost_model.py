"""Operator cost formulas and the latency model.

The :class:`CostModel` mirrors PostgreSQL's textbook cost constants
(``seq_page_cost``, ``random_page_cost``, ``cpu_tuple_cost``, ...) and is
used twice:

* with *estimated* cardinalities by the plan enumerator (what the optimizer
  believes), and
* with *true* cardinalities by the :class:`LatencyModel`, which converts
  true cost into simulated wall-clock seconds with reproducible noise.

Hints matter precisely because those two views disagree: a plan that looks
cheap under estimated cardinalities can be slow under the true ones, and a
hint that forbids the offending operator repairs it.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ExecutionError
from .catalog import Catalog, Table
from .operators import JoinOperator, PlanNode, ScanOperator
from .query import Query


def _stable_seed(*parts: str) -> int:
    digest = hashlib.sha256("::".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class CostConstants:
    """PostgreSQL-style cost constants (defaults match postgresql.conf)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    hash_mem_penalty: float = 1.0
    sort_mem_penalty: float = 1.0


class CostModel:
    """Per-operator cost formulas parameterised by :class:`CostConstants`."""

    def __init__(self, catalog: Catalog, constants: Optional[CostConstants] = None) -> None:
        self.catalog = catalog
        self.constants = constants or CostConstants()

    # -- scans -----------------------------------------------------------
    def scan_cost(
        self,
        operator: str,
        table: Table,
        output_rows: float,
        selectivity: float,
    ) -> float:
        """Cost of scanning ``table`` producing ``output_rows`` rows."""
        c = self.constants
        rows = max(1.0, float(table.row_count))
        pages = max(1.0, float(table.page_count))
        output_rows = max(1.0, float(output_rows))
        if operator == ScanOperator.SEQ_SCAN.value:
            return pages * c.seq_page_cost + rows * c.cpu_tuple_cost
        if operator == ScanOperator.INDEX_SCAN.value:
            # Random heap fetches for the qualifying fraction of pages plus
            # index traversal CPU.
            fetched_pages = max(1.0, pages * min(1.0, selectivity * 2.0))
            index_cpu = output_rows * c.cpu_index_tuple_cost
            heap_cpu = output_rows * c.cpu_tuple_cost
            return fetched_pages * c.random_page_cost + index_cpu + heap_cpu + 25.0
        if operator == ScanOperator.INDEX_ONLY_SCAN.value:
            index_pages = max(1.0, pages * 0.15 * min(1.0, selectivity * 2.0))
            return (
                index_pages * c.random_page_cost
                + output_rows * c.cpu_index_tuple_cost
                + 25.0
            )
        raise ExecutionError(f"unknown scan operator {operator!r}")

    # -- joins -----------------------------------------------------------
    def join_cost(
        self,
        operator: str,
        outer_rows: float,
        inner_rows: float,
        output_rows: float,
    ) -> float:
        """Cost of joining two inputs producing ``output_rows`` rows."""
        c = self.constants
        outer = max(1.0, float(outer_rows))
        inner = max(1.0, float(inner_rows))
        out = max(1.0, float(output_rows))
        if operator == JoinOperator.HASH_JOIN.value:
            build = inner * (c.cpu_tuple_cost + c.cpu_operator_cost) * c.hash_mem_penalty
            probe = outer * (c.cpu_tuple_cost + 2.0 * c.cpu_operator_cost)
            return build + probe + out * c.cpu_tuple_cost
        if operator == JoinOperator.MERGE_JOIN.value:
            sort_cost = 0.0
            for rows in (outer, inner):
                sort_cost += (
                    rows * math.log2(rows + 2.0) * c.cpu_operator_cost * c.sort_mem_penalty
                )
            merge = (outer + inner) * c.cpu_tuple_cost
            return sort_cost + merge + out * c.cpu_tuple_cost
        if operator == JoinOperator.NESTED_LOOP.value:
            # Inner side re-scanned per outer tuple (no materialisation), so
            # this blows up when the outer cardinality is underestimated --
            # the classic JOB failure mode the hints exist to fix.
            rescan = outer * inner * c.cpu_operator_cost * 0.1
            return rescan + outer * c.cpu_tuple_cost + out * c.cpu_tuple_cost
        raise ExecutionError(f"unknown join operator {operator!r}")

    def plan_cost(self, plan: PlanNode) -> float:
        """Sum of per-node estimated costs already annotated on the plan."""
        return sum(node.estimated_cost for node in plan.iter_nodes())


@dataclass(frozen=True)
class MachineProfile:
    """Converts abstract cost units to wall-clock seconds."""

    seconds_per_cost_unit: float = 2.5e-6
    startup_seconds: float = 0.02
    noise_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.seconds_per_cost_unit <= 0:
            raise ExecutionError("seconds_per_cost_unit must be > 0")
        if self.startup_seconds < 0:
            raise ExecutionError("startup_seconds must be >= 0")
        if self.noise_sigma < 0:
            raise ExecutionError("noise_sigma must be >= 0")


class LatencyModel:
    """Maps a plan (with *true* costs) to simulated execution latency.

    Latency is deterministic for a given (query, plan signature, run index)
    so the paper's "median of five runs" protocol can be simulated exactly.
    ETL-style queries receive a large write-bound component that no hint can
    remove (Section 5.1's ETL experiment).
    """

    def __init__(
        self,
        cost_model: CostModel,
        profile: Optional[MachineProfile] = None,
        seed: int = 0,
    ) -> None:
        self.cost_model = cost_model
        self.profile = profile or MachineProfile()
        self.seed = int(seed)

    def true_plan_cost(self, plan: PlanNode) -> float:
        """Sum of per-node *true* costs annotated on the plan."""
        return sum(node.true_cost for node in plan.iter_nodes())

    def latency_seconds(
        self, query: Query, plan: PlanNode, run_index: int = 0
    ) -> float:
        """Simulated latency of executing ``plan`` for ``query``."""
        base_cost = self.true_plan_cost(plan)
        if base_cost <= 0:
            raise ExecutionError(
                "plan has no true costs annotated; run the enumerator first"
            )
        seconds = (
            self.profile.startup_seconds
            + base_cost * self.profile.seconds_per_cost_unit
        )
        if query.is_etl:
            # Write-bound tail: dominated by dumping the result to disk.
            result_rows = max(plan.true_rows, plan.estimated_rows, 1.0)
            seconds += 1e-4 * result_rows + 60.0
        noise = self._noise(query, plan, run_index)
        return float(seconds * noise)

    def median_latency(
        self, query: Query, plan: PlanNode, runs: int = 5
    ) -> float:
        """Median of ``runs`` simulated executions (paper's protocol)."""
        samples = [self.latency_seconds(query, plan, r) for r in range(runs)]
        return float(np.median(samples))

    def _noise(self, query: Query, plan: PlanNode, run_index: int) -> float:
        if self.profile.noise_sigma <= 0:
            return 1.0
        key = _stable_seed(
            str(self.seed), query.name, str(hash(plan.signature()) & 0xFFFFFFFF),
            str(run_index),
        )
        rng = np.random.default_rng(key)
        return float(np.exp(rng.normal(0.0, self.profile.noise_sigma)))
