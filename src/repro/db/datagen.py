"""Synthetic schema generation.

The paper evaluates on four datasets (IMDb for JOB/CEB, StackExchange for
Stack, and DSB).  We cannot ship those datasets, so this module builds
schema *templates* whose shape (number of tables, row-count skew, indexing
density, foreign-key topology) mimics each dataset.  Downstream code only
consumes catalog statistics, so a statistically similar schema preserves the
behaviour that matters: plans differ across hints and latencies have a
low-rank structure across the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import CatalogError
from .catalog import Catalog, Column, Table


@dataclass(frozen=True)
class SchemaTemplate:
    """Parameters of a synthetic schema family."""

    name: str
    num_tables: int
    min_rows: int
    max_rows: int
    columns_per_table: int = 6
    index_probability: float = 0.5
    fk_density: float = 1.3
    row_skew: float = 1.5

    def __post_init__(self) -> None:
        if self.num_tables < 2:
            raise CatalogError("a schema template needs at least 2 tables")
        if self.min_rows < 1 or self.max_rows < self.min_rows:
            raise CatalogError("invalid row-count range")
        if self.columns_per_table < 2:
            raise CatalogError("need at least 2 columns per table")


# Templates loosely shaped after the paper's datasets (Table 1): IMDb has a
# hub-and-spoke schema around title/cast_info; Stack has a few very large
# tables; DSB is a snowflake with large fact tables and small dimensions.
IMDB_TEMPLATE = SchemaTemplate(
    name="imdb", num_tables=21, min_rows=5_000, max_rows=36_000_000,
    columns_per_table=6, index_probability=0.6, fk_density=1.4, row_skew=1.8,
)
STACK_TEMPLATE = SchemaTemplate(
    name="stack", num_tables=10, min_rows=50_000, max_rows=18_000_000,
    columns_per_table=8, index_probability=0.5, fk_density=1.2, row_skew=1.3,
)
DSB_TEMPLATE = SchemaTemplate(
    name="dsb", num_tables=24, min_rows=1_000, max_rows=288_000_000,
    columns_per_table=10, index_probability=0.4, fk_density=1.5, row_skew=2.2,
)
TOY_TEMPLATE = SchemaTemplate(
    name="toy", num_tables=6, min_rows=1_000, max_rows=1_000_000,
    columns_per_table=4, index_probability=0.5, fk_density=1.2, row_skew=1.5,
)

TEMPLATES: Dict[str, SchemaTemplate] = {
    t.name: t for t in (IMDB_TEMPLATE, STACK_TEMPLATE, DSB_TEMPLATE, TOY_TEMPLATE)
}


class SchemaGenerator:
    """Generates a random but reproducible :class:`Catalog` from a template."""

    def __init__(self, template: SchemaTemplate, seed: int = 0) -> None:
        self.template = template
        self._rng = np.random.default_rng(seed)

    def generate(self) -> Catalog:
        """Build the catalog: tables, columns, indexes and foreign keys."""
        catalog = Catalog(name=self.template.name)
        row_counts = self._sample_row_counts()
        for i, rows in enumerate(row_counts):
            catalog.add_table(self._make_table(f"{self.template.name}_t{i}", rows))
        self._wire_foreign_keys(catalog)
        return catalog

    # -- internals ------------------------------------------------------
    def _sample_row_counts(self) -> List[int]:
        """Zipf-ish row counts between min_rows and max_rows."""
        t = self.template
        n = t.num_tables
        # Rank-based power law: a handful of very large tables, many small.
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-t.row_skew)
        weights = (weights - weights.min()) / (weights.max() - weights.min() + 1e-12)
        log_min, log_max = np.log(t.min_rows), np.log(t.max_rows)
        log_rows = log_min + weights * (log_max - log_min)
        rows = np.exp(log_rows)
        # Randomise which logical table gets which size, with mild jitter.
        self._rng.shuffle(rows)
        jitter = self._rng.uniform(0.8, 1.2, size=n)
        return [int(max(t.min_rows, r * j)) for r, j in zip(rows, jitter)]

    def _make_table(self, name: str, rows: int) -> Table:
        t = self.template
        table = Table(name=name, row_count=rows)
        table.add_column(
            Column(name="id", dtype="int", distinct_values=max(1, rows),
                   min_value=0.0, max_value=float(rows), indexed=True)
        )
        dtypes = ["int", "bigint", "float", "text", "date", "bool"]
        for c in range(1, t.columns_per_table):
            dtype = dtypes[c % len(dtypes)]
            ndv = int(max(1, rows * float(self._rng.uniform(0.001, 0.5))))
            indexed = bool(self._rng.random() < t.index_probability)
            table.add_column(
                Column(
                    name=f"c{c}",
                    dtype=dtype,
                    distinct_values=ndv,
                    null_fraction=float(self._rng.uniform(0.0, 0.2)),
                    min_value=0.0,
                    max_value=float(ndv),
                    indexed=indexed,
                )
            )
        return table

    def _wire_foreign_keys(self, catalog: Catalog) -> None:
        """Connect tables into a single join graph (spanning tree + extras)."""
        names = catalog.table_names()
        # Spanning tree guarantees connectivity; the hub is the largest table,
        # mirroring IMDb's cast_info / Stack's posts fact tables.
        sizes = {n: catalog.table(n).row_count for n in names}
        hub = max(names, key=lambda n: sizes[n])
        others = [n for n in names if n != hub]
        for name in others:
            self._add_fk(catalog, child=hub, parent=name)
        # Extra edges up to fk_density * num_tables total.
        target_edges = int(self.template.fk_density * len(names))
        attempts = 0
        while len(catalog.foreign_keys()) < target_edges and attempts < 10 * target_edges:
            attempts += 1
            child, parent = self._rng.choice(names, size=2, replace=False)
            if child == parent:
                continue
            self._add_fk(catalog, child=str(child), parent=str(parent))

    def _add_fk(self, catalog: Catalog, child: str, parent: str) -> None:
        child_table = catalog.table(child)
        non_id = [c for c in child_table.columns if c != "id"]
        child_col = str(self._rng.choice(non_id)) if non_id else "id"
        catalog.add_foreign_key(child, child_col, parent, "id")


def make_catalog(template_name: str, seed: int = 0) -> Catalog:
    """Build a catalog from a named template (``imdb``/``stack``/``dsb``/``toy``)."""
    try:
        template = TEMPLATES[template_name]
    except KeyError:
        raise CatalogError(
            f"unknown schema template {template_name!r}; "
            f"expected one of {sorted(TEMPLATES)}"
        ) from None
    return SchemaGenerator(template, seed=seed).generate()
