"""Simulated execution engine with timeout support.

Execution is the only thing LimeQO charges time for, so the executor's
contract is small: run a (query, plan) pair, return either the observed
latency or a *censored* observation (the plan was cancelled at the timeout,
so only a lower bound on its latency is known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ExecutionError
from .cost_model import LatencyModel
from .hints import HintSet
from .operators import PlanNode
from .optimizer import PlanEnumerator
from .query import Query


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated plan execution.

    Attributes
    ----------
    latency:
        Observed latency when the plan finished, otherwise the (unknown to
        the caller) true latency; use :attr:`charged_time` for accounting.
    timed_out:
        True when the plan was cancelled at ``timeout``.
    charged_time:
        Offline exploration time consumed: the full latency for completed
        plans, the timeout for cancelled plans.
    """

    latency: float
    timed_out: bool
    charged_time: float

    @property
    def observed_value(self) -> float:
        """The value that goes into the workload matrix."""
        return self.charged_time if self.timed_out else self.latency


class SimulatedExecutor:
    """Executes plans against the latency model, honouring timeouts."""

    def __init__(self, latency_model: LatencyModel, runs_per_measurement: int = 1) -> None:
        if runs_per_measurement < 1:
            raise ExecutionError("runs_per_measurement must be >= 1")
        self.latency_model = latency_model
        self.runs_per_measurement = int(runs_per_measurement)

    def execute(
        self, query: Query, plan: PlanNode, timeout: Optional[float] = None
    ) -> ExecutionResult:
        """Run ``plan`` and return its (possibly censored) measurement."""
        if timeout is not None and timeout <= 0:
            raise ExecutionError(f"timeout must be > 0, got {timeout}")
        if self.runs_per_measurement == 1:
            latency = self.latency_model.latency_seconds(query, plan)
        else:
            latency = self.latency_model.median_latency(
                query, plan, runs=self.runs_per_measurement
            )
        if timeout is not None and latency >= timeout:
            return ExecutionResult(latency=latency, timed_out=True, charged_time=timeout)
        return ExecutionResult(latency=latency, timed_out=False, charged_time=latency)


class HintedExecutor:
    """Bundles the planner and the executor behind a hint-level interface.

    This is the surface LimeQO's offline path talks to: "run query ``q``
    under hint ``h`` with timeout ``t``" -- the same contract a real
    deployment has against PostgreSQL with ``SET enable_... = off``.
    """

    def __init__(self, enumerator: PlanEnumerator, executor: SimulatedExecutor) -> None:
        self.enumerator = enumerator
        self.executor = executor

    def plan(self, query: Query, hint_set: HintSet) -> PlanNode:
        """Plan ``query`` under ``hint_set``."""
        return self.enumerator.optimize(query, hint_set)

    def execute_with_hint(
        self, query: Query, hint_set: HintSet, timeout: Optional[float] = None
    ) -> ExecutionResult:
        """Plan and execute ``query`` under ``hint_set``."""
        plan = self.plan(query, hint_set)
        return self.executor.execute(query, plan, timeout=timeout)
