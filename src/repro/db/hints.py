"""The hint (optimizer steering) interface.

LimeQO uses the same 49 hint sets as Bao: six boolean PostgreSQL
configuration parameters (``enable_hashjoin``, ``enable_mergejoin``,
``enable_nestloop``, ``enable_indexscan``, ``enable_seqscan``,
``enable_indexonlyscan``).  Of the 64 on/off combinations, only those with
at least one join operator and at least one scan operator enabled are
valid, yielding 7 x 7 = 49 hint sets.  The all-enabled configuration is the
DBMS default and is placed first (column 0 of the workload matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List

from ..errors import HintError

JOIN_KNOBS = ("enable_hashjoin", "enable_mergejoin", "enable_nestloop")
SCAN_KNOBS = ("enable_indexscan", "enable_seqscan", "enable_indexonlyscan")
ALL_KNOBS = JOIN_KNOBS + SCAN_KNOBS


@dataclass(frozen=True)
class HintSet:
    """A single optimizer configuration ("hint set" in Bao's terminology)."""

    enable_hashjoin: bool = True
    enable_mergejoin: bool = True
    enable_nestloop: bool = True
    enable_indexscan: bool = True
    enable_seqscan: bool = True
    enable_indexonlyscan: bool = True

    def __post_init__(self) -> None:
        if not (self.enable_hashjoin or self.enable_mergejoin or self.enable_nestloop):
            raise HintError("at least one join operator must be enabled")
        if not (self.enable_indexscan or self.enable_seqscan or self.enable_indexonlyscan):
            raise HintError("at least one scan operator must be enabled")

    @property
    def is_default(self) -> bool:
        """True when every knob is enabled (PostgreSQL's default plan)."""
        return all(getattr(self, knob) for knob in ALL_KNOBS)

    def allowed_join_operators(self) -> List[str]:
        """Names of the join operators this hint set permits."""
        allowed = []
        if self.enable_hashjoin:
            allowed.append("hash_join")
        if self.enable_mergejoin:
            allowed.append("merge_join")
        if self.enable_nestloop:
            allowed.append("nested_loop")
        return allowed

    def allowed_scan_operators(self) -> List[str]:
        """Names of the scan operators this hint set permits."""
        allowed = []
        if self.enable_seqscan:
            allowed.append("seq_scan")
        if self.enable_indexscan:
            allowed.append("index_scan")
        if self.enable_indexonlyscan:
            allowed.append("index_only_scan")
        return allowed

    def as_gucs(self) -> dict:
        """Render this hint set as a PostgreSQL ``SET`` parameter mapping."""
        return {
            knob: ("on" if getattr(self, knob) else "off") for knob in ALL_KNOBS
        }

    def as_tuple(self) -> tuple:
        """Canonical boolean tuple in :data:`ALL_KNOBS` order."""
        return tuple(getattr(self, knob) for knob in ALL_KNOBS)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        disabled = [knob for knob in ALL_KNOBS if not getattr(self, knob)]
        if not disabled:
            return "HintSet(default)"
        return "HintSet(disable: " + ", ".join(disabled) + ")"


def _valid_combinations() -> Iterator[HintSet]:
    """Yield the 49 valid hint sets, default first, in a stable order."""
    yield HintSet()
    join_combos = [c for c in product([True, False], repeat=3) if any(c)]
    scan_combos = [c for c in product([True, False], repeat=3) if any(c)]
    for joins in join_combos:
        for scans in scan_combos:
            hint = HintSet(
                enable_hashjoin=joins[0],
                enable_mergejoin=joins[1],
                enable_nestloop=joins[2],
                enable_indexscan=scans[0],
                enable_seqscan=scans[1],
                enable_indexonlyscan=scans[2],
            )
            if hint.is_default:
                continue
            yield hint


def all_hint_sets() -> List[HintSet]:
    """Return the 49 valid hint sets; index 0 is the DBMS default."""
    return list(_valid_combinations())


def default_hint_set() -> HintSet:
    """Return the all-enabled (default) hint set."""
    return HintSet()


def hint_set_by_index(index: int) -> HintSet:
    """Return hint set number ``index`` in the canonical ordering."""
    hints = all_hint_sets()
    if not 0 <= index < len(hints):
        raise HintError(f"hint index {index} out of range [0, {len(hints)})")
    return hints[index]


NUM_HINT_SETS = len(all_hint_sets())
