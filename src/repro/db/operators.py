"""Physical plan operators and plan-tree nodes.

Plans are binary trees of physical operators, the same shape PostgreSQL
produces for the select-project-join queries in JOB/CEB/Stack/DSB: leaf
nodes are scans over one base relation, internal nodes are joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, List, Optional, Tuple

from ..errors import PlanError


class ScanOperator(str, Enum):
    """Leaf (access-path) operators."""

    SEQ_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"
    INDEX_ONLY_SCAN = "index_only_scan"


class JoinOperator(str, Enum):
    """Internal (join) operators."""

    HASH_JOIN = "hash_join"
    MERGE_JOIN = "merge_join"
    NESTED_LOOP = "nested_loop"


SCAN_OPERATOR_NAMES = tuple(op.value for op in ScanOperator)
JOIN_OPERATOR_NAMES = tuple(op.value for op in JoinOperator)
ALL_OPERATOR_NAMES = SCAN_OPERATOR_NAMES + JOIN_OPERATOR_NAMES


@dataclass
class PlanNode:
    """One node of a physical query plan.

    Attributes
    ----------
    operator:
        Operator name; one of :data:`ALL_OPERATOR_NAMES`.
    children:
        Empty for scans, exactly two nodes for joins.
    alias / table:
        Set on scan nodes only -- the relation being scanned.
    estimated_rows / estimated_cost:
        What the (mistake-prone) optimizer believed.
    true_rows / true_cost:
        Ground-truth values filled in by the latency model.
    """

    operator: str
    children: List["PlanNode"] = field(default_factory=list)
    alias: Optional[str] = None
    table: Optional[str] = None
    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    true_rows: float = 0.0
    true_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.operator not in ALL_OPERATOR_NAMES:
            raise PlanError(f"unknown operator {self.operator!r}")
        if self.is_scan:
            if self.children:
                raise PlanError("scan nodes must be leaves")
            if self.alias is None or self.table is None:
                raise PlanError("scan nodes need an alias and a table")
        else:
            if len(self.children) != 2:
                raise PlanError(
                    f"join node {self.operator!r} needs exactly 2 children, "
                    f"got {len(self.children)}"
                )

    # -- classification -------------------------------------------------
    @property
    def is_scan(self) -> bool:
        """True for leaf (scan) nodes."""
        return self.operator in SCAN_OPERATOR_NAMES

    @property
    def is_join(self) -> bool:
        """True for internal (join) nodes."""
        return self.operator in JOIN_OPERATOR_NAMES

    # -- traversal ------------------------------------------------------
    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> List["PlanNode"]:
        """All scan nodes below (and including) this node."""
        return [node for node in self.iter_nodes() if node.is_scan]

    def aliases(self) -> Tuple[str, ...]:
        """Aliases covered by this subtree, in leaf order."""
        return tuple(leaf.alias for leaf in self.leaves())

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the subtree."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def depth(self) -> int:
        """Height of the subtree (1 for a single scan)."""
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    def operator_counts(self) -> dict:
        """Mapping operator name -> number of occurrences in the subtree."""
        counts: dict = {}
        for node in self.iter_nodes():
            counts[node.operator] = counts.get(node.operator, 0) + 1
        return counts

    # -- rendering ------------------------------------------------------
    def to_text(self, indent: int = 0) -> str:
        """EXPLAIN-like indented rendering of the plan."""
        pad = "  " * indent
        if self.is_scan:
            head = (
                f"{pad}{self.operator} on {self.table} {self.alias} "
                f"(rows={self.estimated_rows:.0f} cost={self.estimated_cost:.1f})"
            )
            return head
        head = (
            f"{pad}{self.operator} "
            f"(rows={self.estimated_rows:.0f} cost={self.estimated_cost:.1f})"
        )
        parts = [head] + [child.to_text(indent + 1) for child in self.children]
        return "\n".join(parts)

    def signature(self) -> Tuple:
        """Structural signature (operator + children signatures + alias)."""
        return (
            self.operator,
            self.alias,
            tuple(child.signature() for child in self.children),
        )


def scan_node(
    operator: ScanOperator,
    alias: str,
    table: str,
    estimated_rows: float = 0.0,
    estimated_cost: float = 0.0,
) -> PlanNode:
    """Convenience constructor for a scan leaf."""
    return PlanNode(
        operator=operator.value,
        alias=alias,
        table=table,
        estimated_rows=estimated_rows,
        estimated_cost=estimated_cost,
    )


def join_node(
    operator: JoinOperator,
    left: PlanNode,
    right: PlanNode,
    estimated_rows: float = 0.0,
    estimated_cost: float = 0.0,
) -> PlanNode:
    """Convenience constructor for a binary join node."""
    return PlanNode(
        operator=operator.value,
        children=[left, right],
        estimated_rows=estimated_rows,
        estimated_cost=estimated_cost,
    )
