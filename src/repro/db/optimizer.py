"""A cost-based plan enumerator that honours hint sets.

The enumerator plays the role of PostgreSQL's planner: given a query and a
hint set (which operators are allowed), it picks an access path per base
relation and a join order/operator assignment minimising *estimated* cost.
For up to ``dp_threshold`` relations it runs left-deep dynamic programming
over alias subsets (Selinger-style); larger queries fall back to a greedy
heuristic, mirroring PostgreSQL's switch to GEQO.

The returned plans are annotated with both estimated and true cardinalities
and costs, so the :class:`~repro.db.cost_model.LatencyModel` can simulate
execution without re-deriving anything.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import OptimizerError
from .cardinality import CardinalityEstimator
from .catalog import Catalog
from .cost_model import CostModel
from .hints import HintSet, default_hint_set
from .operators import PlanNode, ScanOperator
from .query import Query


class PlanEnumerator:
    """Hint-aware, cost-based query planner over the simulated catalog."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: Optional[CardinalityEstimator] = None,
        cost_model: Optional[CostModel] = None,
        dp_threshold: int = 9,
    ) -> None:
        self.catalog = catalog
        self.estimator = estimator or CardinalityEstimator(catalog)
        self.cost_model = cost_model or CostModel(catalog)
        self.dp_threshold = int(dp_threshold)

    # -- public API ------------------------------------------------------
    def optimize(self, query: Query, hint_set: Optional[HintSet] = None) -> PlanNode:
        """Return the cheapest plan for ``query`` under ``hint_set``."""
        hint_set = hint_set or default_hint_set()
        scans = {
            alias: self._best_scan(query, alias, hint_set)
            for alias in query.aliases
        }
        if query.num_relations == 1:
            plan = next(iter(scans.values()))
        elif query.num_relations <= self.dp_threshold:
            plan = self._dynamic_programming(query, scans, hint_set)
        else:
            plan = self._greedy(query, scans, hint_set)
        self._annotate_truth(query, plan)
        return plan

    def explain(self, query: Query, hint_set: Optional[HintSet] = None) -> str:
        """EXPLAIN-style text for the chosen plan (convenience)."""
        return self.optimize(query, hint_set).to_text()

    # -- scans -----------------------------------------------------------
    def _best_scan(self, query: Query, alias: str, hint_set: HintSet) -> PlanNode:
        table = self.catalog.table(query.table_for(alias))
        est_rows = self.estimator.estimated_base_rows(query, alias)
        selectivity = query.filter_selectivity(alias)
        candidates: List[PlanNode] = []
        allowed = hint_set.allowed_scan_operators()
        has_index = bool(table.indexed_columns())
        for op_name in allowed:
            if op_name != ScanOperator.SEQ_SCAN.value and not has_index:
                continue
            cost = self.cost_model.scan_cost(op_name, table, est_rows, selectivity)
            candidates.append(
                PlanNode(
                    operator=op_name,
                    alias=alias,
                    table=table.name,
                    estimated_rows=est_rows,
                    estimated_cost=cost,
                )
            )
        if not candidates:
            # The hint set disabled every applicable access path (e.g. only
            # index scans allowed but the table has no index).  PostgreSQL
            # falls back to a sequential scan with a huge disable_cost.
            cost = self.cost_model.scan_cost(
                ScanOperator.SEQ_SCAN.value, table, est_rows, selectivity
            )
            candidates.append(
                PlanNode(
                    operator=ScanOperator.SEQ_SCAN.value,
                    alias=alias,
                    table=table.name,
                    estimated_rows=est_rows,
                    estimated_cost=cost + 1e7,
                )
            )
        return min(candidates, key=lambda node: node.estimated_cost)

    # -- join ordering ----------------------------------------------------
    def _dynamic_programming(
        self, query: Query, scans: Dict[str, PlanNode], hint_set: HintSet
    ) -> PlanNode:
        aliases = query.aliases
        best: Dict[FrozenSet[str], Tuple[float, PlanNode]] = {}
        for alias, scan in scans.items():
            subtotal = scan.estimated_cost
            best[frozenset([alias])] = (subtotal, scan)

        full = frozenset(aliases)
        for size in range(2, len(aliases) + 1):
            for subset in self._subsets_of_size(aliases, size):
                best_entry: Optional[Tuple[float, PlanNode]] = None
                for alias in sorted(subset):
                    rest = subset - {alias}
                    if rest not in best:
                        continue
                    left_cost, left_plan = best[rest]
                    right_cost, right_plan = best[frozenset([alias])]
                    join = self._best_join(
                        query, rest, frozenset([alias]), left_plan, right_plan, hint_set
                    )
                    total = left_cost + right_cost + join.estimated_cost
                    if best_entry is None or total < best_entry[0]:
                        join_root = PlanNode(
                            operator=join.operator,
                            children=[left_plan, right_plan],
                            estimated_rows=join.estimated_rows,
                            estimated_cost=join.estimated_cost,
                        )
                        best_entry = (total, join_root)
                if best_entry is not None:
                    best[subset] = best_entry
        if full not in best:
            raise OptimizerError(
                f"query {query.name!r}: dynamic programming failed to cover all "
                "relations (disconnected join graph?)"
            )
        return best[full][1]

    def _greedy(
        self, query: Query, scans: Dict[str, PlanNode], hint_set: HintSet
    ) -> PlanNode:
        """Greedily join the pair with the cheapest next join."""
        parts: Dict[FrozenSet[str], PlanNode] = {
            frozenset([alias]): scan for alias, scan in scans.items()
        }
        while len(parts) > 1:
            best_choice = None
            keys = sorted(parts, key=lambda s: tuple(sorted(s)))
            for i, left_key in enumerate(keys):
                for right_key in keys[i + 1:]:
                    join = self._best_join(
                        query, left_key, right_key, parts[left_key], parts[right_key],
                        hint_set,
                    )
                    if best_choice is None or join.estimated_cost < best_choice[0]:
                        best_choice = (join.estimated_cost, left_key, right_key, join)
            assert best_choice is not None
            _, left_key, right_key, join = best_choice
            left_plan = parts.pop(left_key)
            right_plan = parts.pop(right_key)
            parts[frozenset(left_key | right_key)] = PlanNode(
                operator=join.operator,
                children=[left_plan, right_plan],
                estimated_rows=join.estimated_rows,
                estimated_cost=join.estimated_cost,
            )
        return next(iter(parts.values()))

    def _best_join(
        self,
        query: Query,
        left_aliases: FrozenSet[str],
        right_aliases: FrozenSet[str],
        left_plan: PlanNode,
        right_plan: PlanNode,
        hint_set: HintSet,
    ) -> PlanNode:
        est_rows = self.estimator.estimated_join_rows(query, left_aliases, right_aliases)
        has_edge = bool(query.joins_between(sorted(left_aliases), sorted(right_aliases)))
        cartesian_penalty = 1.0 if has_edge else 1e6
        best: Optional[PlanNode] = None
        for op_name in hint_set.allowed_join_operators():
            cost = self.cost_model.join_cost(
                op_name, left_plan.estimated_rows, right_plan.estimated_rows, est_rows
            ) * cartesian_penalty
            candidate = PlanNode(
                operator=op_name,
                children=[left_plan, right_plan],
                estimated_rows=est_rows,
                estimated_cost=cost,
            )
            if best is None or candidate.estimated_cost < best.estimated_cost:
                best = candidate
        if best is None:
            raise OptimizerError("hint set allows no join operators")
        return best

    @staticmethod
    def _subsets_of_size(aliases: List[str], size: int):
        from itertools import combinations

        for combo in combinations(aliases, size):
            yield frozenset(combo)

    # -- truth annotation --------------------------------------------------
    def _annotate_truth(self, query: Query, plan: PlanNode) -> None:
        """Fill ``true_rows`` / ``true_cost`` bottom-up using the true model."""
        if plan.is_scan:
            table = self.catalog.table(plan.table)
            true_rows = self.estimator.base_rows(query, plan.alias)
            selectivity = query.filter_selectivity(plan.alias)
            plan.true_rows = true_rows
            plan.true_cost = self.cost_model.scan_cost(
                plan.operator, table, true_rows, selectivity
            )
            return
        left, right = plan.children
        self._annotate_truth(query, left)
        self._annotate_truth(query, right)
        left_aliases = frozenset(left.aliases())
        right_aliases = frozenset(right.aliases())
        true_rows = self.estimator.join_rows(query, left_aliases, right_aliases)
        plan.true_rows = true_rows
        plan.true_cost = self.cost_model.join_cost(
            plan.operator, left.true_rows, right.true_rows, true_rows
        )
