"""Join-graph queries and a reproducible query generator.

A :class:`Query` is a select-project-join block: a set of base relations
(with aliases), equi-join edges between them, and per-relation filter
predicates with a known selectivity.  The generator samples connected
subgraphs of the catalog's foreign-key graph, which is how the JOB and CEB
benchmarks were constructed on IMDb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from .catalog import Catalog


@dataclass(frozen=True)
class Predicate:
    """A filter predicate on one relation with a known selectivity."""

    alias: str
    column: str
    operator: str = "="
    selectivity: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise QueryError(
                f"predicate on {self.alias}.{self.column}: selectivity must be "
                f"in (0, 1], got {self.selectivity}"
            )

    def to_sql(self) -> str:
        """Render as a SQL-ish condition string."""
        return f"{self.alias}.{self.column} {self.operator} ?"


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join between two aliased relations."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def involves(self, alias: str) -> bool:
        """True when this edge touches ``alias``."""
        return alias in (self.left_alias, self.right_alias)

    def other(self, alias: str) -> str:
        """Return the alias on the opposite side of ``alias``."""
        if alias == self.left_alias:
            return self.right_alias
        if alias == self.right_alias:
            return self.left_alias
        raise QueryError(f"alias {alias!r} is not part of this join edge")

    def to_sql(self) -> str:
        """Render as a SQL-ish join condition."""
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass
class Query:
    """A select-project-join query over a catalog."""

    name: str
    relations: Dict[str, str]
    joins: List[JoinEdge] = field(default_factory=list)
    predicates: List[Predicate] = field(default_factory=list)
    is_etl: bool = False

    def __post_init__(self) -> None:
        if not self.relations:
            raise QueryError(f"query {self.name!r} has no relations")
        aliases = set(self.relations)
        for edge in self.joins:
            if edge.left_alias not in aliases or edge.right_alias not in aliases:
                raise QueryError(
                    f"query {self.name!r}: join {edge.to_sql()} references an "
                    "unknown alias"
                )
        for pred in self.predicates:
            if pred.alias not in aliases:
                raise QueryError(
                    f"query {self.name!r}: predicate on unknown alias {pred.alias!r}"
                )

    # -- structure ------------------------------------------------------
    @property
    def aliases(self) -> List[str]:
        """Aliases in insertion order."""
        return list(self.relations.keys())

    @property
    def num_relations(self) -> int:
        """Number of base relations referenced."""
        return len(self.relations)

    def table_for(self, alias: str) -> str:
        """Return the base table behind ``alias``."""
        try:
            return self.relations[alias]
        except KeyError:
            raise QueryError(
                f"query {self.name!r} has no alias {alias!r}"
            ) from None

    def predicates_for(self, alias: str) -> List[Predicate]:
        """Filter predicates that apply to ``alias``."""
        return [p for p in self.predicates if p.alias == alias]

    def joins_between(self, aliases_a: Sequence[str], aliases_b: Sequence[str]) -> List[JoinEdge]:
        """Join edges with one endpoint in each alias set."""
        set_a, set_b = set(aliases_a), set(aliases_b)
        out = []
        for edge in self.joins:
            crosses_ab = edge.left_alias in set_a and edge.right_alias in set_b
            crosses_ba = edge.left_alias in set_b and edge.right_alias in set_a
            if crosses_ab or crosses_ba:
                out.append(edge)
        return out

    def is_connected(self) -> bool:
        """True when the join graph connects all relations."""
        if self.num_relations <= 1:
            return True
        adjacency: Dict[str, set] = {a: set() for a in self.aliases}
        for edge in self.joins:
            adjacency[edge.left_alias].add(edge.right_alias)
            adjacency[edge.right_alias].add(edge.left_alias)
        seen = {self.aliases[0]}
        frontier = [self.aliases[0]]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == self.num_relations

    def filter_selectivity(self, alias: str) -> float:
        """Combined (independence-assumption) selectivity of filters on ``alias``."""
        sel = 1.0
        for pred in self.predicates_for(alias):
            sel *= pred.selectivity
        return sel

    # -- rendering ------------------------------------------------------
    def to_sql(self) -> str:
        """Render the query as a SQL-ish string (for logs and examples)."""
        from_clause = ", ".join(
            f"{table} AS {alias}" for alias, table in self.relations.items()
        )
        conditions = [e.to_sql() for e in self.joins] + [p.to_sql() for p in self.predicates]
        where = " AND ".join(conditions) if conditions else "TRUE"
        select = "COUNT(*)" if not self.is_etl else "*"
        suffix = "" if not self.is_etl else "  -- COPY TO '/tmp/out.csv'"
        return f"SELECT {select} FROM {from_clause} WHERE {where};{suffix}"

    def signature(self) -> Tuple:
        """A hashable structural signature used for caching and dedup."""
        return (
            tuple(sorted(self.relations.items())),
            tuple(sorted((e.left_alias, e.left_column, e.right_alias, e.right_column) for e in self.joins)),
            tuple(sorted((p.alias, p.column, p.operator, round(p.selectivity, 6)) for p in self.predicates)),
            self.is_etl,
        )


class QueryGenerator:
    """Samples reproducible join-graph queries from a catalog.

    The generator walks the catalog's foreign-key graph, growing a connected
    subgraph of ``num_joins + 1`` relations, then attaches random filter
    predicates.  Mirrors how CEB extends JOB with template-sampled queries.
    """

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 0,
        min_relations: int = 2,
        max_relations: int = 8,
        max_predicates: int = 3,
    ) -> None:
        if min_relations < 1 or max_relations < min_relations:
            raise QueryError("invalid relation-count range for QueryGenerator")
        self.catalog = catalog
        self.min_relations = min_relations
        self.max_relations = max_relations
        self.max_predicates = max_predicates
        self._rng = np.random.default_rng(seed)
        if not catalog.foreign_keys():
            raise QueryError(
                "catalog has no foreign keys; cannot generate join queries"
            )

    def generate(self, name: str) -> Query:
        """Generate one connected join query."""
        target = int(self._rng.integers(self.min_relations, self.max_relations + 1))
        tables = self._sample_connected_tables(target)
        relations = {f"t{i}": tbl for i, tbl in enumerate(tables)}
        joins = self._build_joins(relations)
        predicates = self._build_predicates(relations)
        return Query(name=name, relations=relations, joins=joins, predicates=predicates)

    def generate_many(self, count: int, prefix: str = "q") -> List[Query]:
        """Generate ``count`` queries named ``{prefix}{i}``."""
        return [self.generate(f"{prefix}{i}") for i in range(count)]

    # -- internals ------------------------------------------------------
    def _sample_connected_tables(self, target: int) -> List[str]:
        names = self.catalog.table_names()
        start = str(self._rng.choice(names))
        chosen = [start]
        while len(chosen) < target:
            frontier = []
            for tbl in chosen:
                frontier.extend(
                    n for n in self.catalog.neighbors(tbl) if n not in chosen
                )
            if not frontier:
                break
            chosen.append(str(self._rng.choice(sorted(set(frontier)))))
        return chosen

    def _build_joins(self, relations: Dict[str, str]) -> List[JoinEdge]:
        """One join edge per adjacent pair in the sampled spanning order."""
        alias_of = {}
        for alias, table in relations.items():
            alias_of.setdefault(table, alias)
        joins: List[JoinEdge] = []
        fk_pairs = self.catalog.joinable_pairs()
        aliases = list(relations.items())
        connected = {aliases[0][0]}
        for alias, table in aliases[1:]:
            edge = self._find_fk_edge(table, alias, relations, connected, fk_pairs)
            if edge is not None:
                joins.append(edge)
                connected.add(alias)
            else:
                # Fall back to an id = id edge with any connected relation so
                # the join graph stays connected.
                other_alias = sorted(connected)[0]
                joins.append(JoinEdge(alias, "id", other_alias, "id"))
                connected.add(alias)
        return joins

    def _find_fk_edge(self, table, alias, relations, connected, fk_pairs):
        for child_t, child_c, parent_t, parent_c in fk_pairs:
            for other_alias in connected:
                other_table = relations[other_alias]
                if child_t == table and parent_t == other_table:
                    return JoinEdge(alias, child_c, other_alias, parent_c)
                if parent_t == table and child_t == other_table:
                    return JoinEdge(alias, parent_c, other_alias, child_c)
        return None

    def _build_predicates(self, relations: Dict[str, str]) -> List[Predicate]:
        predicates: List[Predicate] = []
        num = int(self._rng.integers(0, self.max_predicates + 1))
        aliases = list(relations)
        for _ in range(num):
            alias = str(self._rng.choice(aliases))
            table = self.catalog.table(relations[alias])
            columns = [c for c in table.columns if c != "id"]
            if not columns:
                continue
            column = str(self._rng.choice(columns))
            operator = str(self._rng.choice(["=", "<", ">", "<="]))
            # Log-uniform selectivity: most predicates are selective, a few
            # are not -- matches the heavy tails seen in JOB/CEB.
            selectivity = float(np.exp(self._rng.uniform(np.log(1e-4), np.log(0.5))))
            predicates.append(
                Predicate(alias=alias, column=column, operator=operator,
                          selectivity=selectivity)
            )
        return predicates
