"""Durable shard state: write-ahead log, snapshots, crash recovery.

See ``docs/durability.md`` for the record format, the snapshot install
protocol, the recovery invariants, and the fault-point map.
"""

from .faults import FAULT_POINTS, FaultClock, FaultFS, FaultInjector, FaultPlan
from .journal import ShardJournal, attach_journal
from .recovery import RecoveredState, recover_journal, recover_service
from .snapshot import (
    load_snapshot,
    matrix_from_jsonable,
    matrix_to_jsonable,
    write_snapshot,
)
from .wal import RECORD_KINDS, WalRecord, WriteAheadLog, encode_record

__all__ = [
    "FAULT_POINTS",
    "FaultClock",
    "FaultFS",
    "FaultInjector",
    "FaultPlan",
    "RECORD_KINDS",
    "RecoveredState",
    "ShardJournal",
    "WalRecord",
    "WriteAheadLog",
    "attach_journal",
    "encode_record",
    "load_snapshot",
    "matrix_from_jsonable",
    "matrix_to_jsonable",
    "recover_journal",
    "recover_service",
    "write_snapshot",
]
