"""Deterministic fault injection for the durability layer.

Crash testing is only useful when a failure is *reproducible*: "the shard
died somewhere during the drift phase" cannot be replayed, but "the shard
died at the 3rd ``wal.append.before_fsync`` point" can.  Two small pieces
make that possible:

* :class:`FaultClock` counts how many times each named fault point has
  been passed.  The count is the only notion of time the injector has, so
  a test that arms "crash at the Nth occurrence" behaves identically on
  every run regardless of wall-clock timing.
* :class:`FaultFS` is the single seam between the WAL/snapshot code and
  the real filesystem.  Every write, fsync, rename, and unlink goes
  through it, and each one brackets the syscall with named fault points
  (``<prefix>.before_write``, ``<prefix>.after_fsync``, ...).  With no
  injector attached it is a zero-cost pass-through.

A triggered fault raises :class:`~repro.errors.InjectedCrash`, which
models the process dying at that instruction: bytes already handed to the
kernel stay on disk, bytes not yet written never appear.  Torn writes
(``<prefix>.torn_write``) additionally write a *prefix* of the record
before dying, producing exactly the partial-final-record artifact the
recovery path must tolerate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Optional

from ..errors import DurabilityError, InjectedCrash

#: Every fault point the durability layer can die at.  ``wal.append.*``
#: fire on every journal append; ``snapshot.*`` fire while a checkpoint
#: writes and installs the snapshot file; ``wal.truncate.before_remove``
#: fires before each obsolete segment is unlinked.  The ``*_fsync``
#: points on the WAL are only reached when the journal runs with
#: ``sync="always"`` (see :class:`~repro.durability.wal.WriteAheadLog`).
FAULT_POINTS = (
    "wal.append.before_write",
    "wal.append.torn_write",
    "wal.append.before_fsync",
    "wal.append.after_fsync",
    "snapshot.before_write",
    "snapshot.torn_write",
    "snapshot.before_fsync",
    "snapshot.after_fsync",
    "snapshot.before_replace",
    "snapshot.after_replace",
    "wal.truncate.before_remove",
)


@dataclass
class FaultPlan:
    """One armed crash: fire when ``point`` is passed for the ``at``-th time.

    ``at`` counts occurrences *after arming* (``at=1`` means the very next
    pass).  ``torn_fraction`` only applies to ``*.torn_write`` points and
    is the fraction of the record's bytes written before the crash.
    """

    point: str
    trigger_count: int
    torn_fraction: float = 0.5
    fired: bool = False


class FaultClock:
    """Counts passes through each named fault point (deterministic time)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def tick(self, point: str) -> int:
        """Record one pass through ``point``; returns the new total."""
        count = self._counts.get(point, 0) + 1
        self._counts[point] = count
        return count

    def count(self, point: str) -> int:
        """Total passes through ``point`` so far."""
        return self._counts.get(point, 0)


class FaultInjector:
    """Arms crash plans against a :class:`FaultClock`.

    One injector is typically shared by every :class:`FaultFS` in a
    cluster, so "crash the next shard that appends" is a single
    :meth:`arm` call.  ``fired`` records every plan that went off, in
    order, for assertions.
    """

    def __init__(self) -> None:
        self.clock = FaultClock()
        self._plans: List[FaultPlan] = []
        self.fired: List[str] = []

    def arm(self, point: str, at: int = 1, torn_fraction: float = 0.5) -> FaultPlan:
        """Crash at the ``at``-th pass through ``point`` from now on."""
        if point not in FAULT_POINTS:
            raise DurabilityError(
                f"unknown fault point {point!r}; valid points: {', '.join(FAULT_POINTS)}"
            )
        if at < 1:
            raise DurabilityError(f"fault arm count must be >= 1, got {at}")
        if not 0.0 <= torn_fraction < 1.0:
            raise DurabilityError(
                f"torn_fraction must be in [0, 1), got {torn_fraction}"
            )
        plan = FaultPlan(
            point=point,
            trigger_count=self.clock.count(point) + int(at),
            torn_fraction=float(torn_fraction),
        )
        self._plans.append(plan)
        return plan

    def disarm(self) -> None:
        """Drop every pending plan (counts keep advancing)."""
        self._plans = [plan for plan in self._plans if plan.fired]

    def _match(self, point: str) -> Optional[FaultPlan]:
        count = self.clock.tick(point)
        for plan in self._plans:
            if plan.point == point and not plan.fired and count >= plan.trigger_count:
                plan.fired = True
                self.fired.append(point)
                return plan
        return None

    def fire(self, point: str) -> None:
        """Pass through a crash point; raises when a plan triggers."""
        if self._match(point) is not None:
            raise InjectedCrash(f"injected crash at {point}")

    def torn_request(self, point: str) -> Optional[FaultPlan]:
        """Like :meth:`fire` for torn-write points: returns the plan
        instead of raising so the caller can write the partial prefix
        first, then die."""
        return self._match(point)


@dataclass
class FaultFS:
    """Filesystem seam with fault points around every durability syscall.

    All WAL and snapshot I/O routes through this object.  ``injector``
    is optional; without one every method is a plain syscall.
    """

    injector: Optional[FaultInjector] = None
    #: total bytes handed to ``write`` (including torn prefixes)
    bytes_written: int = field(default=0, init=False)
    fsyncs: int = field(default=0, init=False)

    def fire(self, point: str) -> None:
        if self.injector is not None:
            self.injector.fire(point)

    def write(self, handle: BinaryIO, data: bytes, prefix: str) -> None:
        """Write ``data``; may die before writing or after a torn prefix."""
        self.fire(f"{prefix}.before_write")
        if self.injector is not None:
            plan = self.injector.torn_request(f"{prefix}.torn_write")
            if plan is not None:
                torn = data[: int(len(data) * plan.torn_fraction)]
                handle.write(torn)
                self.bytes_written += len(torn)
                raise InjectedCrash(
                    f"injected torn write at {prefix}.torn_write "
                    f"({len(torn)}/{len(data)} bytes)"
                )
        handle.write(data)
        self.bytes_written += len(data)

    def fsync(self, handle: BinaryIO, prefix: str) -> None:
        """fsync ``handle``; may die on either side of the syscall."""
        self.fire(f"{prefix}.before_fsync")
        os.fsync(handle.fileno())
        self.fsyncs += 1
        self.fire(f"{prefix}.after_fsync")

    def replace(self, src: str, dst: str, prefix: str) -> None:
        """Atomic rename; may die with the old or the new file in place."""
        self.fire(f"{prefix}.before_replace")
        os.replace(src, dst)
        self.fire(f"{prefix}.after_replace")

    def remove(self, path: str, prefix: str) -> None:
        """Unlink ``path``; may die with the file still present."""
        self.fire(f"{prefix}.before_remove")
        os.remove(path)
