"""Per-shard journal: the durability façade the serving stack talks to.

:class:`ShardJournal` owns one directory containing WAL segments and at
most one installed snapshot.  Opening a journal *is* the scan phase of
recovery: the constructor reads the snapshot envelope and every surviving
WAL record (repairing torn tails), then hands them to
:mod:`repro.durability.recovery` for replay.  On a fresh directory the
scan is trivially empty and the journal starts logging at LSN 1.

The logging convention is **write-ahead**: callers append the record and
only then mutate in-memory state.  Every logged mutation is idempotent
(``observe`` overwrites the same cells, ``censor`` keeps the max lower
bound, ``invalidate`` clears), so a record that was both replayed from
the WAL *and* re-applied by a supervisor retry converges to the same
state -- the property the cluster's outage feedback queue relies on.

The journal also caches the latest adaptation backlog it has logged
(``adapt`` records).  Checkpoints embed that cache in the snapshot, so
truncating the log never loses the backlog of a response in progress.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DurabilityError
from .faults import FaultFS
from .snapshot import load_snapshot, write_snapshot
from .wal import WalRecord, WriteAheadLog, pack_floats, pack_ints


class ShardJournal:
    """Write-ahead journal + snapshot manager for one shard directory.

    Parameters
    ----------
    directory:
        The shard's durability home.  Created if missing; scanned (and
        torn tails repaired) if it already holds state.
    fs:
        Optional :class:`~repro.durability.faults.FaultFS` seam shared
        with the fault injector.
    sync:
        WAL sync policy, forwarded to
        :class:`~repro.durability.wal.WriteAheadLog`.
    """

    def __init__(
        self,
        directory: str,
        fs: Optional[FaultFS] = None,
        sync: str = "os",
    ) -> None:
        self.directory = directory
        self.fs = fs if fs is not None else FaultFS()
        os.makedirs(directory, exist_ok=True)
        self.recovered_snapshot: Optional[Tuple[Dict[str, Any], int]] = load_snapshot(
            directory
        )
        self.wal = WriteAheadLog(directory, fs=self.fs, sync=sync)
        self._recovered_records: Optional[List[WalRecord]] = self.wal.open(repair=True)
        self.checkpoints = 0
        self._last_backlog: List[int] = []
        if self.recovered_snapshot is not None:
            state, _ = self.recovered_snapshot
            self._last_backlog = [int(r) for r in state.get("backlog", [])]
        # Telemetry seam (bound by the owning service when enabled).
        self._tracer = None
        self._journal_metrics = None
        self._stage_clock = None

    def bind_telemetry(self, telemetry, clock) -> None:
        """Feed WAL/checkpoint counters and the ``wal.append`` stage.

        Only an *enabled* :class:`~repro.telemetry.Telemetry` binds; the
        append path is otherwise untouched.  ``clock`` supplies the one
        perf-counter pair each append costs when instrumented.
        """
        if telemetry is None or not telemetry.config.enabled:
            return
        self._tracer = telemetry.tracer
        self._journal_metrics = telemetry.journal_metrics()
        self._stage_clock = clock

    # -- recovery handoff -------------------------------------------------------------
    def take_recovered_records(self) -> List[WalRecord]:
        """Surviving WAL records, once; the cache is dropped afterwards."""
        records = self._recovered_records or []
        self._recovered_records = None
        return records

    def note_backlog(self, rows: Sequence[int]) -> None:
        """Seed the backlog cache after replay (no record is written)."""
        self._last_backlog = [int(r) for r in rows]

    @property
    def last_backlog(self) -> List[int]:
        """Most recent adaptation backlog this journal knows about."""
        return list(self._last_backlog)

    # -- raw logging -------------------------------------------------------------------
    def log(self, kind: str, data: Dict[str, Any]) -> int:
        """Append one record; returns its LSN."""
        if self._tracer is None:
            return self.wal.append(kind, data)
        start = self._stage_clock()
        bytes_before = self.wal.appended_bytes
        lsn = self.wal.append(kind, data)
        self._tracer.record_stage("wal.append", self._stage_clock() - start)
        self._journal_metrics.wal_records.inc()
        self._journal_metrics.wal_bytes.inc(
            self.wal.appended_bytes - bytes_before
        )
        return lsn

    # -- typed logging (the hooks the stack calls) ----------------------------------
    def log_observe(self, queries, hints, latencies) -> int:
        """One batch of completed executions (also used for single cells)."""
        return self.log(
            "observe",
            {
                "q": pack_ints(queries),
                "h": pack_ints(hints),
                "v": pack_floats(latencies),
            },
        )

    def log_censor(self, query: int, hint: int, lower_bound: float) -> int:
        return self.log(
            "censor", {"q": int(query), "h": int(hint), "lb": float(lower_bound)}
        )

    def log_invalidate(self, rows: Optional[Iterable[int]]) -> int:
        payload = None if rows is None else [int(r) for r in rows]
        return self.log("invalidate", {"rows": payload})

    def log_add_query(self, name: Optional[str]) -> int:
        return self.log("add_query", {"name": name})

    def log_import(self, payload: Dict[str, Any]) -> int:
        """Row migration in; ``payload`` is jsonable matrix-row state."""
        return self.log("import", payload)

    def log_remove(self, rows: Iterable[int]) -> int:
        return self.log("remove", {"rows": [int(r) for r in rows]})

    def log_retire(self) -> int:
        """The shard gave away its last row; the matrix is gone."""
        return self.log("retire", {})

    def log_measured(self, queries, hints, measured) -> int:
        """Executed-decision telemetry (kept for audit; not matrix state)."""
        return self.log(
            "measured",
            {
                "q": pack_ints(queries),
                "h": pack_ints(hints),
                "m": pack_floats(measured),
            },
        )

    def log_adapt_backlog(self, rows: Sequence[int]) -> int:
        """Adaptation-response progress: the backlog still owed."""
        rows_list = [int(r) for r in rows]
        lsn = self.log("adapt", {"rows": rows_list})
        self._last_backlog = rows_list
        return lsn

    # -- checkpointing ------------------------------------------------------------------
    def checkpoint(self, matrix_state: Optional[Dict[str, Any]]) -> int:
        """Snapshot current state, rotate the WAL, truncate old segments.

        ``matrix_state`` is the jsonable matrix payload (or ``None`` for a
        retired shard); the cached adaptation backlog rides along.  The
        snapshot covers every record appended so far, so all closed
        segments become garbage and are unlinked.  Returns the covered LSN.
        """
        lsn = self.wal.next_lsn - 1
        state = {"matrix": matrix_state, "backlog": list(self._last_backlog)}
        write_snapshot(self.directory, state, lsn, fs=self.fs)
        self.wal.rotate()
        self.wal.truncate_through(lsn)
        self.checkpoints += 1
        if self._journal_metrics is not None:
            self._journal_metrics.checkpoints.inc()
        return lsn

    # -- observability -----------------------------------------------------------------------
    @property
    def next_lsn(self) -> int:
        return self.wal.next_lsn

    @property
    def appended_records(self) -> int:
        return self.wal.appended_records

    @property
    def appended_bytes(self) -> int:
        return self.wal.appended_bytes

    def on_disk_bytes(self) -> int:
        """Bytes held by WAL segments plus the installed snapshot."""
        total = self.wal.on_disk_bytes()
        snap = os.path.join(self.directory, "snapshot.bin")
        if os.path.exists(snap):
            total += os.path.getsize(snap)
        return total

    # -- lifecycle --------------------------------------------------------------------------
    def close(self) -> None:
        """Clean shutdown (does not checkpoint; callers decide that)."""
        self.wal.close()

    def crash(self) -> None:
        """Simulated process death: drop file handles, keep disk as-is."""
        self.wal.crash()


def attach_journal(matrix, journal: Optional[ShardJournal]) -> None:
    """Point a :class:`~repro.core.workload_matrix.WorkloadMatrix` at a journal.

    Split out as a helper so callers (service, shard, recovery) wire the
    hook the same way; passing ``None`` detaches.
    """
    if journal is not None and not isinstance(journal, ShardJournal):
        raise DurabilityError(
            f"journal must be a ShardJournal or None, got {type(journal).__name__}"
        )
    matrix.journal = journal
