"""Crash recovery: snapshot + WAL replay back to a live serving state.

The sequence is exactly the classic one:

1. open the journal directory -- this loads the snapshot envelope,
   validates every WAL segment, and physically discards a torn final
   record (:class:`~repro.durability.journal.ShardJournal` does all of
   this in its constructor);
2. rebuild the matrix from the snapshot (or from nothing);
3. replay every WAL record with ``lsn > snapshot.lsn`` in order, skipping
   the ones the snapshot already covers;
4. resume appending at ``last_lsn + 1`` on the same journal.

Replay invariants:

* a record that fails to apply is *corruption*, not a crash artifact --
  the WAL only ever holds records that applied cleanly before, so a
  replay error means the log and snapshot disagree and recovery raises
  :class:`~repro.errors.WalCorruption` rather than guess;
* replay never writes to the journal (the records are already there);
* the rebuilt matrix's decision-relevant state (values, masks, timeouts,
  names) is byte-identical to the pre-crash matrix, because both the
  snapshot and the WAL round-trip doubles exactly.  The plan cache is
  version-gated derived state and rebuilds on the first serve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.workload_matrix import WorkloadMatrix
from ..errors import DurabilityError, ReproError, WalCorruption
from .faults import FaultFS
from .journal import ShardJournal
from .snapshot import matrix_from_jsonable
from .wal import WalRecord, unpack_floats, unpack_ints


@dataclass
class RecoveredState:
    """What came back from disk: the state plus replay accounting."""

    matrix: Optional[WorkloadMatrix]
    backlog: np.ndarray
    snapshot_lsn: int
    next_lsn: int
    replayed_records: int
    skipped_records: int
    measured_records: int = 0
    elapsed_s: float = field(default=0.0)


def _apply_record(
    matrix: Optional[WorkloadMatrix], record: WalRecord
) -> Optional[WorkloadMatrix]:
    """Apply one WAL record to the matrix being rebuilt (may create it)."""
    kind, data = record.kind, record.data
    if kind == "import":
        payload = matrix_from_jsonable(data)
        if matrix is None:
            return WorkloadMatrix.from_dict(payload)
        matrix.import_rows(payload)
        return matrix
    if kind == "retire":
        return None
    if matrix is None:
        raise WalCorruption(
            f"record {record.lsn} ({kind}) targets a matrix that does not exist yet"
        )
    if kind == "observe":
        matrix.observe_batch(
            unpack_ints(data["q"]), unpack_ints(data["h"]), unpack_floats(data["v"])
        )
    elif kind == "censor":
        matrix.observe_censored(data["q"], data["h"], data["lb"])
    elif kind == "invalidate":
        rows = data.get("rows")
        matrix.invalidate(None if rows is None else rows)
    elif kind == "add_query":
        matrix.add_query(data.get("name"))
    elif kind == "remove":
        matrix.remove_queries(data["rows"])
    else:  # pragma: no cover - RECORD_KINDS is closed; guards future kinds
        raise WalCorruption(f"record {record.lsn} has unreplayable kind {kind!r}")
    return matrix


def recover_journal(
    directory: str,
    fs: Optional[FaultFS] = None,
    sync: str = "os",
    clock=time.perf_counter,
) -> "tuple[ShardJournal, RecoveredState]":
    """Open ``directory``, replay it, and return (resumed journal, state).

    The returned journal is live: its next append lands at
    ``state.next_lsn`` on the segment the crash left behind (torn tail
    already repaired).  The caller attaches it to the rebuilt matrix so
    new mutations keep journaling seamlessly.
    """
    started = clock()
    journal = ShardJournal(directory, fs=fs, sync=sync)
    snapshot_lsn = 0
    matrix: Optional[WorkloadMatrix] = None
    backlog: list = []
    if journal.recovered_snapshot is not None:
        state, snapshot_lsn = journal.recovered_snapshot
        raw_matrix = state.get("matrix")
        if raw_matrix is not None:
            matrix = WorkloadMatrix.from_dict(matrix_from_jsonable(raw_matrix))
        backlog = [int(r) for r in state.get("backlog", [])]
    replayed = 0
    skipped = 0
    measured = 0
    records = journal.take_recovered_records()
    if records and records[0].lsn > snapshot_lsn + 1:
        # The WAL alone cannot condemn a log whose first segment starts
        # past LSN 1 -- that is what checkpoint truncation legitimately
        # leaves behind.  But the snapshot knows how far coverage
        # reaches; surviving records starting beyond it mean history
        # between the two was lost (e.g. a segment file deleted).
        raise WalCorruption(
            f"history gap: snapshot covers LSN {snapshot_lsn} but the "
            f"first surviving WAL record is {records[0].lsn}"
        )
    for record in records:
        if record.lsn <= snapshot_lsn:
            skipped += 1
            continue
        if record.kind == "measured":
            measured += 1
            replayed += 1
            continue
        if record.kind == "adapt":
            backlog = [int(r) for r in record.data.get("rows", [])]
            replayed += 1
            continue
        try:
            matrix = _apply_record(matrix, record)
        except WalCorruption:
            raise
        except ReproError as exc:
            raise WalCorruption(
                f"record {record.lsn} ({record.kind}) failed to replay: {exc}"
            ) from exc
        replayed += 1
    journal.note_backlog(backlog)
    state = RecoveredState(
        matrix=matrix,
        backlog=np.asarray(backlog, dtype=np.int64),
        snapshot_lsn=snapshot_lsn,
        next_lsn=journal.next_lsn,
        replayed_records=replayed,
        skipped_records=skipped,
        measured_records=measured,
        elapsed_s=clock() - started,
    )
    return journal, state


def recover_service(
    directory: str,
    default_hint: int = 0,
    regression_margin: float = 1.0,
    refresher=None,
    estimator=None,
    recorder=None,
    monitor=None,
    fs: Optional[FaultFS] = None,
    sync: str = "os",
    clock=time.perf_counter,
):
    """Recover a directory straight into a live :class:`ServingService`.

    Convenience for single-service deployments (the cluster drives
    :func:`recover_journal` itself through ``ClusterShard.recover``).
    Raises :class:`~repro.errors.DurabilityError` when the journal holds
    no matrix -- an empty shard has no service to resume.
    """
    from ..serving.service import ServingService

    journal, state = recover_journal(directory, fs=fs, sync=sync, clock=clock)
    if state.matrix is None:
        journal.close()
        raise DurabilityError(
            f"journal at {directory} holds no matrix state; nothing to serve"
        )
    service = ServingService(
        state.matrix,
        default_hint=default_hint,
        regression_margin=regression_margin,
        refresher=refresher,
        estimator=estimator,
        recorder=recorder,
        monitor=monitor,
        journal=journal,
    )
    return service, state
