"""Point-in-time shard snapshots with atomic installation.

A snapshot captures everything a shard needs to serve again -- the
:class:`~repro.core.workload_matrix.WorkloadMatrix` contents (values,
observed/censored masks, timeouts, names) plus the adaptation backlog --
tagged with the LSN of the last journal record it covers.  The plan-cache
snapshot and serving stats are *derived* state: the cache is version-gated
and rebuilds itself from the matrix on the first post-recovery serve, so
persisting the matrix persists the decisions.

Install protocol (crash-safe at every step)::

    write snapshot.tmp  ->  fsync  ->  os.replace(tmp, snapshot.bin)

``os.replace`` is atomic on POSIX, so recovery only ever sees either the
old snapshot or the new one -- never a half-written file.  A leftover
``snapshot.tmp`` from a crash mid-write is ignored and overwritten by the
next checkpoint.  The snapshot file reuses the WAL's length+CRC framing;
since it is installed atomically, a framing failure here is always real
corruption and raises :class:`~repro.errors.WalCorruption`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import WalCorruption
from .faults import FaultFS

_HEADER = struct.Struct("<II")

SNAPSHOT_NAME = "snapshot.bin"
SNAPSHOT_TMP = "snapshot.tmp"


# -- matrix state <-> JSON-able ---------------------------------------------------------
def matrix_to_jsonable(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a ``WorkloadMatrix.to_dict()`` payload to pure JSON types.

    ``inf`` survives: Python's ``json`` emits ``Infinity`` and parses it
    back, and float ``repr`` round-trips every finite double exactly.
    """
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            out[key] = value.tolist()
        elif isinstance(value, (list, tuple)):
            out[key] = list(value)
        else:
            out[key] = value
    return out


def matrix_from_jsonable(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`matrix_to_jsonable` (numpy arrays restored)."""
    out: Dict[str, Any] = {}
    for key, value in obj.items():
        if key == "values":
            out[key] = np.asarray(value, dtype=float)
        elif key in ("observed", "censored"):
            out[key] = np.asarray(value, dtype=bool)
        elif key == "timeouts":
            out[key] = np.asarray(value, dtype=float)
        else:
            out[key] = value
    return out


# -- write / load -----------------------------------------------------------------------------
def write_snapshot(
    directory: str,
    state: Dict[str, Any],
    lsn: int,
    fs: Optional[FaultFS] = None,
) -> str:
    """Atomically install ``state`` as the shard snapshot covering ``lsn``."""
    fs = fs if fs is not None else FaultFS()
    body = json.dumps(
        {"lsn": int(lsn), "schema": 1, "state": state},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    framed = _HEADER.pack(len(body), zlib.crc32(body)) + body
    tmp = os.path.join(directory, SNAPSHOT_TMP)
    final = os.path.join(directory, SNAPSHOT_NAME)
    handle = open(tmp, "wb", buffering=0)
    try:
        fs.write(handle, framed, "snapshot")
        fs.fsync(handle, "snapshot")
    finally:
        handle.close()
    fs.replace(tmp, final, "snapshot")
    return final


def load_snapshot(directory: str) -> Optional[Tuple[Dict[str, Any], int]]:
    """Read the installed snapshot; ``None`` when no checkpoint ever ran.

    Raises :class:`~repro.errors.WalCorruption` on any framing or content
    failure -- snapshots are installed atomically, so a bad one is never
    a benign crash artifact.
    """
    path = os.path.join(directory, SNAPSHOT_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size:
        raise WalCorruption(f"snapshot {path} too short ({len(data)} bytes)")
    length, crc = _HEADER.unpack_from(data, 0)
    payload = data[_HEADER.size : _HEADER.size + length]
    if len(payload) != length:
        raise WalCorruption(f"snapshot {path} truncated")
    if zlib.crc32(payload) != crc:
        raise WalCorruption(f"snapshot {path} failed its CRC")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalCorruption(f"snapshot {path} is unreadable: {exc}") from exc
    if (
        not isinstance(obj, dict)
        or not isinstance(obj.get("lsn"), int)
        or not isinstance(obj.get("state"), dict)
    ):
        raise WalCorruption(f"snapshot {path} has a malformed envelope")
    return obj["state"], obj["lsn"]
