"""Append-only per-shard write-ahead log.

Record framing (little-endian)::

    +----------------+----------------+----------------------+
    | length: u32    | crc32: u32     | payload (JSON bytes) |
    +----------------+----------------+----------------------+

The payload is compact sorted-key JSON ``{"data": {...}, "kind": k,
"lsn": n}``.  Scalar floats use JSON's ``repr``-based encoding; float
and int *batches* (``observe``/``measured`` payloads) are packed via
:func:`pack_floats`/:func:`pack_ints` as base64 little-endian bytes.  Both
round-trip IEEE-754 doubles exactly, which is what makes
*byte-identical* replay possible: a latency observed before a crash
deserializes to the very same double after recovery, so the plan cache
reaches the very same decisions.

LSNs are assigned by the log, start at 1, and are strictly contiguous
across the whole journal.  The log is split into segment files named
``wal-<first_lsn>.log`` so a checkpoint can drop history by unlinking
whole segments (:meth:`WriteAheadLog.truncate_through`) instead of
rewriting files.

Torn-tail rule (the crash contract):

* a record whose framing runs past end-of-file is a **torn tail** -- the
  normal leftover of a crash mid-append.  It is discarded on open (and
  the file is physically truncated back to the last complete record) and
  is *not* an error;
* a complete record whose CRC or JSON fails, or an LSN that is not
  exactly ``previous + 1``, **is** an error and raises
  :class:`~repro.errors.WalCorruption`.

Because appends only ever grow a segment, truncating a healthy log at an
arbitrary byte offset can only produce the torn-tail case -- never a CRC
mismatch -- so recovery from truncation always lands on a valid prefix
state.  That property is enforced by a hypothesis test.
"""

from __future__ import annotations

import base64
import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import DurabilityError, WalCorruption
from .faults import FaultFS

_HEADER = struct.Struct("<II")
_SEGMENT_RE = re.compile(r"^wal-(\d{20})\.log$")

#: Records the journal understands; recovery rejects anything else.
RECORD_KINDS = (
    "observe",     # batched observe: {"q": b64 i64, "h": b64 i64, "v": b64 f64}
    "censor",      # censored observation: {"q": i, "h": j, "lb": x}
    "invalidate",  # {"rows": [...] | None}  (None = whole matrix)
    "add_query",   # {"name": str}
    "import",      # row migration in: jsonable matrix payload
    "remove",      # row migration out: {"rows": [...]}
    "retire",      # shard gave away its last row: {}
    "measured",    # executed-decision telemetry: {"q": b64, "h": b64, "m": b64}
    "adapt",       # adaptation-response backlog: {"rows": [...]}
)


@dataclass(frozen=True)
class WalRecord:
    """One decoded journal record."""

    lsn: int
    kind: str
    data: Dict[str, Any]
    size: int  # framed size in bytes, header included


def _segment_name(first_lsn: int) -> str:
    return f"wal-{first_lsn:020d}.log"


def pack_floats(values) -> str:
    """Base64 of little-endian float64s: bit-exact and cheap to encode.

    Large float batches (``observe``/``measured`` records) dominate WAL
    volume; ``repr``-style JSON floats round-trip doubles exactly but
    cost ~40x more CPU to format than a raw-bytes base64 pack.  Both are
    bit-exact, so byte-identical replay is preserved either way.
    """
    array = np.asarray(values, dtype="<f8")
    return base64.b64encode(array.tobytes()).decode("ascii")


def unpack_floats(packed) -> "np.ndarray":
    """Inverse of :func:`pack_floats`; lists pass through for crafted records."""
    if isinstance(packed, str):
        return np.frombuffer(base64.b64decode(packed), dtype="<f8")
    return np.asarray(packed, dtype=float)


def pack_ints(values) -> str:
    """Base64 of little-endian int64s (same rationale as :func:`pack_floats`)."""
    array = np.asarray(values, dtype="<i8")
    return base64.b64encode(array.tobytes()).decode("ascii")


def unpack_ints(packed) -> "np.ndarray":
    """Inverse of :func:`pack_ints`; lists pass through for crafted records."""
    if isinstance(packed, str):
        return np.frombuffer(base64.b64decode(packed), dtype="<i8")
    return np.asarray(packed, dtype=np.int64)


def encode_record(lsn: int, kind: str, data: Dict[str, Any]) -> bytes:
    """Frame one record (exposed for tests that craft WAL bytes)."""
    body = json.dumps(
        {"data": data, "kind": kind, "lsn": int(lsn)},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _read_segment(path: str) -> Tuple[List[WalRecord], int, bool]:
    """Decode one segment; returns (records, good_bytes, had_torn_tail)."""
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[WalRecord] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return records, offset, True
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > len(data):
            return records, offset, True
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            raise WalCorruption(
                f"CRC mismatch in {os.path.basename(path)} at byte {offset}"
            )
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise WalCorruption(
                f"unreadable record in {os.path.basename(path)} at byte {offset}: {exc}"
            ) from exc
        if (
            not isinstance(obj, dict)
            or not isinstance(obj.get("lsn"), int)
            or obj.get("kind") not in RECORD_KINDS
            or not isinstance(obj.get("data"), dict)
        ):
            raise WalCorruption(
                f"malformed record in {os.path.basename(path)} at byte {offset}"
            )
        records.append(
            WalRecord(
                lsn=obj["lsn"],
                kind=obj["kind"],
                data=obj["data"],
                size=_HEADER.size + length,
            )
        )
        offset = end
    return records, offset, False


class WriteAheadLog:
    """Segmented append-only log for one shard.

    Parameters
    ----------
    directory:
        Home of the segment files (created if missing).
    fs:
        The :class:`~repro.durability.faults.FaultFS` seam; defaults to a
        pass-through.
    sync:
        ``"os"`` (default) hands every record to the kernel with an
        unbuffered ``write`` -- durable across *process* crashes, which is
        the failure model of an in-process shard.  ``"always"`` adds an
        fsync per append for power-loss durability (and is what the chaos
        suite uses to reach the fsync fault points).
    """

    def __init__(self, directory: str, fs: Optional[FaultFS] = None, sync: str = "os") -> None:
        if sync not in ("os", "always"):
            raise DurabilityError(f"sync must be 'os' or 'always', got {sync!r}")
        self.directory = directory
        self.fs = fs if fs is not None else FaultFS()
        self.sync = sync
        os.makedirs(directory, exist_ok=True)
        self.next_lsn = 1
        self._segments: List[Tuple[int, str]] = []  # (first_lsn, path), sorted
        self._segment_path: Optional[str] = None
        self._handle = None
        self.appended_records = 0
        self.appended_bytes = 0
        self.truncated_bytes = 0
        self.discarded_tail_records = 0

    # -- opening / scanning ----------------------------------------------------------
    def open(self, repair: bool = True) -> List[WalRecord]:
        """Scan every segment, validate, repair torn tails, resume appends.

        Returns all surviving records in LSN order.  ``repair=False``
        reads without truncating torn bytes (inspection mode).
        """
        names = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                names.append((int(match.group(1)), name))
        names.sort()
        records: List[WalRecord] = []
        self._segments = []
        expected: Optional[int] = None
        for first_lsn, name in names:
            path = os.path.join(self.directory, name)
            seg_records, good_offset, torn = _read_segment(path)
            if torn:
                self.discarded_tail_records += 1
                if repair:
                    size = os.path.getsize(path)
                    with open(path, "r+b") as handle:
                        handle.truncate(good_offset)
                    self.truncated_bytes += size - good_offset
            for record in seg_records:
                if expected is not None and record.lsn != expected:
                    raise WalCorruption(
                        f"LSN gap in {name}: expected {expected}, found {record.lsn}"
                    )
                if expected is None and record.lsn != first_lsn:
                    raise WalCorruption(
                        f"segment {name} starts at LSN {record.lsn}, "
                        f"name promises {first_lsn}"
                    )
                expected = record.lsn + 1
                records.append(record)
            self._segments.append((first_lsn, path))
        if records:
            self.next_lsn = records[-1].lsn + 1
        elif names:
            # No record survived but segments exist -- the normal leftover
            # of a checkpoint (rotate + truncate keeps one empty segment)
            # followed by a crash or clean reopen.  Resume at the LSN the
            # last segment's name promises: restarting at 1 would append
            # pre-snapshot LSNs into a later-named segment, failing the
            # name/LSN consistency check on the *next* open and silently
            # skipping those records during snapshot replay.
            self.next_lsn = names[-1][0]
        else:
            self.next_lsn = 1
        if self._segments:
            self._segment_path = self._segments[-1][1]
        else:
            self._start_segment(self.next_lsn)
        return records

    def _start_segment(self, first_lsn: int) -> None:
        path = os.path.join(self.directory, _segment_name(first_lsn))
        # Touch eagerly so truncate_through can size every listed segment.
        with open(path, "ab"):
            pass
        self._segments.append((first_lsn, path))
        self._segment_path = path

    def _ensure_handle(self):
        if self._handle is None:
            if self._segment_path is None:
                self.open()
            self._handle = open(self._segment_path, "ab", buffering=0)
        return self._handle

    # -- appending -------------------------------------------------------------------
    def append(self, kind: str, data: Dict[str, Any]) -> int:
        """Frame, write (and optionally fsync) one record; returns its LSN.

        The record is on disk *before* the caller mutates any in-memory
        state -- that ordering is the whole write-ahead contract.
        """
        if kind not in RECORD_KINDS:
            raise DurabilityError(f"unknown record kind {kind!r}")
        framed = encode_record(self.next_lsn, kind, data)
        handle = self._ensure_handle()
        self.fs.write(handle, framed, "wal.append")
        if self.sync == "always":
            self.fs.fsync(handle, "wal.append")
        lsn = self.next_lsn
        self.next_lsn += 1
        self.appended_records += 1
        self.appended_bytes += len(framed)
        return lsn

    # -- rotation / truncation ----------------------------------------------------------
    def rotate(self) -> None:
        """Close the live segment and start a fresh one at ``next_lsn``."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._start_segment(self.next_lsn)

    def truncate_through(self, lsn: int) -> int:
        """Unlink every closed segment fully covered by ``lsn``.

        A segment is removable when it is not the live segment and its
        successor starts at or below ``lsn + 1`` (i.e. every record in it
        has LSN <= ``lsn``).  Returns the number of bytes reclaimed.
        """
        reclaimed = 0
        keep: List[Tuple[int, str]] = []
        for index, (first_lsn, path) in enumerate(self._segments):
            has_next = index + 1 < len(self._segments)
            covered = has_next and self._segments[index + 1][0] <= lsn + 1
            if path != self._segment_path and covered:
                size = os.path.getsize(path)
                self.fs.remove(path, "wal.truncate")
                reclaimed += size
                self.truncated_bytes += size
            else:
                keep.append((first_lsn, path))
        self._segments = keep
        return reclaimed

    # -- observability ----------------------------------------------------------------------
    def on_disk_bytes(self) -> int:
        """Total bytes currently held by segment files."""
        total = 0
        for _, path in self._segments:
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # -- lifecycle -------------------------------------------------------------------------
    def close(self) -> None:
        """Flush and release the append handle (clean shutdown)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def crash(self) -> None:
        """Drop the handle without ceremony (simulated process death).

        The handle is unbuffered, so everything previously ``write``-n is
        already with the kernel; closing loses nothing and releases the fd.
        """
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
