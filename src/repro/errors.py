"""Exception hierarchy for the LimeQO reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class.  Each subsystem has a dedicated subclass; the
message always explains what constraint was violated.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """Raised when a configuration value is out of its valid domain."""


class CatalogError(ReproError):
    """Raised for invalid schema or catalog operations (unknown table, ...)."""


class QueryError(ReproError):
    """Raised when a query references unknown relations or is malformed."""


class PlanError(ReproError):
    """Raised for invalid query-plan trees (bad arity, unknown operator)."""


class HintError(ReproError):
    """Raised for invalid hint-set configurations (e.g. all joins disabled)."""


class OptimizerError(ReproError):
    """Raised when the plan enumerator cannot produce a plan."""


class ExecutionError(ReproError):
    """Raised by the simulated execution engine for invalid requests."""


class MatrixError(ReproError):
    """Raised for invalid workload-matrix operations (shape mismatch, ...)."""


class CompletionError(ReproError):
    """Raised when a matrix-completion solver cannot run (e.g. empty mask)."""


class ExplorationError(ReproError):
    """Raised by exploration policies and the offline explorer."""


class NeuralNetworkError(ReproError):
    """Raised by the numpy autograd / neural-network substrate."""


class WorkloadError(ReproError):
    """Raised by workload generators and loaders."""


class ExperimentError(ReproError):
    """Raised by the experiment harness."""


class ServingError(ReproError):
    """Raised by the batched online serving layer."""


class ClusterError(ReproError):
    """Raised by the sharded multi-tenant serving cluster."""


class PerfError(ReproError):
    """Raised by the performance-regression harness."""


class ScenarioError(ReproError):
    """Raised by the declarative traffic/scenario engine."""


class AdaptiveError(ReproError):
    """Raised by the drift-aware adaptation controller."""


class IngressError(ReproError):
    """Raised by the asyncio ingress layer (coalescing front door)."""


class TelemetryError(ReproError):
    """Raised by the metrics registry / tracing / snapshot subsystem."""


class DurabilityError(ReproError):
    """Raised by the write-ahead log / snapshot / recovery subsystem."""


class WalCorruption(DurabilityError):
    """Raised when a WAL or snapshot fails validation during recovery.

    This is the *typed* failure mode of recovery: a CRC mismatch, an LSN
    gap, or an unreadable payload always surfaces here -- never as a
    silent wrong state and never as a raw ``struct`` / ``json`` error.
    A torn final record is NOT corruption (it is the normal artifact of
    a crash mid-append) and is discarded silently instead.
    """


class InjectedCrash(DurabilityError):
    """Raised by the fault-injection layer at an armed crash point.

    Simulates the process dying at exactly that instruction: whatever the
    current operation had not yet written stays unwritten, whatever it had
    already written stays on disk (possibly torn).  Callers that supervise
    shards (:class:`repro.cluster.ServingCluster`) translate it into a
    shard kill; nothing else should catch it.
    """
