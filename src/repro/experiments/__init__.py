"""The experiment harness: one function per paper table / figure.

:mod:`repro.experiments.runner` provides the shared machinery (policy
factory, checkpointed runs, repetition averaging);
:mod:`repro.experiments.figures` exposes ``table1_*`` / ``figure5_*`` ...
functions that return plain dictionaries of series, and
:mod:`repro.experiments.reporting` renders them as text tables, which is
what the benchmark harness prints.
"""

from .figures import (
    figure5_performance,
    figure6_ceb_curves,
    figure7_overhead,
    figure8_etl,
    figure9_workload_shift,
    figure10_incremental_drift,
    figure11_data_shift,
    figure12_tcnn_vs_limeqo_plus,
    figure13_overhead_tcnn,
    figure14_singular_values,
    figure15_rank_ablation,
    figure16_censored_ablation,
    figure17_mc_comparison,
    figure18_bayesqo,
    table1_workload_summary,
)
from .runner import (
    CheckpointedRun,
    PolicyComparison,
    make_policy,
    run_policy_on_workload,
)
from .reporting import format_series_table, format_table
from .serving import explored_matrix, serving_throughput_comparison
from .cluster import cluster_vs_single_comparison, populate_cluster
from .adaptive import (
    adaptive_vs_static_comparison,
    improvement_plateaus,
    scenario_suite_comparison,
)

__all__ = [
    "figure5_performance",
    "figure6_ceb_curves",
    "figure7_overhead",
    "figure8_etl",
    "figure9_workload_shift",
    "figure10_incremental_drift",
    "figure11_data_shift",
    "figure12_tcnn_vs_limeqo_plus",
    "figure13_overhead_tcnn",
    "figure14_singular_values",
    "figure15_rank_ablation",
    "figure16_censored_ablation",
    "figure17_mc_comparison",
    "figure18_bayesqo",
    "table1_workload_summary",
    "CheckpointedRun",
    "PolicyComparison",
    "make_policy",
    "run_policy_on_workload",
    "format_series_table",
    "format_table",
    "explored_matrix",
    "serving_throughput_comparison",
    "cluster_vs_single_comparison",
    "populate_cluster",
    "adaptive_vs_static_comparison",
    "improvement_plateaus",
    "scenario_suite_comparison",
]
