"""Adaptive-vs-static drift experiment over the scenario library.

For one scenario this runs three times with identical seeds -- a *static
snapshot cache* (bootstrapped once, never told what execution measured),
the *adaptive* stack (drift controller closing the loop), and an adaptive
*replay* -- and reduces the traces to the quantities the acceptance gate in
``benchmarks/test_adaptive_drift.py`` asserts:

* ``recovery``: how much of the static run's post-disturbance regression
  the adaptive run wins back.  Serving quality is measured as the per-tick
  fractional improvement over always-default serving (which normalises
  away uniform latency growth), the regression is the drop from the
  pre-disturbance plateau to the final ticks, and
  ``recovery = 1 - adaptive_regression / static_regression``;
* ``never_worse_than_default``: the adaptive run's total served true
  latency never exceeds what serving every arrival with the default plan
  would have cost -- the paper's no-regression anchor, end to end;
* ``replay_identical``: the two adaptive runs produced byte-identical
  decision traces (seeded determinism).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import AdaptiveConfig
from ..errors import ExperimentError
from ..scenarios.runner import ScenarioRunner, ScenarioTrace
from ..scenarios.spec import ScenarioSpec

#: Ticks averaged on each side of the disturbance for the plateau metrics.
PLATEAU_TICKS = 5


def improvement_plateaus(
    trace: ScenarioTrace, disturbance_tick: int, plateau: int = PLATEAU_TICKS
) -> Dict[str, float]:
    """Pre-disturbance and end-of-run improvement plateaus for one trace."""
    improvement = trace.improvement()
    if disturbance_tick < 1 or disturbance_tick >= improvement.size:
        raise ExperimentError(
            f"disturbance tick {disturbance_tick} outside trace of "
            f"{improvement.size} ticks"
        )
    pre = improvement[max(0, disturbance_tick - plateau):disturbance_tick]
    post = improvement[-plateau:]
    return {"pre": float(pre.mean()), "post": float(post.mean())}


def adaptive_vs_static_comparison(
    spec: ScenarioSpec,
    target: str = "service",
    adaptive_config: Optional[AdaptiveConfig] = None,
    bootstrap_coverage: float = 0.85,
    check_replay: bool = True,
) -> Dict[str, float]:
    """Run one scenario static and adaptive; reduce to the acceptance metrics."""
    disturbance = spec.first_disturbance_tick()
    if disturbance is None:
        raise ExperimentError(
            f"scenario {spec.name!r} has no disturbance; the recovery metric "
            "is undefined"
        )

    def build(adaptive: bool) -> ScenarioRunner:
        return ScenarioRunner(
            spec,
            target=target,
            adaptive=adaptive,
            adaptive_config=adaptive_config,
            bootstrap_coverage=bootstrap_coverage,
        )

    static_trace = build(adaptive=False).run()
    adaptive_trace = build(adaptive=True).run()
    replay_identical = True
    if check_replay:
        replay_trace = build(adaptive=True).run()
        replay_identical = (
            adaptive_trace.decisions_blob() == replay_trace.decisions_blob()
        )

    static_plateaus = improvement_plateaus(static_trace, disturbance)
    adaptive_plateaus = improvement_plateaus(adaptive_trace, disturbance)
    static_regression = static_plateaus["pre"] - static_plateaus["post"]
    adaptive_regression = max(
        adaptive_plateaus["pre"] - adaptive_plateaus["post"], 0.0
    )
    recovery = (
        1.0 - adaptive_regression / static_regression
        if static_regression > 0
        else float("inf")
    )

    adaptive_summary = adaptive_trace.summary()
    report = adaptive_trace.adaptive_report or {}
    return {
        "scenario_ticks": float(spec.total_ticks),
        "disturbance_tick": float(disturbance),
        "arrivals": adaptive_summary["arrivals"],
        "pre_improvement": static_plateaus["pre"],
        "static_post_improvement": static_plateaus["post"],
        "adaptive_post_improvement": adaptive_plateaus["post"],
        "static_regression": float(static_regression),
        "adaptive_regression": float(adaptive_regression),
        "recovery": float(recovery),
        "adaptive_served_latency": adaptive_summary["served_latency"],
        "adaptive_default_latency": adaptive_summary["default_latency"],
        "never_worse_than_default": float(
            adaptive_summary["served_latency"]
            <= adaptive_summary["default_latency"]
        ),
        "replay_identical": float(replay_identical),
        "responses": float(report.get("responses", 0)),
        "recovery_passes": float(report.get("recovery_passes", 0)),
        "invalidated_rows": float(report.get("invalidated_rows", 0)),
        "explored_cells": float(report.get("explored_cells", 0)),
        "remeasured_cells": float(report.get("remeasured_cells", 0)),
    }


def scenario_suite_comparison(
    specs: Dict[str, ScenarioSpec],
    target: str = "service",
    adaptive_config: Optional[AdaptiveConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Run :func:`adaptive_vs_static_comparison` across a scenario library."""
    results: Dict[str, Dict[str, float]] = {}
    for name in sorted(specs):
        results[name] = adaptive_vs_static_comparison(
            specs[name], target=target, adaptive_config=adaptive_config
        )
    summary = {
        "scenarios": float(len(results)),
        "min_recovery": float(min(r["recovery"] for r in results.values())),
        "mean_recovery": float(
            np.mean([r["recovery"] for r in results.values()])
        ),
        "all_replays_identical": float(
            all(r["replay_identical"] == 1.0 for r in results.values())
        ),
        "all_never_worse_than_default": float(
            all(r["never_worse_than_default"] == 1.0 for r in results.values())
        ),
    }
    results["_summary"] = summary
    return results
