"""Cluster experiment: sharded serving vs one service over the union matrix.

Quantifies the three cluster acceptance properties on a CEB-scale
workload:

* **equivalence** -- the 4-shard cluster's decisions (hints, default
  flags, expected latencies) are byte-identical to a single
  :class:`ServingService` holding the union matrix, because sharding
  partitions rows and the Figure 2 rule is row-local;
* **scaling** -- under the distributed-parallel reading (shards are
  independent units, a fanned-out batch costs its slowest shard), the
  aggregate throughput beats the single service.  The in-process serial
  throughput (routing included) is reported too, honestly: a single
  Python process does not get parallel wall-clock wins;
* **failover** -- with one shard marked down, its queries degrade to
  default plans with no errors while every other query's decision is
  unchanged.

``benchmarks/test_cluster_scaling.py`` prints the table, asserts the
thresholds, and writes ``BENCH_cluster.json``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..cluster import ServingCluster
from ..core.workload_matrix import WorkloadMatrix
from ..errors import ExperimentError
from ..serving.service import ServingService
from ..workloads.matrices import SyntheticWorkload
from .serving import explored_matrix


def populate_cluster(
    cluster: ServingCluster,
    tenant: str,
    matrix: WorkloadMatrix,
    query_names=None,
) -> None:
    """Register a tenant for ``matrix``'s queries and feed its observations.

    After this, the cluster's shard-resident rows for ``tenant`` hold
    exactly the observed and censored state of ``matrix`` (verified by
    :meth:`ServingCluster.export_tenant_matrix` round-trips in the tests).
    """
    names = (
        list(query_names)
        if query_names is not None
        else [f"q{i}" for i in range(matrix.n_queries)]
    )
    cluster.add_tenant(tenant, names)
    rows, cols = np.nonzero(matrix.mask > 0)
    if rows.size:
        cluster.observe_batch(tenant, rows, cols, matrix.values[rows, cols])
    censored = matrix.censored_mask
    timeouts = matrix.timeout_matrix
    for q, h in zip(*np.nonzero(censored)):
        cluster.observe_censored(tenant, int(q), int(h), float(timeouts[q, h]))


def cluster_vs_single_comparison(
    workload: SyntheticWorkload,
    n_shards: int = 4,
    batch_size: int = 16384,
    n_batches: int = 16,
    observed_fraction: float = 0.25,
    regression_margin: float = 1.0,
    seed: int = 0,
    matrix: Optional[WorkloadMatrix] = None,
    timing_reps: int = 3,
) -> Dict[str, float]:
    """Serve one arrival stream through both topologies; compare everything.

    Each timed sweep (single service, cluster) runs ``timing_reps`` times
    and the fastest wall is kept -- minimum-of-repetitions is the standard
    way to suppress scheduler noise when the measured quantity is
    deterministic work.  Decisions are identical across reps, so the
    equivalence checks use the last rep.

    Returns a flat dictionary (benchmark-JSON friendly) with the
    equivalence flag, single / in-process / parallel-aggregate
    throughputs, the failover outcome, and the cluster telemetry.
    """
    if n_shards < 1 or batch_size < 1 or n_batches < 1 or timing_reps < 1:
        raise ExperimentError(
            "n_shards, batch_size, n_batches, timing_reps must be >= 1"
        )
    if matrix is None:
        matrix = explored_matrix(
            workload, observed_fraction=observed_fraction, seed=seed
        )
    tenant = "tenant0"
    cluster = ServingCluster(
        n_shards=n_shards,
        n_hints=matrix.n_hints,
        regression_margin=regression_margin,
    )
    populate_cluster(cluster, tenant, matrix)

    rng = np.random.default_rng(seed + 1)
    arrivals = rng.integers(0, matrix.n_queries, size=(n_batches, batch_size))

    # Single service over the union matrix: the PR 1 one-shard unit.  Busy
    # time is the service's own recorder (inside serve_batch), symmetric
    # with how the per-shard busy times are measured below.
    single = ServingService(matrix.copy(), regression_margin=regression_margin)
    single.serve_batch(arrivals[0])  # warm the snapshot outside the clock
    single_seconds = float("inf")
    for _ in range(timing_reps):
        single.reset_stats()
        single_results = [single.serve_batch(batch) for batch in arrivals]
        single_seconds = min(single_seconds, single.stats().wall_seconds)
    single_hints = np.concatenate([d.hints for d in single_results])
    single_default = np.concatenate([d.used_default for d in single_results])
    single_expected = np.concatenate([d.expected_latency for d in single_results])

    # The cluster, healthy: same stream, split / regathered per shard.  The
    # in-process wall (routing included) is timed around the loop; the
    # per-shard busy times accumulate in each shard's recorder, and the
    # parallel model charges a sweep its slowest shard.
    cluster.serve_batch(tenant, arrivals[0])  # warm every shard snapshot
    cluster_seconds = float("inf")
    slowest_shard_seconds = float("inf")
    for _ in range(timing_reps):
        for shard in cluster.shards.values():
            shard.recorder().reset()
        start = time.perf_counter()
        cluster_results = [
            cluster.serve_batch(tenant, batch) for batch in arrivals
        ]
        cluster_seconds = min(
            cluster_seconds, time.perf_counter() - start
        )
        slowest_shard_seconds = min(
            slowest_shard_seconds,
            max(s.stats().wall_seconds for s in cluster.shards.values()),
        )
    cluster_hints = np.concatenate([d.hints for d in cluster_results])
    cluster_default = np.concatenate([d.used_default for d in cluster_results])
    cluster_expected = np.concatenate(
        [d.expected_latency for d in cluster_results]
    )

    identical = bool(
        np.array_equal(single_hints, cluster_hints)
        and np.array_equal(single_default, cluster_default)
        and np.array_equal(single_expected, cluster_expected)
    )
    stats = cluster.stats()

    # Failover: kill one shard, re-serve, verify degradation semantics.
    down_shard = cluster.shard_ids[0]
    directory = cluster._tenants[tenant]
    cluster.mark_down(down_shard)
    degraded_ok = True
    try:
        for i, batch in enumerate(arrivals[: max(1, n_batches // 4)]):
            decisions = cluster.serve_batch(tenant, batch)
            on_down = directory.shard_of[batch] == down_shard
            sl = slice(i * batch_size, (i + 1) * batch_size)
            if not bool(decisions.used_default[on_down].all()):
                degraded_ok = False
            if not bool(
                (decisions.hints[on_down] == cluster.default_hint).all()
            ):
                degraded_ok = False
            # Queries on healthy shards are untouched by the outage.
            if not bool(
                np.array_equal(
                    decisions.hints[~on_down], cluster_hints[sl][~on_down]
                )
            ):
                degraded_ok = False
    except Exception:
        degraded_ok = False
    cluster.mark_up(down_shard)
    after_recovery = cluster.serve_batch(tenant, arrivals[0])
    recovered = bool(
        np.array_equal(after_recovery.hints, single_hints[:batch_size])
    )

    # Live shard addition: only re-routed rows migrate, decisions unchanged.
    cluster.add_shard()
    after_rebalance = cluster.serve_batch(tenant, arrivals[0])
    rebalance_ok = bool(
        np.array_equal(after_rebalance.hints, single_hints[:batch_size])
        and np.array_equal(
            after_rebalance.expected_latency, single_expected[:batch_size]
        )
    )
    degraded_stats = cluster.stats()

    total = arrivals.size
    single_qps = total / single_seconds if single_seconds > 0 else float("inf")
    inprocess_qps = (
        total / cluster_seconds if cluster_seconds > 0 else float("inf")
    )
    parallel_qps = (
        total / slowest_shard_seconds
        if slowest_shard_seconds > 0
        else float("inf")
    )
    return {
        "queries": float(matrix.n_queries),
        "hints": float(matrix.n_hints),
        "n_shards": float(n_shards),
        "batch_size": float(batch_size),
        "decisions": float(total),
        "identical": float(identical),
        "single_qps": single_qps,
        "cluster_inprocess_qps": inprocess_qps,
        "parallel_qps": parallel_qps,
        "parallel_speedup": (
            parallel_qps / single_qps if single_qps > 0 else float("inf")
        ),
        "routing_overhead": (
            cluster_seconds / single_seconds
            if single_seconds > 0
            else float("inf")
        ),
        "fan_out": stats.fan_out,
        "p50_latency_us": stats.cluster.p50_latency_s * 1e6,
        "p99_latency_us": stats.cluster.p99_latency_s * 1e6,
        "non_default_fraction": stats.cluster.non_default_fraction,
        "degraded_ok": float(degraded_ok),
        "recovered": float(recovered),
        "rebalance_ok": float(rebalance_ok),
        "degraded_decisions": float(degraded_stats.degraded_decisions),
        "rebalanced_rows": float(degraded_stats.rebalanced_rows),
    }
