"""One function per paper table / figure.

Every function returns plain dictionaries of numbers (no plotting), sized
by a ``scale`` argument so that the benchmark harness can regenerate the
figures quickly on a laptop while tests use even smaller scales.  Absolute
numbers will differ from the paper (the substrate is a simulator, not the
authors' PostgreSQL testbed), but the *shapes* -- which method wins, by
roughly what factor, and where the crossovers fall -- are what these
functions reproduce.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ALSConfig, ExplorationConfig, TCNNConfig
from ..core.matrix_completion import (
    ALSCompleter,
    NuclearNormCompleter,
    SVTCompleter,
    completion_mse,
)
from ..core.policies import LimeQOPolicy
from ..core.predictors import ALSPredictor
from ..core.simulation import ExplorationSimulator
from ..core.workload_matrix import WorkloadMatrix
from ..core.explorer import MatrixOracle, OfflineExplorer
from ..baselines.bayesqo import BayesQO
from ..workloads.matrices import SyntheticWorkload, generate_workload
from ..workloads.shift import (
    DataDriftModel,
    add_etl_query,
    apply_data_shift,
    changed_optimal_fraction,
    split_for_workload_shift,
)
from ..workloads.spec import (
    CEB_SPEC,
    DSB_SPEC,
    JOB_SPEC,
    STACK_SPEC,
    get_spec,
)
from .runner import (
    FAST_TCNN_CONFIG,
    default_checkpoints,
    make_policy,
    run_policy_on_workload,
)

DEFAULT_POLICIES = ("qo-advisor", "bao-cache", "random", "greedy", "limeqo", "limeqo+")
LINEAR_POLICIES = ("qo-advisor", "random", "greedy", "limeqo")


def _load_workload(name: str, scale: float, seed: int) -> SyntheticWorkload:
    spec = get_spec(name)
    if scale < 1.0:
        spec = spec.scaled(scale)
    return generate_workload(spec, seed=seed)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_workload_summary(scale: float = 1.0, seed: int = 0) -> Dict[str, Dict]:
    """Table 1: per-workload Default and Optimal totals plus headroom."""
    out: Dict[str, Dict] = {}
    for spec in (JOB_SPEC, CEB_SPEC, STACK_SPEC, DSB_SPEC):
        scaled = spec if scale >= 1.0 else spec.scaled(scale)
        workload = generate_workload(scaled, seed=seed)
        out[spec.name] = {
            "n_queries": workload.n_queries,
            "n_hints": workload.n_hints,
            "default_total_s": workload.default_total,
            "optimal_total_s": workload.optimal_total,
            "headroom": workload.headroom,
            "paper_default_s": spec.default_total * (scaled.n_queries / spec.n_queries),
            "paper_optimal_s": spec.optimal_total * (scaled.n_queries / spec.n_queries),
            "exhaustive_exploration_s": workload.exhaustive_exploration_time(),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 5 / Figure 6
# ---------------------------------------------------------------------------
def figure5_performance(
    workload_names: Sequence[str] = ("ceb", "job", "stack", "dsb"),
    scale: float = 0.05,
    policies: Sequence[str] = DEFAULT_POLICIES,
    batch_size: int = 10,
    seed: int = 0,
    tcnn_config: Optional[TCNNConfig] = None,
    max_steps: Optional[int] = None,
) -> Dict[str, Dict]:
    """Figure 5: total latency at [1/4, 1/2, 1, 2, 4] x default time."""
    results: Dict[str, Dict] = {}
    for name in workload_names:
        workload = _load_workload(name, scale, seed)
        checkpoints = default_checkpoints(workload)
        per_policy = {}
        for policy_name in policies:
            run = run_policy_on_workload(
                workload,
                policy_name,
                checkpoints=checkpoints,
                batch_size=batch_size,
                seed=seed,
                tcnn_config=tcnn_config or FAST_TCNN_CONFIG,
                max_steps=max_steps,
            )
            per_policy[policy_name] = {
                "checkpoints": run.checkpoints.tolist(),
                "latencies": run.latencies.tolist(),
            }
        results[name] = {
            "default_total": workload.default_total,
            "optimal_total": workload.optimal_total,
            "policies": per_policy,
        }
    return results


def figure6_ceb_curves(
    scale: float = 0.05,
    policies: Sequence[str] = DEFAULT_POLICIES,
    budget_multiplier: float = 2.0,
    batch_size: int = 10,
    seed: int = 0,
    tcnn_config: Optional[TCNNConfig] = None,
) -> Dict[str, Dict]:
    """Figure 6: latency-vs-exploration-time curves on CEB."""
    workload = _load_workload("ceb", scale, seed)
    budget = budget_multiplier * workload.default_total
    curves: Dict[str, Dict] = {}
    for policy_name in policies:
        run = run_policy_on_workload(
            workload,
            policy_name,
            checkpoints=[budget],
            time_budget=budget,
            batch_size=batch_size,
            seed=seed,
            tcnn_config=tcnn_config or FAST_TCNN_CONFIG,
        )
        curves[policy_name] = {
            "times": run.trace.times.tolist(),
            "latencies": run.trace.latencies.tolist(),
        }
    return {
        "default_total": workload.default_total,
        "optimal_total": workload.optimal_total,
        "curves": curves,
    }


# ---------------------------------------------------------------------------
# Figure 7 / Figure 13 (overhead)
# ---------------------------------------------------------------------------
def figure7_overhead(
    scale: float = 0.05,
    batch_size: int = 10,
    seed: int = 0,
    budget_multiplier: float = 2.0,
    tcnn_config: Optional[TCNNConfig] = None,
    gpu_speedup_estimate: float = 5.45,
) -> Dict[str, Dict]:
    """Figure 7: cumulative model overhead for LimeQO vs LimeQO+.

    The paper also measures LimeQO+ on an A100 GPU (3600 s -> 660 s, a
    ~5.45x speedup); no GPU is available here, so that series is reported as
    a documented estimate derived from the measured CPU overhead.
    """
    workload = _load_workload("ceb", scale, seed)
    budget = budget_multiplier * workload.default_total
    checkpoints = np.linspace(budget / 4, budget, 4)
    out: Dict[str, Dict] = {"checkpoints": checkpoints.tolist()}
    for policy_name in ("limeqo", "limeqo+"):
        run = run_policy_on_workload(
            workload,
            policy_name,
            checkpoints=checkpoints,
            time_budget=budget,
            batch_size=batch_size,
            seed=seed,
            tcnn_config=tcnn_config or FAST_TCNN_CONFIG,
        )
        out[policy_name] = {"overheads": run.overheads.tolist()}
    out["limeqo+(gpu-estimate)"] = {
        "overheads": (
            np.asarray(out["limeqo+"]["overheads"]) / gpu_speedup_estimate
        ).tolist()
    }
    measured_plus = out["limeqo+"]["overheads"][-1]
    measured_linear = max(out["limeqo"]["overheads"][-1], 1e-9)
    out["overhead_ratio"] = measured_plus / measured_linear
    return out


def figure13_overhead_tcnn(
    scale: float = 0.03,
    batch_size: int = 10,
    seed: int = 0,
    budget_multiplier: float = 1.0,
    tcnn_config: Optional[TCNNConfig] = None,
) -> Dict[str, Dict]:
    """Figure 13: overhead of the pure TCNN vs the transductive TCNN."""
    workload = _load_workload("ceb", scale, seed)
    budget = budget_multiplier * workload.default_total
    checkpoints = np.linspace(budget / 4, budget, 4)
    out: Dict[str, Dict] = {"checkpoints": checkpoints.tolist()}
    for policy_name in ("tcnn", "limeqo+"):
        run = run_policy_on_workload(
            workload,
            policy_name,
            checkpoints=checkpoints,
            time_budget=budget,
            batch_size=batch_size,
            seed=seed,
            tcnn_config=tcnn_config or FAST_TCNN_CONFIG,
        )
        out[policy_name] = {"overheads": run.overheads.tolist()}
    return out


# ---------------------------------------------------------------------------
# Figure 8 (ETL query) and Figure 12 (TCNN vs LimeQO+)
# ---------------------------------------------------------------------------
def figure8_etl(
    scale: float = 0.03,
    batch_size: int = 10,
    seed: int = 0,
    budget_multiplier: float = 2.0,
    etl_latency: Optional[float] = None,
) -> Dict[str, Dict]:
    """Figure 8: Greedy wastes time on an ETL query, LimeQO ignores it."""
    workload = _load_workload("stack", scale, seed)
    if etl_latency is None:
        # The paper's ETL query (576.5 s) dwarfs the scaled workload; keep
        # the same *relative* weight: roughly 10% of the default total.
        etl_latency = 0.1 * workload.default_total
    workload = add_etl_query(workload, latency=etl_latency, seed=seed)
    budget = budget_multiplier * workload.default_total
    checkpoints = np.linspace(budget / 8, budget, 8)
    out: Dict[str, Dict] = {
        "default_total": workload.default_total,
        "checkpoints": checkpoints.tolist(),
    }
    for policy_name in ("greedy", "limeqo"):
        run = run_policy_on_workload(
            workload,
            policy_name,
            checkpoints=checkpoints,
            time_budget=budget,
            batch_size=batch_size,
            seed=seed,
        )
        out[policy_name] = {"latencies": run.latencies.tolist()}
    return out


def figure12_tcnn_vs_limeqo_plus(
    scale: float = 0.03,
    batch_size: int = 10,
    seed: int = 0,
    budget_multiplier: float = 1.0,
    tcnn_config: Optional[TCNNConfig] = None,
) -> Dict[str, Dict]:
    """Figure 12: the embeddings make LimeQO+ beat the pure TCNN."""
    workload = _load_workload("ceb", scale, seed)
    budget = budget_multiplier * workload.default_total
    checkpoints = np.linspace(budget / 4, budget, 4)
    out: Dict[str, Dict] = {
        "default_total": workload.default_total,
        "optimal_total": workload.optimal_total,
        "checkpoints": checkpoints.tolist(),
    }
    for policy_name in ("tcnn", "limeqo+"):
        run = run_policy_on_workload(
            workload,
            policy_name,
            checkpoints=checkpoints,
            time_budget=budget,
            batch_size=batch_size,
            seed=seed,
            tcnn_config=tcnn_config or FAST_TCNN_CONFIG,
        )
        out[policy_name] = {"latencies": run.latencies.tolist()}
    return out


# ---------------------------------------------------------------------------
# Figure 9 (workload shift)
# ---------------------------------------------------------------------------
def figure9_workload_shift(
    scale: float = 0.05,
    batch_size: int = 10,
    seed: int = 0,
    initial_fraction: float = 0.7,
    shift_at_multiplier: float = 0.68,
    budget_multiplier: float = 2.0,
) -> Dict[str, Dict]:
    """Figure 9: 30% of the queries arrive mid-exploration.

    ``shift_at_multiplier`` positions the shift relative to the default
    workload time (the paper introduces the remaining queries at the 2-hour
    mark of the 2.94-hour CEB workload, i.e. ~0.68x).
    """
    workload = _load_workload("ceb", scale, seed)
    initial_idx, late_idx = split_for_workload_shift(
        workload, initial_fraction=initial_fraction, seed=seed
    )
    shift_time = shift_at_multiplier * workload.default_total
    budget = budget_multiplier * workload.default_total
    checkpoints = np.linspace(budget / 8, budget, 8)

    out: Dict[str, Dict] = {
        "default_total": workload.default_total,
        "optimal_total": workload.optimal_total,
        "shift_time": shift_time,
        "checkpoints": checkpoints.tolist(),
    }
    for policy_name in ("limeqo", "greedy"):
        trace = _run_with_workload_shift(
            workload, policy_name, initial_idx, late_idx, shift_time, budget,
            batch_size, seed,
        )
        out[policy_name + " (with shift)"] = {
            "latencies": [
                _step_value(trace["times"], trace["latencies"], t,
                            workload.default_total)
                for t in checkpoints
            ]
        }
        # Reference run: all queries available from the start.
        run = run_policy_on_workload(
            workload, policy_name, checkpoints=checkpoints, time_budget=budget,
            batch_size=batch_size, seed=seed,
        )
        out[policy_name] = {"latencies": run.latencies.tolist()}
    return out


def _step_value(times, values, t, default):
    times = np.asarray(times)
    values = np.asarray(values)
    idx = np.searchsorted(times, t, side="right") - 1
    if idx < 0:
        return float(default)
    return float(values[idx])


def _run_with_workload_shift(
    workload: SyntheticWorkload,
    policy_name: str,
    initial_idx: np.ndarray,
    late_idx: np.ndarray,
    shift_time: float,
    budget: float,
    batch_size: int,
    seed: int,
) -> Dict[str, List[float]]:
    """Two-phase exploration: subset first, full workload after the shift."""
    config = ExplorationConfig(batch_size=batch_size, seed=seed)
    full_latencies = workload.true_latencies
    n, k = full_latencies.shape

    # Phase 1: only the initial queries exist.
    matrix = WorkloadMatrix(n, k)
    late_set = set(late_idx.tolist())
    for q in range(n):
        if q not in late_set:
            matrix.observe(q, 0, float(full_latencies[q, 0]))
    # Rows for late queries stay fully unobserved, and the oracle's latencies
    # exist, but policies cannot benefit from exploring them before they are
    # registered; we exclude them by masking them as "observed" at +inf-free
    # default only after the shift.  To keep the phase-1 search honest we run
    # it on the subset matrix and copy observations over afterwards.
    sub_workload = workload.subset(initial_idx)
    sub_simulator = ExplorationSimulator(sub_workload.true_latencies, config=config)
    sub_matrix = sub_simulator.initial_matrix()
    policy = make_policy(policy_name, sub_workload)
    sub_oracle = MatrixOracle(sub_workload.true_latencies)
    sub_explorer = OfflineExplorer(sub_matrix, policy, sub_oracle, config)
    sub_explorer.run(time_budget=shift_time)

    # Queries not yet registered are served with the default plan, so the
    # full-workload latency at any phase-1 step is the subset's workload
    # latency plus the late queries' default latencies.
    late_default_total = float(full_latencies[sorted(late_set), 0].sum())
    times: List[float] = [0.0]
    latencies: List[float] = [float(full_latencies[:, 0].sum())]
    for step in sub_explorer.steps:
        times.append(step.cumulative_exploration_time)
        latencies.append(step.workload_latency + late_default_total)
    phase1_time = sub_explorer.cumulative_exploration_time

    # Phase 2: all queries exist; copy phase-1 observations into a full matrix.
    for local, original in enumerate(initial_idx):
        for j in range(k):
            if sub_matrix.is_observed(local, j):
                matrix.observe(int(original), j, sub_matrix.value(local, j))
            elif sub_matrix.is_censored(local, j):
                matrix.observe_censored(int(original), j, sub_matrix.value(local, j))
    for q in late_idx:
        matrix.observe(int(q), 0, float(full_latencies[q, 0]))

    policy2 = make_policy(policy_name, workload)
    oracle = MatrixOracle(full_latencies)
    explorer = OfflineExplorer(matrix, policy2, oracle, config)
    explorer.run(time_budget=max(budget - phase1_time, 0.0))
    for step in explorer.steps:
        times.append(phase1_time + step.cumulative_exploration_time)
        latencies.append(step.workload_latency)
    return {"times": times, "latencies": latencies}


# ---------------------------------------------------------------------------
# Figure 10 / Figure 11 (data drift)
# ---------------------------------------------------------------------------
def figure10_incremental_drift(
    scale: float = 0.05, seed: int = 0
) -> Dict[str, Dict]:
    """Figure 10: % of queries whose optimal hint changes per data age."""
    model = DataDriftModel()
    workload = _load_workload("stack-2017", scale, seed)
    out: Dict[str, Dict] = {"intervals": model.intervals(), "expected": [], "simulated": []}
    for interval in model.intervals():
        fraction = model.drift_fraction(interval)
        shifted = apply_data_shift(
            workload, changed_fraction=fraction, growth_factor=1.0 + fraction,
            seed=seed + hash(interval) % 1000,
        )
        out["expected"].append(fraction)
        out["simulated"].append(changed_optimal_fraction(workload, shifted))
    return out


def figure11_data_shift(
    scale: float = 0.05,
    batch_size: int = 10,
    seed: int = 0,
    pre_shift_multiplier: float = 2.0,
) -> Dict[str, Dict]:
    """Figure 11: recovery after a complete two-year data shift on Stack."""
    old_workload = _load_workload("stack-2017", scale, seed)
    new_workload = apply_data_shift(
        old_workload, changed_fraction=0.21, growth_factor=1.26, seed=seed,
        spec_name="stack-2019",
    )
    config = ExplorationConfig(batch_size=batch_size, seed=seed)
    checkpoints = new_workload.true_latencies[:, 0].sum() * np.array(
        [0.25, 0.5, 1.0, 2.0, 4.0]
    )
    out: Dict[str, Dict] = {
        "default_total": float(new_workload.true_latencies[:, 0].sum()),
        "optimal_total": float(new_workload.true_latencies.min(axis=1).sum()),
        "checkpoints": checkpoints.tolist(),
    }

    # Baselines that start fresh on the 2019 data.
    for policy_name in ("random", "greedy", "limeqo"):
        run = run_policy_on_workload(
            new_workload, policy_name, checkpoints=checkpoints,
            batch_size=batch_size, seed=seed,
        )
        out[policy_name] = {"latencies": run.latencies.tolist()}

    # LimeQO that explored the 2017 data first, then faces the shift.
    old_simulator = ExplorationSimulator(old_workload.true_latencies, config=config)
    old_matrix = old_simulator.initial_matrix()
    old_policy = LimeQOPolicy(predictor=ALSPredictor())
    old_oracle = MatrixOracle(old_workload.true_latencies)
    OfflineExplorer(old_matrix, old_policy, old_oracle, config).run(
        time_budget=pre_shift_multiplier * old_workload.default_total
    )
    # After the shift, previously verified hints are re-observed on the new
    # data during normal serving (not charged), then exploration continues.
    new_matrix = WorkloadMatrix(new_workload.n_queries, new_workload.n_hints)
    for q in range(new_workload.n_queries):
        new_matrix.observe(q, 0, float(new_workload.true_latencies[q, 0]))
        best = old_matrix.best_hint(q)
        if best is not None and best != 0:
            new_matrix.observe(q, best, float(new_workload.true_latencies[q, best]))
    shift_policy = LimeQOPolicy(predictor=ALSPredictor())
    shift_oracle = MatrixOracle(new_workload.true_latencies)
    shift_explorer = OfflineExplorer(new_matrix, shift_policy, shift_oracle, config)
    shift_explorer.run(time_budget=float(checkpoints.max()))
    times = [0.0] + [s.cumulative_exploration_time for s in shift_explorer.steps]
    latencies = [new_matrix_latency_start := new_matrix.workload_latency()] + [
        s.workload_latency for s in shift_explorer.steps
    ]
    out["limeqo (data shift)"] = {
        "latencies": [
            _step_value(times, latencies, t, new_matrix_latency_start)
            for t in checkpoints
        ],
        "carried_over_latency": new_matrix_latency_start,
    }
    return out


# ---------------------------------------------------------------------------
# Figure 14 (singular values), Figure 15 (rank), Figure 16 (censoring)
# ---------------------------------------------------------------------------
def figure14_singular_values(scale: float = 1.0, seed: int = 0) -> Dict[str, List[float]]:
    """Figure 14: spectrum of the CEB matrix vs a random matrix."""
    workload = _load_workload("ceb", scale, seed)
    matrix = workload.true_latencies
    singular = np.linalg.svd(matrix, compute_uv=False)
    rng = np.random.default_rng(seed)
    random_matrix = rng.uniform(matrix.min(), matrix.max(), size=matrix.shape)
    random_singular = np.linalg.svd(random_matrix, compute_uv=False)
    return {
        "workload_singular_values": singular.tolist(),
        "random_singular_values": random_singular.tolist(),
        "effective_rank_95": int(
            np.searchsorted(np.cumsum(singular ** 2) / np.sum(singular ** 2), 0.95) + 1
        ),
    }


def figure15_rank_ablation(
    ranks: Sequence[int] = (1, 2, 3, 5, 7, 9),
    scale: float = 0.05,
    batch_size: int = 10,
    seed: int = 0,
) -> Dict[str, Dict]:
    """Figure 15 (left): LimeQO's sensitivity to the rank hyper-parameter."""
    workload = _load_workload("ceb", scale, seed)
    checkpoints = default_checkpoints(workload)
    out: Dict[str, Dict] = {
        "checkpoints": checkpoints.tolist(),
        "default_total": workload.default_total,
        "optimal_total": workload.optimal_total,
        "ranks": {},
    }
    for rank in ranks:
        run = run_policy_on_workload(
            workload,
            "limeqo",
            checkpoints=checkpoints,
            batch_size=batch_size,
            seed=seed,
            als_config=ALSConfig(rank=int(rank)),
        )
        out["ranks"][int(rank)] = {"latencies": run.latencies.tolist()}
    return out


def figure16_censored_ablation(
    scale: float = 0.05,
    batch_size: int = 10,
    seed: int = 0,
    include_neural: bool = False,
    tcnn_config: Optional[TCNNConfig] = None,
) -> Dict[str, Dict]:
    """Figure 16: with vs without the censored technique."""
    workload = _load_workload("ceb", scale, seed)
    checkpoints = default_checkpoints(workload)
    out: Dict[str, Dict] = {
        "checkpoints": checkpoints.tolist(),
        "default_total": workload.default_total,
        "optimal_total": workload.optimal_total,
    }
    for censored in (True, False):
        run = run_policy_on_workload(
            workload,
            "limeqo",
            checkpoints=checkpoints,
            batch_size=batch_size,
            seed=seed,
            als_config=ALSConfig(censored=censored),
        )
        key = "limeqo" if censored else "limeqo (no censoring)"
        out[key] = {"latencies": run.latencies.tolist()}
    if include_neural:
        base = tcnn_config or FAST_TCNN_CONFIG
        for censored in (True, False):
            config = TCNNConfig(
                embedding_rank=base.embedding_rank,
                channels=base.channels,
                hidden_units=base.hidden_units,
                dropout=base.dropout,
                learning_rate=base.learning_rate,
                batch_size=base.batch_size,
                max_epochs=base.max_epochs,
                convergence_window=base.convergence_window,
                convergence_threshold=base.convergence_threshold,
                use_embeddings=True,
                censored=censored,
                seed=base.seed,
            )
            run = run_policy_on_workload(
                workload,
                "limeqo+",
                checkpoints=checkpoints,
                batch_size=batch_size,
                seed=seed,
                tcnn_config=config,
            )
            key = "limeqo+" if censored else "limeqo+ (no censoring)"
            out[key] = {"latencies": run.latencies.tolist()}
    return out


# ---------------------------------------------------------------------------
# Figure 17 (matrix-completion techniques) and Figure 18 (BayesQO)
# ---------------------------------------------------------------------------
def figure17_mc_comparison(
    fill_fractions: Sequence[float] = (0.1, 0.15, 0.2, 0.25, 0.3),
    scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict]:
    """Figure 17: accuracy vs wall-time of NUC, SVT and ALS on JOB."""
    workload = _load_workload("job", scale, seed)
    truth = workload.true_latencies
    rng = np.random.default_rng(seed)
    completers = {
        "nuc": NuclearNormCompleter(),
        "svt": SVTCompleter(),
        "als": ALSCompleter(ALSConfig()),
    }
    out: Dict[str, Dict] = {name: {"fill": [], "mse": [], "seconds": []} for name in completers}
    for p in fill_fractions:
        mask = (rng.random(truth.shape) < p).astype(float)
        # Always include the default column (it is observed in practice).
        mask[:, 0] = 1.0
        holdout = mask == 0
        observed = np.where(mask > 0, truth, 0.0)
        for name, completer in completers.items():
            start = time.perf_counter()
            try:
                completed = completer.complete(observed, mask)
                elapsed = time.perf_counter() - start
                mse = completion_mse(truth, completed, holdout)
            except Exception:  # noqa: BLE001 - SVT legitimately fails at low fill
                elapsed = time.perf_counter() - start
                mse = float("nan")
            out[name]["fill"].append(float(p))
            out[name]["mse"].append(float(mse))
            out[name]["seconds"].append(float(elapsed))
    return out


def figure18_bayesqo(
    scale: float = 1.0,
    per_query_budget: float = 3.0,
    batch_size: int = 5,
    seed: int = 0,
) -> Dict[str, Dict]:
    """Figure 18: workload-level LimeQO vs per-query BayesQO on JOB."""
    workload = _load_workload("job", scale, seed)
    oracle = MatrixOracle(workload.true_latencies)

    # BayesQO: every query gets the same fixed budget.
    bayes_matrix = WorkloadMatrix(workload.n_queries, workload.n_hints)
    for q in range(workload.n_queries):
        bayes_matrix.observe(q, 0, float(workload.true_latencies[q, 0]))
    bayes = BayesQO(
        oracle,
        workload.n_queries,
        workload.n_hints,
        per_query_budget=per_query_budget,
        hint_factors=workload.hint_factors,
        seed=seed,
    )
    bayes_times: List[float] = [0.0]
    bayes_latencies: List[float] = [workload.default_total]
    spent = 0.0
    for q in range(workload.n_queries):
        used, _ = bayes.optimize_query(bayes_matrix, q)
        spent += used
        bayes_times.append(spent)
        bayes_latencies.append(bayes_matrix.workload_latency())
    total_budget = max(spent, 1e-9)

    # LimeQO gets the same total offline time, allocated where it helps.
    run = run_policy_on_workload(
        workload,
        "limeqo",
        checkpoints=np.linspace(total_budget / 8, total_budget, 8),
        time_budget=total_budget,
        batch_size=batch_size,
        seed=seed,
    )
    return {
        "default_total": workload.default_total,
        "optimal_total": workload.optimal_total,
        "total_budget": total_budget,
        "bayesqo": {"times": bayes_times, "latencies": bayes_latencies},
        "limeqo": {
            "times": run.trace.times.tolist(),
            "latencies": run.trace.latencies.tolist(),
            "checkpoints": run.checkpoints.tolist(),
            "checkpoint_latencies": run.latencies.tolist(),
        },
    }
