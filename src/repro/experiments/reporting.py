"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows / series the paper's tables and
figures report, so a reader can compare shapes (who wins, by how much,
where the crossovers fall) without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as a fixed-width text table."""
    headers = [str(h) for h in headers]
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    x_label: str = "exploration_time",
    value_format: str = "{:.3f}",
) -> str:
    """Render {name: values} series sampled at shared x points."""
    headers = [x_label] + list(series.keys())
    rows: List[List] = []
    for i, x in enumerate(x_values):
        row: List = [value_format.format(float(x))]
        for name in series:
            values = series[name]
            row.append(value_format.format(float(values[i])) if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows)


def summarize_improvement(
    default_latency: float, latencies: Mapping[str, float]
) -> Dict[str, float]:
    """Percentage latency reduction versus the default plan, per method."""
    out = {}
    for name, latency in latencies.items():
        out[name] = 100.0 * (1.0 - float(latency) / float(default_latency))
    return out


def _fmt(cell) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.01):
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)
