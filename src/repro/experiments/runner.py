"""Shared experiment machinery: policy factory and checkpointed runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ALSConfig, ExplorationConfig, TCNNConfig
from ..core.policies import (
    BaoCachePolicy,
    ExplorationPolicy,
    GreedyPolicy,
    LimeQOPlusPolicy,
    LimeQOPolicy,
    QOAdvisorPolicy,
    RandomPolicy,
)
from ..core.predictors import ALSPredictor, TCNNPredictor, TransductiveTCNNPredictor
from ..core.simulation import ExplorationSimulator, ExplorationTrace
from ..errors import ExperimentError
from ..workloads.matrices import SyntheticWorkload

POLICY_NAMES = (
    "random",
    "greedy",
    "qo-advisor",
    "bao-cache",
    "limeqo",
    "limeqo+",
)

# A deliberately small TCNN configuration used by the benchmark harness so
# the neural method stays tractable on CPU-only numpy.
FAST_TCNN_CONFIG = TCNNConfig(
    embedding_rank=5,
    channels=(16, 8),
    hidden_units=(16,),
    dropout=0.3,
    learning_rate=2e-3,
    batch_size=64,
    max_epochs=12,
    convergence_window=4,
    convergence_threshold=0.01,
)


def make_policy(
    name: str,
    workload: SyntheticWorkload,
    als_config: Optional[ALSConfig] = None,
    tcnn_config: Optional[TCNNConfig] = None,
) -> ExplorationPolicy:
    """Build one of the six compared exploration policies for a workload."""
    name = name.lower()
    als_config = als_config or ALSConfig()
    tcnn_config = tcnn_config or FAST_TCNN_CONFIG
    if name == "random":
        return RandomPolicy()
    if name == "greedy":
        return GreedyPolicy()
    if name == "qo-advisor":
        return QOAdvisorPolicy(workload.optimizer_costs)
    if name == "bao-cache":
        predictor = TCNNPredictor(workload.feature_store(), tcnn_config)
        return BaoCachePolicy(predictor)
    if name == "limeqo":
        return LimeQOPolicy(predictor=ALSPredictor(als_config))
    if name == "tcnn":
        # Pure TCNN ablation (Figure 12): Algorithm 1's selection, but the
        # predictive model has no query/hint embeddings.
        predictor = TCNNPredictor(workload.feature_store(), tcnn_config)
        return LimeQOPolicy(predictor=predictor)
    if name in ("limeqo+", "limeqo-plus"):
        predictor = TransductiveTCNNPredictor(workload.feature_store(), tcnn_config)
        return LimeQOPlusPolicy(predictor)
    raise ExperimentError(
        f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
    )


@dataclass
class CheckpointedRun:
    """One policy's latencies sampled at fixed exploration-time checkpoints."""

    policy: str
    checkpoints: np.ndarray
    latencies: np.ndarray
    overheads: np.ndarray
    trace: ExplorationTrace

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-Python view used by the reporting helpers."""
        return {
            "policy": self.policy,
            "checkpoints": self.checkpoints.tolist(),
            "latencies": self.latencies.tolist(),
            "overheads": self.overheads.tolist(),
        }


def default_checkpoints(workload: SyntheticWorkload) -> np.ndarray:
    """The paper's x-axis: [1/4, 1/2, 1, 2, 4] x the default workload time."""
    return workload.default_total * np.array([0.25, 0.5, 1.0, 2.0, 4.0])


def run_policy_on_workload(
    workload: SyntheticWorkload,
    policy_name: str,
    checkpoints: Optional[Sequence[float]] = None,
    batch_size: int = 10,
    seed: int = 0,
    als_config: Optional[ALSConfig] = None,
    tcnn_config: Optional[TCNNConfig] = None,
    time_budget: Optional[float] = None,
    max_steps: Optional[int] = None,
) -> CheckpointedRun:
    """Run one policy on one workload and sample it at the checkpoints."""
    checkpoints = (
        np.asarray(checkpoints, dtype=float)
        if checkpoints is not None
        else default_checkpoints(workload)
    )
    budget = float(time_budget) if time_budget is not None else float(checkpoints.max())
    config = ExplorationConfig(batch_size=batch_size, seed=seed)
    simulator = ExplorationSimulator(workload.true_latencies, config=config)
    policy = make_policy(
        policy_name, workload, als_config=als_config, tcnn_config=tcnn_config
    )
    trace = simulator.run(policy, time_budget=budget, max_steps=max_steps)
    latencies = trace.latencies_at(checkpoints)
    overheads = np.array([trace.overhead_at(t) for t in checkpoints])
    return CheckpointedRun(
        policy=policy_name,
        checkpoints=checkpoints,
        latencies=latencies,
        overheads=overheads,
        trace=trace,
    )


@dataclass
class PolicyComparison:
    """Run several policies (optionally several seeds) on one workload."""

    workload: SyntheticWorkload
    policies: Sequence[str] = POLICY_NAMES
    checkpoints: Optional[Sequence[float]] = None
    batch_size: int = 10
    repetitions: int = 1
    seed: int = 0
    als_config: Optional[ALSConfig] = None
    tcnn_config: Optional[TCNNConfig] = None
    max_steps: Optional[int] = None
    results: Dict[str, List[CheckpointedRun]] = field(default_factory=dict)

    def run(self) -> Dict[str, List[CheckpointedRun]]:
        """Execute every (policy, repetition) pair."""
        for policy_name in self.policies:
            runs = []
            for rep in range(self.repetitions):
                runs.append(
                    run_policy_on_workload(
                        self.workload,
                        policy_name,
                        checkpoints=self.checkpoints,
                        batch_size=self.batch_size,
                        seed=self.seed + rep,
                        als_config=self.als_config,
                        tcnn_config=self.tcnn_config,
                        max_steps=self.max_steps,
                    )
                )
            self.results[policy_name] = runs
        return self.results

    def mean_latencies(self) -> Dict[str, np.ndarray]:
        """Per-policy mean latency at each checkpoint across repetitions."""
        if not self.results:
            raise ExperimentError("call run() before mean_latencies()")
        return {
            policy: np.mean([run.latencies for run in runs], axis=0)
            for policy, runs in self.results.items()
        }

    def std_latencies(self) -> Dict[str, np.ndarray]:
        """Per-policy latency standard deviation at each checkpoint."""
        if not self.results:
            raise ExperimentError("call run() before std_latencies()")
        return {
            policy: np.std([run.latencies for run in runs], axis=0)
            for policy, runs in self.results.items()
        }
