"""Serving-throughput experiment: batched vs per-query decision loops.

Not a paper figure -- it quantifies the engineering headroom of the
:mod:`repro.serving` subsystem on top of the paper's online path: how many
hint decisions per second the verified plan cache sustains when arrivals
are answered one Python call at a time versus in vectorised batches.
``benchmarks/test_serving_throughput.py`` prints the resulting table and
asserts the decisions are identical cell-for-cell.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..core.plan_cache import PlanCache
from ..core.workload_matrix import WorkloadMatrix
from ..errors import ExperimentError
from ..serving.service import ServingService
from ..workloads.matrices import SyntheticWorkload


def explored_matrix(
    workload: SyntheticWorkload,
    observed_fraction: float = 0.25,
    seed: int = 0,
) -> WorkloadMatrix:
    """A workload matrix mid-exploration: default column plus random cells.

    Mirrors the state the serving layer sees in steady operation -- every
    query has its default latency (executed as part of normal operation)
    and offline exploration has revealed a fraction of the other cells.
    """
    if not 0.0 <= observed_fraction <= 1.0:
        raise ExperimentError(
            f"observed_fraction must be in [0, 1], got {observed_fraction}"
        )
    n, k = workload.true_latencies.shape
    matrix = WorkloadMatrix(n, k)
    rng = np.random.default_rng(seed)
    extra = rng.random((n, k)) < observed_fraction
    extra[:, 0] = True  # the default column is always observed first
    rows, cols = np.nonzero(extra)
    matrix.observe_batch(rows, cols, workload.true_latencies[rows, cols])
    return matrix


def serving_throughput_comparison(
    workload: SyntheticWorkload,
    batch_size: int = 256,
    n_batches: int = 64,
    observed_fraction: float = 0.25,
    regression_margin: float = 1.0,
    seed: int = 0,
    matrix: Optional[WorkloadMatrix] = None,
) -> Dict[str, float]:
    """Serve the same arrival stream per-query and batched; compare.

    Returns a dictionary with per-query and batched decisions/sec, the
    speedup, serving-stats percentiles, and an ``identical`` flag asserting
    the two paths chose the same hint for every arrival.
    """
    if batch_size < 1 or n_batches < 1:
        raise ExperimentError("batch_size and n_batches must be >= 1")
    if matrix is None:
        matrix = explored_matrix(
            workload, observed_fraction=observed_fraction, seed=seed
        )
    rng = np.random.default_rng(seed + 1)
    arrivals = rng.integers(0, matrix.n_queries, size=(n_batches, batch_size))

    # Per-query loop: the seed repo's online path, one lookup per arrival.
    scalar_cache = PlanCache(matrix, regression_margin=regression_margin)
    start = time.perf_counter()
    scalar_hints = [
        scalar_cache.lookup(int(q)).hint for batch in arrivals for q in batch
    ]
    per_query_seconds = time.perf_counter() - start

    # Batched serving: vectorised decisions over precomputed arrays.
    service = ServingService(matrix, regression_margin=regression_margin)
    batched_hints = np.empty(arrivals.size, dtype=np.int64)
    start = time.perf_counter()
    for i, batch in enumerate(arrivals):
        decisions = service.serve_batch(batch)
        batched_hints[i * batch_size:(i + 1) * batch_size] = decisions.hints
    batched_seconds = time.perf_counter() - start

    total = arrivals.size
    stats = service.stats()
    identical = bool(np.array_equal(np.asarray(scalar_hints), batched_hints))
    return {
        "queries": float(matrix.n_queries),
        "hints": float(matrix.n_hints),
        "batch_size": float(batch_size),
        "decisions": float(total),
        "per_query_qps": total / per_query_seconds if per_query_seconds > 0 else float("inf"),
        "batched_qps": total / batched_seconds if batched_seconds > 0 else float("inf"),
        "speedup": (
            per_query_seconds / batched_seconds if batched_seconds > 0 else float("inf")
        ),
        "p50_latency_us": stats.p50_latency_s * 1e6,
        "p99_latency_us": stats.p99_latency_s * 1e6,
        "non_default_fraction": stats.non_default_fraction,
        "identical": float(identical),
    }
