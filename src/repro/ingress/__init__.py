"""Async ingress: request coalescing, admission control, background loops.

The millions-of-users front door over the serving stack.  Independent
clients ``await serve(...)`` one query at a time; the ingress coalesces
concurrent requests into the vectorised batches
:class:`~repro.serving.ServingService` / :class:`~repro.cluster.ServingCluster`
are fast at (under a ``max_wait_s`` latency SLO), sheds overload to
default plans through a bounded admission queue (safe by the paper's
no-regression guarantee; counted in serving stats), and hosts the
adaptation-controller and refresh-scheduler ticks as background asyncio
tasks.

Decisions through the ingress are byte-identical to the synchronous
batch path -- coalescing changes when a snapshot lookup runs, never what
it returns.
"""

from .background import PeriodicTicker
from .coalescer import CoalescerCore
from .ingress import ClusterIngress, IngressDecision, IngressStats, ServiceIngress

__all__ = [
    "ClusterIngress",
    "CoalescerCore",
    "IngressDecision",
    "IngressStats",
    "PeriodicTicker",
    "ServiceIngress",
]
