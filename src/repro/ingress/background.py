"""Background asyncio tasks: the caller-driven cadences, promoted.

Until now every deployment had to drive the control loops itself: the
adaptation controller's :meth:`~repro.adaptive.AdaptationController.tick`
and the cluster's :meth:`~repro.cluster.ServingCluster.tick` (the
:class:`~repro.cluster.scheduler.RefreshScheduler`) only ran when some
caller remembered to call them between serve batches.  Under an asyncio
front door there is a natural place for that cadence to live instead:
the event loop.  :class:`PeriodicTicker` hosts one sync tick callable as
a long-running task that fires every ``interval_s`` of loop time.

Ticks run *on* the loop, not in a thread: the serving stack is built on
shared numpy state with no locks, and interleaving a warm ALS refresh
with a serve batch on another thread would race.  On the loop, a tick
serialises with flushes -- it can delay the next batch by its own
duration, but it can never corrupt state, and everything heavy (ALS)
was already budgeted to be incremental.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..errors import IngressError


def _consume_task_result(task: "asyncio.Task") -> None:
    """Retrieve a finished task's outcome so asyncio never warns about it."""
    if task.cancelled():
        return
    task.exception()


class PeriodicTicker:
    """Runs ``fn()`` every ``interval_s`` as a background asyncio task."""

    def __init__(
        self, fn: Callable[[], Any], interval_s: float, name: str = "tick"
    ) -> None:
        if interval_s <= 0:
            raise IngressError(f"interval_s must be > 0, got {interval_s}")
        self.fn = fn
        self.interval_s = float(interval_s)
        self.name = str(name)
        self.runs = 0
        self.errors = 0
        self.last_error: Optional[BaseException] = None
        self._task: Optional[asyncio.Task] = None

    @property
    def running(self) -> bool:
        """True while the background task is live."""
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Spawn the background task on the running event loop."""
        if self.running:
            raise IngressError(f"ticker {self.name!r} is already running")
        if self._task is not None:
            # A previous run finished (cancelled or crashed); make sure its
            # outcome is consumed so asyncio never logs "exception was
            # never retrieved" for a ticker we knowingly replaced.
            _consume_task_result(self._task)
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError as exc:
            raise IngressError(
                f"ticker {self.name!r} must be started from a running "
                "event loop"
            ) from exc
        self._task = loop.create_task(
            self._run(), name=f"repro-ticker-{self.name}"
        )

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            try:
                self.fn()
                self.runs += 1
            except asyncio.CancelledError:  # pragma: no cover - defensive
                raise
            except Exception as exc:
                # A failing control loop must never kill the front door:
                # serving without adaptation/refresh is degraded, serving
                # stopped is an outage.  The error is kept for telemetry.
                self.errors += 1
                self.last_error = exc

    async def stop(self) -> None:
        """Cancel the background task and wait for it to unwind.

        Safe to call at any point of the loop's life: a never-started or
        already-stopped ticker is a no-op, a task that already finished
        has its outcome consumed (so asyncio debug mode never warns about
        an unretrieved exception), and a live task is cancelled and
        awaited so nothing is left pending when the loop closes.
        """
        task, self._task = self._task, None
        if task is None:
            return
        if task.done():
            _consume_task_result(task)
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    def cancel(self) -> None:
        """Synchronously request cancellation (loop-teardown paths).

        For callers that cannot ``await`` -- e.g. a shutdown callback on a
        closing loop.  The task is cancelled and detached with its outcome
        consumed via a done-callback, so no pending-task or unretrieved-
        exception warning can leak; prefer :meth:`stop` when awaiting is
        possible, since only it guarantees the task has fully unwound.
        """
        task, self._task = self._task, None
        if task is None:
            return
        if task.done():
            _consume_task_result(task)
            return
        task.cancel()
        task.add_done_callback(_consume_task_result)

    def fire_now(self) -> None:
        """Run one tick synchronously (tests and drain paths)."""
        self.fn()
        self.runs += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return (
            f"PeriodicTicker({self.name!r}, every {self.interval_s}s, "
            f"{self.runs} runs, {state})"
        )
