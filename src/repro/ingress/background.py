"""Background asyncio tasks: the caller-driven cadences, promoted.

Until now every deployment had to drive the control loops itself: the
adaptation controller's :meth:`~repro.adaptive.AdaptationController.tick`
and the cluster's :meth:`~repro.cluster.ServingCluster.tick` (the
:class:`~repro.cluster.scheduler.RefreshScheduler`) only ran when some
caller remembered to call them between serve batches.  Under an asyncio
front door there is a natural place for that cadence to live instead:
the event loop.  :class:`PeriodicTicker` hosts one sync tick callable as
a long-running task that fires every ``interval_s`` of loop time.

Ticks run *on* the loop, not in a thread: the serving stack is built on
shared numpy state with no locks, and interleaving a warm ALS refresh
with a serve batch on another thread would race.  On the loop, a tick
serialises with flushes -- it can delay the next batch by its own
duration, but it can never corrupt state, and everything heavy (ALS)
was already budgeted to be incremental.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..errors import IngressError


class PeriodicTicker:
    """Runs ``fn()`` every ``interval_s`` as a background asyncio task."""

    def __init__(
        self, fn: Callable[[], Any], interval_s: float, name: str = "tick"
    ) -> None:
        if interval_s <= 0:
            raise IngressError(f"interval_s must be > 0, got {interval_s}")
        self.fn = fn
        self.interval_s = float(interval_s)
        self.name = str(name)
        self.runs = 0
        self.errors = 0
        self.last_error: Optional[BaseException] = None
        self._task: Optional[asyncio.Task] = None

    @property
    def running(self) -> bool:
        """True while the background task is live."""
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Spawn the background task on the running event loop."""
        if self.running:
            raise IngressError(f"ticker {self.name!r} is already running")
        self._task = asyncio.get_event_loop().create_task(self._run())

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            try:
                self.fn()
                self.runs += 1
            except asyncio.CancelledError:  # pragma: no cover - defensive
                raise
            except Exception as exc:
                # A failing control loop must never kill the front door:
                # serving without adaptation/refresh is degraded, serving
                # stopped is an outage.  The error is kept for telemetry.
                self.errors += 1
                self.last_error = exc

    async def stop(self) -> None:
        """Cancel the background task and wait for it to unwind."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    def fire_now(self) -> None:
        """Run one tick synchronously (tests and drain paths)."""
        self.fn()
        self.runs += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return (
            f"PeriodicTicker({self.name!r}, every {self.interval_s}s, "
            f"{self.runs} runs, {state})"
        )
