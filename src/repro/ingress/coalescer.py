"""The request coalescer's pure core: a batching state machine.

Coalescing is what makes the serving layer's batch wins free for
independent clients: PR 1 measured ~82x per-query throughput for batched
decisions over one-at-a-time lookups, but only for callers that hand the
service a pre-assembled batch.  :class:`CoalescerCore` assembles those
batches from single-request arrivals under two knobs:

* ``max_batch`` -- a flush fires as soon as this many requests are
  pending (the throughput knob);
* ``max_wait_s`` -- a flush fires when the *oldest* pending request has
  waited this long (the latency-SLO knob: no admitted request is ever
  delayed by coalescing for more than ``max_wait_s`` before its batch is
  handed to the backend).

Admission control is a bounded queue: when ``queue_capacity`` requests
are already pending, new arrivals are *shed* -- :meth:`submit` returns
``None``, and the caller answers them with the default plan immediately.
The paper's no-regression guarantee is anchored on the default plan, so
load-shedding degrades latency upside, never correctness, and produces
no error responses.

The core is deliberately free of asyncio and wall clocks: callers pass
``now`` explicitly.  That keeps every timing property deterministic and
directly testable -- the hypothesis suite drives this class through
arbitrary interleavings with a fake clock and asserts the FIFO, routing,
and SLO invariants exactly.  :class:`~repro.ingress.ingress.ServiceIngress`
is the thin asyncio shell that wires it to futures and timers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from ..config import IngressConfig
from ..errors import IngressError


class CoalescerCore:
    """Batching + admission state machine, driven by an explicit clock.

    The contract the asyncio shell (and the property tests) rely on:

    * :meth:`submit` admits a request (returning a unique monotonically
      increasing token) or sheds it (returning ``None``) -- admission is
      decided purely by the current queue depth;
    * admitted requests leave in FIFO order, each in exactly one batch of
      at most ``max_batch``;
    * :meth:`ready` becomes True no later than ``max_wait_s`` after the
      oldest pending request's submit time, so a shell that flushes
      whenever ``ready`` holds (and arms a timer for
      :meth:`next_deadline` otherwise) never queues a request past the
      SLO bound.
    """

    def __init__(self, config: Optional[IngressConfig] = None) -> None:
        self.config = config or IngressConfig()
        self._pending: Deque[Tuple[int, Any, float]] = deque()
        self._next_token = 0
        # Telemetry (monotone counters, read by IngressStats).
        self.submitted = 0
        self.shed = 0
        self.flushed_batches = 0
        self.flushed_requests = 0
        self.max_queue_depth = 0
        self._wait_seconds_total = 0.0
        self._max_wait_seen = 0.0

    # -- admission ---------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently pending (admitted, not yet flushed)."""
        return len(self._pending)

    def submit(self, payload: Any, now: float) -> Optional[int]:
        """Admit one request at time ``now``.

        Returns the request's token, or ``None`` when the bounded queue is
        full and the request must be shed to the default plan.
        """
        self.submitted += 1
        if len(self._pending) >= self.config.queue_capacity:
            self.shed += 1
            return None
        token = self._next_token
        self._next_token += 1
        self._pending.append((token, payload, float(now)))
        if len(self._pending) > self.max_queue_depth:
            self.max_queue_depth = len(self._pending)
        return token

    # -- flush timing ------------------------------------------------------------
    def next_deadline(self) -> Optional[float]:
        """Absolute time the oldest pending request hits the SLO bound."""
        if not self._pending:
            return None
        return self._pending[0][2] + self.config.max_wait_s

    def ready(self, now: float) -> bool:
        """True when a batch must be flushed at time ``now``."""
        if not self._pending:
            return False
        if len(self._pending) >= self.config.max_batch:
            return True
        return now >= self._pending[0][2] + self.config.max_wait_s

    # -- flushing ----------------------------------------------------------------
    def take_batch(
        self, now: float, force: bool = False
    ) -> List[Tuple[int, Any]]:
        """Pop the next batch of up to ``max_batch`` ``(token, payload)``.

        Returns an empty list when no batch is due (unless ``force``,
        which drains regardless -- the shell uses it on shutdown).  The
        batch is the FIFO prefix of the queue, so a flush always serves
        the requests closest to their SLO bound first.
        """
        if not force and not self.ready(now):
            return []
        batch: List[Tuple[int, Any]] = []
        while self._pending and len(batch) < self.config.max_batch:
            token, payload, enqueued_at = self._pending.popleft()
            waited = float(now) - enqueued_at
            if waited < 0:
                raise IngressError(
                    f"clock went backwards: flush at {now} before submit at "
                    f"{enqueued_at}"
                )
            self._wait_seconds_total += waited
            if waited > self._max_wait_seen:
                self._max_wait_seen = waited
            batch.append((token, payload))
        if batch:
            self.flushed_batches += 1
            self.flushed_requests += len(batch)
        return batch

    # -- telemetry ----------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        """Average size of the batches flushed so far."""
        if self.flushed_batches == 0:
            return 0.0
        return self.flushed_requests / self.flushed_batches

    @property
    def mean_queue_wait_s(self) -> float:
        """Average time an admitted request spent waiting for its flush."""
        if self.flushed_requests == 0:
            return 0.0
        return self._wait_seconds_total / self.flushed_requests

    @property
    def max_queue_wait_s(self) -> float:
        """Longest time any flushed request spent in the queue."""
        return self._max_wait_seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoalescerCore(depth={self.queue_depth}, "
            f"submitted={self.submitted}, shed={self.shed}, "
            f"batches={self.flushed_batches}, "
            f"mean_batch={self.mean_batch_size:.1f})"
        )
