"""The asyncio front door: single-request awaits, batched execution.

:class:`ServiceIngress` (over a :class:`~repro.serving.ServingService`)
and :class:`ClusterIngress` (over a :class:`~repro.cluster.ServingCluster`)
give every independent client the same one-line interface::

    async with ServiceIngress(service) as ingress:
        decision = await ingress.serve(query)

Under the hood, concurrent ``serve`` calls land in a
:class:`~repro.ingress.coalescer.CoalescerCore` bounded queue and are
flushed to the backend as one vectorised batch -- when ``max_batch``
requests are pending, or when the oldest has waited ``max_wait_s``
(whichever first).  Each caller's await resolves with exactly the
decision the synchronous batch path would have produced for its query:
coalescing changes *when* the snapshot lookup happens, never *what* it
returns, so decisions are byte-identical to sync serving (asserted
against scenario-engine traffic in ``benchmarks/test_ingress_load.py``).

Overflow past ``queue_capacity`` is shed, not errored: the arrival is
answered immediately with the default plan -- the anchor of the paper's
no-regression guarantee -- and counted in the backend's stats
(``ServingStats.shed`` / ``ClusterStats.shed_decisions``).

The ingress also *hosts* the control loops that previously relied on
caller-driven cadence: the adaptation controller's detection tick and
the warm-ALS refresh tick run as background asyncio tasks
(:class:`~repro.ingress.background.PeriodicTicker`) for as long as the
ingress is started.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..cluster.cluster import ServingCluster
from ..config import IngressConfig
from ..errors import IngressError
from ..serving.batch_cache import BatchDecisions
from ..serving.service import ServingService
from .background import PeriodicTicker
from .coalescer import CoalescerCore


class IngressDecision(NamedTuple):
    """One arrival's answer, as the async caller receives it.

    ``tenant`` is ``None`` for single-service ingress.  ``shed`` marks
    decisions produced by admission control instead of the decision
    arrays; shed answers always carry the default plan with an unknown
    (infinite) expected latency.
    """

    tenant: Optional[str]
    query: int
    hint: int
    used_default: bool
    expected_latency: float
    shed: bool = False


@dataclass(frozen=True)
class IngressStats:
    """Point-in-time report over everything the front door has seen."""

    submitted: int
    served: int
    shed: int
    queue_depth: int
    flushed_batches: int
    mean_batch_size: float
    max_queue_depth: int
    mean_queue_wait_s: float
    max_queue_wait_s: float
    background_ticks: Dict[str, int]

    def as_dict(self) -> Dict[str, Any]:
        """Plain dictionary for dashboards and benchmark JSON."""
        return {
            "submitted": int(self.submitted),
            "served": int(self.served),
            "shed": int(self.shed),
            "queue_depth": int(self.queue_depth),
            "flushed_batches": int(self.flushed_batches),
            "mean_batch_size": float(self.mean_batch_size),
            "max_queue_depth": int(self.max_queue_depth),
            "mean_queue_wait_s": float(self.mean_queue_wait_s),
            "max_queue_wait_s": float(self.max_queue_wait_s),
            "background_ticks": dict(self.background_ticks),
        }

    def __str__(self) -> str:
        return (
            f"IngressStats({self.submitted} submitted, {self.served} served, "
            f"{self.shed} shed, mean_batch={self.mean_batch_size:.1f}, "
            f"max_depth={self.max_queue_depth}, "
            f"max_wait={self.max_queue_wait_s * 1e3:.2f}ms)"
        )


class _BaseIngress:
    """Shared coalescing/flush/lifecycle machinery of both front doors.

    Everything runs on one event loop: submits, flushes, and background
    ticks interleave but never overlap, so the (lock-free, numpy-backed)
    serving stack underneath is only ever touched from one frame at a
    time.  Dispatch is deliberately *deferred* (a ``call_soon`` drain
    callback, never an inline flush): every submit already runnable in
    the current loop iteration joins -- or overflows -- the queue before
    any batch is cut, which is what makes both coalescing and bounded-
    queue admission control real under a burst of concurrent callers.
    """

    def __init__(
        self,
        config: Optional[IngressConfig] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or IngressConfig()
        self._clock = clock
        self._core = CoalescerCore(self.config)
        self._waiters: Dict[int, asyncio.Future] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        self._drain_scheduled = False
        self.tickers: List[PeriodicTicker] = []
        # Set by subclasses from their backend's (already normalised)
        # telemetry context; None keeps the flush path uninstrumented.
        self._telemetry = None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and spawn the background control tasks."""
        if self._started:
            raise IngressError("ingress is already started")
        self._loop = asyncio.get_running_loop()
        self._started = True
        for ticker in self.tickers:
            ticker.start()

    async def stop(self) -> None:
        """Drain pending requests, then stop timers and background tasks.

        Every admitted request is still answered (force-flushed through
        the backend in FIFO batches); nothing is dropped on shutdown.
        """
        if not self._started:
            return
        self._cancel_timer()
        while self._core.queue_depth:
            self._flush_one(self._clock(), force=True)
        for ticker in self.tickers:
            await ticker.stop()
        self._started = False

    async def __aenter__(self) -> "_BaseIngress":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- the request path ---------------------------------------------------------
    async def _enqueue(self, payload: Any) -> IngressDecision:
        if not self._started:
            raise IngressError("ingress is not started (use 'async with' or start())")
        now = self._clock()
        token = self._core.submit(payload, now)
        if token is None:
            # Admission control: full queue -> immediate default-plan
            # answer.  No queueing, no backend work, no error.
            self._record_shed(1)
            return self._shed_decision(payload)
        future = self._loop.create_future()
        self._waiters[token] = future
        if self._core.ready(now):
            # Size trigger: dispatch on the *next* loop iteration, not
            # inline.  Every submit already runnable in this iteration
            # gets to join (or overflow) the queue first -- that is what
            # makes both coalescing and admission control real under a
            # burst of concurrent callers.
            self._schedule_drain()
        else:
            self._arm_timer(now)
        return await future

    async def serve_many(self, payloads: Sequence[Any]) -> List[IngressDecision]:
        """Submit many independent requests concurrently; gather in order.

        Equivalent to ``asyncio.gather`` over per-payload :meth:`serve`
        calls (same admission, same batches, same answers) but submits
        straight into the coalescer -- one future per request instead of
        one coroutine frame per request, which matters at 100k+ rps.
        """
        if not self._started:
            raise IngressError("ingress is not started (use 'async with' or start())")
        results: List[Optional[IngressDecision]] = [None] * len(payloads)
        futures: List[Tuple[int, asyncio.Future]] = []
        now = self._clock()
        shed = 0
        for i, payload in enumerate(payloads):
            token = self._core.submit(payload, now)
            if token is None:
                shed += 1
                results[i] = self._shed_decision(payload)
            else:
                future = self._loop.create_future()
                self._waiters[token] = future
                futures.append((i, future))
        if shed:
            self._record_shed(shed)
        if futures:
            if self._core.ready(now):
                self._schedule_drain()
            else:
                self._arm_timer(now)
        for i, future in futures:
            results[i] = await future
        return results

    # -- flush machinery ----------------------------------------------------------
    def _arm_timer(self, now: float) -> None:
        if self._timer is not None:
            return
        deadline = self._core.next_deadline()
        if deadline is None:
            return
        self._timer = self._loop.call_later(
            max(0.0, deadline - now), self._on_timer
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        self._loop.call_soon(self._drain)

    def _on_timer(self) -> None:
        self._timer = None
        self._drain()

    def _drain(self) -> None:
        """Dispatch every due batch, then re-arm the SLO timer.

        Runs as a plain loop callback with no awaits inside, so a drain
        pass can never interleave with submits: the queue it sees is
        exactly the queue the burst built.
        """
        self._drain_scheduled = False
        now = self._clock()
        while self._core.ready(now):
            self._flush_one(now)
        self._cancel_timer()
        if self._core.queue_depth:
            self._arm_timer(now)

    def _flush_one(self, now: float, force: bool = False) -> None:
        batch = self._core.take_batch(now, force=force)
        if not batch:
            return
        tokens = [token for token, _ in batch]
        payloads = [payload for _, payload in batch]
        tel = self._telemetry
        if tel is not None:
            # The trace root: inner stages (router.split, shard.serve,
            # cache.lookup) recorded during _serve_payloads attach to it.
            tel.tracer.start("ingress.flush", batch_size=len(payloads))
            flush_start = time.perf_counter()
        try:
            results = self._serve_payloads(payloads)
        except Exception as exc:
            # Payloads are validated before admission, and the backend
            # degrades internally (failover, default plans) -- so this
            # is a genuine bug or resource failure.  Every caller in
            # the batch gets the exception; later batches are isolated.
            if tel is not None:
                tel.tracer.abandon()
            for token in tokens:
                future = self._waiters.pop(token, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
        else:
            if tel is not None:
                tel.tracer.record_stage(
                    "ingress.flush", time.perf_counter() - flush_start
                )
                tel.tracer.finish()
            for token, decision in zip(tokens, results):
                future = self._waiters.pop(token, None)
                if future is not None and not future.done():
                    future.set_result(decision)

    # -- subclass hooks -----------------------------------------------------------
    def _serve_payloads(self, payloads: List[Any]) -> List[IngressDecision]:
        raise NotImplementedError

    def _shed_decision(self, payload: Any) -> IngressDecision:
        raise NotImplementedError

    def _record_shed(self, count: int) -> None:
        raise NotImplementedError

    # -- telemetry ----------------------------------------------------------------
    def stats(self) -> IngressStats:
        """Coalescing/admission report (backend stats live on the backend)."""
        core = self._core
        return IngressStats(
            submitted=core.submitted,
            served=core.flushed_requests,
            shed=core.shed,
            queue_depth=core.queue_depth,
            flushed_batches=core.flushed_batches,
            mean_batch_size=core.mean_batch_size,
            max_queue_depth=core.max_queue_depth,
            mean_queue_wait_s=core.mean_queue_wait_s,
            max_queue_wait_s=core.max_queue_wait_s,
            background_ticks={t.name: t.runs for t in self.tickers},
        )


class ServiceIngress(_BaseIngress):
    """Asyncio front door over a single :class:`ServingService`.

    Parameters
    ----------
    service:
        The backend answering coalesced batches.
    config:
        Coalescing/admission/background knobs (:class:`IngressConfig`).
    controller:
        Optional :class:`~repro.adaptive.AdaptationController`; when
        given, its :meth:`tick` runs as a background task every
        ``config.tick_interval_s`` while the ingress is started (the
        caller still attaches it as ``service.monitor`` and feeds
        measurements through :meth:`record_measured`).
    clock:
        Injectable time source for queue-wait telemetry and timers.
    """

    def __init__(
        self,
        service: ServingService,
        config: Optional[IngressConfig] = None,
        controller=None,
        clock=time.monotonic,
    ) -> None:
        super().__init__(config=config, clock=clock)
        self.service = service
        self._telemetry = service.telemetry
        self.controller = controller
        if controller is not None:
            self.tickers.append(
                PeriodicTicker(
                    controller.tick, self.config.tick_interval_s, "adaptation"
                )
            )
        if service.refresher is not None:
            self.tickers.append(
                PeriodicTicker(
                    service.refresh_now, self.config.refresh_interval_s, "refresh"
                )
            )

    async def serve(self, query: int) -> IngressDecision:
        """Answer one query arrival (awaits its coalesced batch)."""
        query = int(query)
        if not 0 <= query < self.service.matrix.n_queries:
            raise IngressError(
                f"query index {query} out of range "
                f"[0, {self.service.matrix.n_queries})"
            )
        return await self._enqueue(query)

    def _serve_payloads(self, payloads: List[int]) -> List[IngressDecision]:
        decisions = self.service.serve_batch(
            np.asarray(payloads, dtype=np.int64)
        )
        # One .tolist() per array, then plain-python zip: building the
        # per-caller results must stay O(1)-ish per request, and repeated
        # numpy scalar extraction is an order of magnitude slower.
        return [
            IngressDecision(None, query, hint, used, expected, False)
            for query, hint, used, expected in zip(
                payloads,
                decisions.hints.tolist(),
                decisions.used_default.tolist(),
                decisions.expected_latency.tolist(),
            )
        ]

    def _shed_decision(self, payload: int) -> IngressDecision:
        return IngressDecision(
            None, payload, self.service.cache.default_hint, True, float("inf"), True
        )

    def _record_shed(self, count: int) -> None:
        self.service.record_shed(count)

    def record_measured(
        self, decisions: Sequence[IngressDecision], measured
    ) -> None:
        """Feed measured latencies of answered requests back to the service.

        Shed decisions are skipped: they never consulted the snapshot, so
        there is no expected latency to compute a residual against.
        """
        measured = np.asarray(measured, dtype=float)
        if measured.shape != (len(decisions),):
            raise IngressError(
                "record_measured needs one measurement per decision"
            )
        kept = [i for i, d in enumerate(decisions) if not d.shed]
        if not kept:
            return
        batch = BatchDecisions(
            queries=np.asarray([decisions[i].query for i in kept], dtype=np.int64),
            hints=np.asarray([decisions[i].hint for i in kept], dtype=np.int64),
            used_default=np.asarray(
                [decisions[i].used_default for i in kept], dtype=bool
            ),
            expected_latency=np.asarray(
                [decisions[i].expected_latency for i in kept], dtype=float
            ),
        )
        self.service.record_measured(batch, measured[kept])


class ClusterIngress(_BaseIngress):
    """Asyncio front door over a sharded :class:`ServingCluster`.

    Requests are ``(tenant, query)`` arrivals; a coalesced batch may mix
    tenants freely -- it fans out through
    :meth:`ServingCluster.serve_mixed` as one vectorised sub-batch per
    shard.  Background tasks host the cluster's refresh scheduler tick
    and, when a :class:`~repro.adaptive.ClusterAdaptationController` is
    given, its detection tick.
    """

    def __init__(
        self,
        cluster: ServingCluster,
        config: Optional[IngressConfig] = None,
        controller=None,
        clock=time.monotonic,
    ) -> None:
        super().__init__(config=config, clock=clock)
        self.cluster = cluster
        self._telemetry = cluster.telemetry
        self.controller = controller
        if controller is not None:
            self.tickers.append(
                PeriodicTicker(
                    controller.tick, self.config.tick_interval_s, "adaptation"
                )
            )
        self.tickers.append(
            PeriodicTicker(
                cluster.tick, self.config.refresh_interval_s, "refresh-scheduler"
            )
        )

    async def serve(self, tenant: str, query: int) -> IngressDecision:
        """Answer one tenant's query arrival (awaits its coalesced batch)."""
        query = int(query)
        n = self.cluster.n_queries(tenant)  # raises for unknown tenants
        if not 0 <= query < n:
            raise IngressError(
                f"query index {query} out of range [0, {n}) "
                f"for tenant {tenant!r}"
            )
        return await self._enqueue((tenant, query))

    def _serve_payloads(
        self, payloads: List[Tuple[str, int]]
    ) -> List[IngressDecision]:
        decisions = self.cluster.serve_mixed(payloads)
        return [
            IngressDecision(tenant, query, hint, used, expected, False)
            for (tenant, query), hint, used, expected in zip(
                payloads,
                decisions.hints.tolist(),
                decisions.used_default.tolist(),
                decisions.expected_latency.tolist(),
            )
        ]

    def _shed_decision(self, payload: Tuple[str, int]) -> IngressDecision:
        tenant, query = payload
        return IngressDecision(
            tenant, query, self.cluster.default_hint, True, float("inf"), True
        )

    def _record_shed(self, count: int) -> None:
        self.cluster.record_shed(count)

    def record_measured(
        self, decisions: Sequence[IngressDecision], measured
    ) -> None:
        """Feed measured latencies back to the cluster adaptation controller."""
        if self.controller is None:
            return
        measured = np.asarray(measured, dtype=float)
        if measured.shape != (len(decisions),):
            raise IngressError(
                "record_measured needs one measurement per decision"
            )
        by_tenant: Dict[str, List[int]] = {}
        for i, decision in enumerate(decisions):
            if not decision.shed:
                by_tenant.setdefault(decision.tenant, []).append(i)
        for tenant, positions in by_tenant.items():
            batch = BatchDecisions(
                queries=np.asarray(
                    [decisions[i].query for i in positions], dtype=np.int64
                ),
                hints=np.asarray(
                    [decisions[i].hint for i in positions], dtype=np.int64
                ),
                used_default=np.asarray(
                    [decisions[i].used_default for i in positions], dtype=bool
                ),
                expected_latency=np.asarray(
                    [decisions[i].expected_latency for i in positions], dtype=float
                ),
            )
            self.controller.record(tenant, batch, measured[positions])
