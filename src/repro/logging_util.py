"""Logging helpers.

The library never configures the root logger; it only creates namespaced
children under ``repro``.  :func:`configure_logging` is a convenience for
examples and the benchmark harness.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"core.explorer"``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Returns the configured root ``repro`` logger.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        formatter = logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s"
        )
        handler.setFormatter(formatter)
        logger.addHandler(handler)
    return logger
