"""Logging helpers.

The library never configures the root logger; it only creates namespaced
children under ``repro``.  :func:`configure_logging` is a convenience for
examples and the benchmark harness.
"""

from __future__ import annotations

import json
import logging

_ROOT_NAME = "repro"
# Attribute stamped onto handlers this module installs, so reconfiguration
# only ever touches its own handler and never one the host app attached.
_MANAGED_ATTR = "_repro_managed"

_TEXT_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


class JsonFormatter(logging.Formatter):
    """One structured dict per line, for log shippers and ``jq``.

    Fields: ``ts`` (epoch seconds), ``level``, ``logger``, ``message``,
    plus ``exc_info`` (formatted traceback) when present.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"core.explorer"``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(
    level: int = logging.INFO, json_logs: bool = False
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Repeated calls reconfigure the handler this function previously
    installed -- its level and its formatter both follow the latest
    call, so flipping ``json_logs`` or tightening ``level`` mid-run
    works without handler duplication.  Handlers attached by the host
    application are left alone.

    Parameters
    ----------
    level:
        Threshold applied to both the ``repro`` logger and the managed
        handler.
    json_logs:
        When true the managed handler emits one JSON dict per line
        (:class:`JsonFormatter`) instead of the human-readable text
        format.

    Returns the configured root ``repro`` logger.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, _MANAGED_ATTR, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler()
        setattr(handler, _MANAGED_ATTR, True)
        logger.addHandler(handler)
    handler.setLevel(level)
    if json_logs:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
    return logger
