"""A small numpy-only neural-network substrate.

The paper's neural method (LimeQO+) is a tree convolutional network with
query/hint embedding layers, trained with Adam, dropout, and a censored
loss.  PyTorch is not available in this environment, so this package
provides the minimum viable substrate:

* :mod:`repro.nn.autograd` -- reverse-mode automatic differentiation over
  numpy arrays,
* :mod:`repro.nn.layers` -- Linear, ReLU, Dropout, Embedding, Sequential,
* :mod:`repro.nn.treeconv` -- binary tree convolution and dynamic pooling,
* :mod:`repro.nn.optim` -- SGD and Adam,
* :mod:`repro.nn.losses` -- MSE and the censored loss (paper Equation 8),
* :mod:`repro.nn.tcnn` -- the TCNN and transductive TCNN models,
* :mod:`repro.nn.trainer` -- the training loop with the paper's
  convergence criterion and warm starting.
"""

from .autograd import Tensor
from .layers import Dropout, Embedding, Linear, Module, ReLU, Sequential
from .losses import censored_mse_loss, mse_loss
from .optim import SGD, Adam
from .tcnn import TCNNModel, TransductiveTCNN
from .trainer import TCNNTrainer
from .treeconv import BinaryTreeConv, DynamicPooling

__all__ = [
    "Tensor",
    "Dropout",
    "Embedding",
    "Linear",
    "Module",
    "ReLU",
    "Sequential",
    "censored_mse_loss",
    "mse_loss",
    "SGD",
    "Adam",
    "TCNNModel",
    "TransductiveTCNN",
    "TCNNTrainer",
    "BinaryTreeConv",
    "DynamicPooling",
]
