"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small tape-based autograd: every :class:`Tensor` records the
operation that produced it and a closure that propagates gradients to its
parents.  Only the operations needed by the tree convolutional network are
implemented (matmul, broadcasting add/mul, relu, gather, masked max,
concatenation, reductions, dropout masking), each with a hand-written
backward pass.

Gradient flow follows the micrograd convention: calling
:meth:`Tensor.backward` on a scalar loss walks the recorded graph in
reverse topological order, each node's closure accumulating gradients into
its parents' ``.grad`` attributes.  Leaf tensors created with
``requires_grad=True`` (model parameters) keep their gradients for the
optimizer; intermediate gradients are also stored but are simply discarded
when the graph is garbage collected.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import NeuralNetworkError


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward = backward
        self.name = name

    # -- basics --------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """Copy of the underlying data."""
        return self.data.copy()

    def item(self) -> float:
        """Scalar value (for losses)."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing the same values but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- graph construction helpers --------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @staticmethod
    def _track(*tensors: "Tensor") -> bool:
        """True when any input participates in a gradient graph."""
        return any(t.requires_grad or t._backward is not None for t in tensors)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=float, copy=True)
        else:
            self.grad = self.grad + grad

    def _make(self, data, parents, backward, name) -> "Tensor":
        if not self._track(*parents):
            return Tensor(data, name=name)
        return Tensor(data, requires_grad=False, parents=parents,
                      backward=backward, name=name)

    # -- arithmetic ---------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (self._wrap(other) * -1.0)

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (self * -1.0)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.data.shape)
            )

        return self._make(out_data, (self, other), backward, "div")

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise NeuralNetworkError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow")

    # -- linear algebra --------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product; supports (..., M, K) @ (K, N)."""
        other = self._wrap(other)
        out_data = np.matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            grad_self = np.matmul(grad, np.swapaxes(other.data, -1, -2))
            self._accumulate(_unbroadcast(grad_self, self.data.shape))
            grad_other = np.matmul(np.swapaxes(self.data, -1, -2), grad)
            other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return self._make(out_data, (self, other), backward, "matmul")

    __matmul__ = matmul

    # -- nonlinearities ----------------------------------------------------------------
    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "relu")

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    # -- reductions ----------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or everything when ``axis`` is None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or everything when ``axis`` is None)."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- shape manipulation ----------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, keeping the graph."""
        out_data = self.data.reshape(*shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward, "reshape")

    def concat(self, other: "Tensor", axis: int = -1) -> "Tensor":
        """Concatenate two tensors along ``axis``."""
        other = self._wrap(other)
        out_data = np.concatenate([self.data, other.data], axis=axis)
        split = self.data.shape[axis]

        def backward(grad: np.ndarray) -> None:
            grad_self, grad_other = np.split(grad, [split], axis=axis)
            self._accumulate(grad_self)
            other._accumulate(grad_other)

        return self._make(out_data, (self, other), backward, "concat")

    # -- gathers (used by embeddings and tree convolution) -------------------------------------
    def gather_rows(self, indices) -> "Tensor":
        """Row lookup: ``self`` is (V, D), result is (len(indices), D)."""
        indices = np.asarray(indices, dtype=np.int64)
        if self.data.ndim != 2:
            raise NeuralNetworkError("gather_rows expects a 2-D tensor")
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "gather_rows")

    def gather_nodes(self, indices) -> "Tensor":
        """Per-sample node lookup for tree convolution.

        ``self`` is (B, N, F), ``indices`` is (B, N); the result at
        ``[b, n, :]`` is ``self[b, indices[b, n], :]``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.data.ndim != 3 or indices.ndim != 2:
            raise NeuralNetworkError(
                "gather_nodes expects a (B, N, F) tensor and (B, N) indices"
            )
        batch_index = np.arange(self.data.shape[0])[:, None]
        # take_along_axis compiles to one contiguous gather; the advanced-
        # indexing spelling allocated an intermediate index broadcast.
        out_data = np.take_along_axis(self.data, indices[:, :, None], axis=1)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, (batch_index, indices), grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "gather_nodes")

    def masked_max(self, mask, axis: int = 1) -> "Tensor":
        """Max over ``axis`` considering only positions where ``mask`` is 1.

        Used for dynamic pooling over plan-tree nodes: ``self`` is
        (B, N, F), ``mask`` is (B, N), the result is (B, F).
        """
        mask = np.asarray(mask, dtype=bool)
        if self.data.ndim != 3 or mask.ndim != 2 or axis != 1:
            raise NeuralNetworkError(
                "masked_max currently supports (B, N, F) tensors pooled over axis 1"
            )
        if not mask.any(axis=1).all():
            raise NeuralNetworkError("every sample needs at least one unmasked node")
        masked = np.where(mask[:, :, None], self.data, -np.inf)
        argmax = masked.argmax(axis=1)  # (B, F)
        out_data = np.take_along_axis(self.data, argmax[:, None, :], axis=1)[:, 0, :]
        batch_index = np.arange(self.data.shape[0])[:, None]
        feature_index = np.arange(self.data.shape[2])[None, :]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, (batch_index, argmax, feature_index), grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "masked_max")

    def apply_mask(self, mask) -> "Tensor":
        """Element-wise multiply by a constant mask (dropout, padding)."""
        mask = np.asarray(mask, dtype=float)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "apply_mask")

    # -- backprop -----------------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise NeuralNetworkError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=float))
        for node in self._topological_order():
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> List["Tensor"]:
        """Nodes ordered so every tensor appears before its parents."""
        seen = set()
        postorder: List[Tensor] = []
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                postorder.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        postorder.reverse()
        return postorder


def parameter(data, name: str = "") -> Tensor:
    """Create a trainable (leaf) tensor."""
    return Tensor(data, requires_grad=True, name=name)


def stack_tensors(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack detached tensors into a constant tensor (no gradient flow)."""
    return Tensor(np.stack([t.data for t in tensors], axis=axis))
