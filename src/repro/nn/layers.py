"""Basic neural-network layers built on the autograd substrate."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..errors import NeuralNetworkError
from .autograd import Tensor, parameter


class Module:
    """Base class: tracks parameters and train/eval mode."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration -------------------------------------------------------
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        """Register a trainable tensor under ``name``."""
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        """Register a child module under ``name``."""
        self._modules[name] = module
        return module

    # -- traversal ------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable tensors in this module and its children."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Enable training mode (dropout active)."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Enable evaluation mode (dropout disabled)."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    # -- persistence ---------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flat mapping of parameter names to value copies."""
        state = {
            f"{prefix}{name}": tensor.data.copy()
            for name, tensor in self._parameters.items()
        }
        for child_name, child in self._modules.items():
            state.update(child.state_dict(prefix=f"{prefix}{child_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Inverse of :meth:`state_dict`; shapes must match exactly."""
        for name, tensor in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise NeuralNetworkError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=float)
            if value.shape != tensor.data.shape:
                raise NeuralNetworkError(
                    f"parameter {key!r}: shape {value.shape} does not match "
                    f"{tensor.data.shape}"
                )
            tensor.data = value.copy()
        for child_name, child in self._modules.items():
            child.load_state_dict(state, prefix=f"{prefix}{child_name}.")

    # -- call protocol -----------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        """Subclass hook."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W + b`` with Kaiming-style initialisation."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise NeuralNetworkError("Linear needs positive feature counts")
        rng = np.random.default_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.weight = self.register_parameter(
            "weight", parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        )
        self.bias = self.register_parameter(
            "bias", parameter(np.zeros(out_features))
        )
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight) + self.bias


class ReLU(Module):
    """Rectified linear unit as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise NeuralNetworkError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(float) / keep
        return x.apply_mask(mask)


class Embedding(Module):
    """Index -> dense vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, seed: int = 0) -> None:
        super().__init__()
        if num_embeddings < 1 or dim < 1:
            raise NeuralNetworkError("Embedding needs positive sizes")
        rng = np.random.default_rng(seed)
        self.weight = self.register_parameter(
            "weight", parameter(rng.normal(0.0, 0.1, size=(num_embeddings, dim)))
        )
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise NeuralNetworkError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight.gather_rows(indices)

    def grow(self, new_count: int, seed: int = 0) -> None:
        """Extend the table (new queries arriving); existing rows are kept."""
        if new_count <= self.num_embeddings:
            return
        rng = np.random.default_rng(seed)
        extra = rng.normal(0.0, 0.1, size=(new_count - self.num_embeddings, self.dim))
        self.weight.data = np.vstack([self.weight.data, extra])
        self.num_embeddings = new_count


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, modules: Sequence[Module]) -> None:
        super().__init__()
        self._ordered: List[Module] = list(modules)
        for i, module in enumerate(self._ordered):
            self.register_module(f"layer{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self) -> Iterable[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)
