"""Loss functions, including the censored loss (paper Equation 8).

The censored loss only penalises a prediction for a timed-out observation
when the prediction falls *below* the timeout threshold: the model is wrong
for sure in that case, whereas any prediction at or above the threshold is
potentially correct and must not be punished.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import NeuralNetworkError
from .autograd import Tensor


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Standard mean squared error."""
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise NeuralNetworkError(
            f"prediction shape {predictions.shape} does not match target shape "
            f"{targets.shape}"
        )
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()


def censored_mse_loss(
    predictions: Tensor,
    targets: np.ndarray,
    thresholds: Optional[np.ndarray] = None,
) -> Tensor:
    """Censored MSE (Equation 8).

    Parameters
    ----------
    predictions:
        Model outputs, shape ``(batch,)``.
    targets:
        Observed latencies; for censored samples this is the timeout value.
    thresholds:
        Per-sample censoring thresholds ``tau``.  Samples with a threshold of
        0 (or None thresholds entirely) are treated as uncensored and always
        contribute.  For censored samples the squared error only counts when
        the prediction is below the threshold.
    """
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise NeuralNetworkError(
            f"prediction shape {predictions.shape} does not match target shape "
            f"{targets.shape}"
        )
    if thresholds is None:
        return mse_loss(predictions, targets)
    thresholds = np.asarray(thresholds, dtype=float)
    if thresholds.shape != targets.shape:
        raise NeuralNetworkError("threshold shape does not match target shape")

    censored = thresholds > 0
    # Indicator 1{y_hat < tau} for censored samples; uncensored samples always count.
    below = predictions.data < thresholds
    weights = np.where(censored, below.astype(float), 1.0)
    diff = predictions - Tensor(targets)
    weighted = (diff * diff).apply_mask(weights)
    return weighted.mean()
