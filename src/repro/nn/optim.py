"""Optimizers for the numpy neural-network substrate."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import NeuralNetworkError
from .autograd import Tensor


class Optimizer:
    """Base class: holds the parameter list and clears gradients."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise NeuralNetworkError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        """Clear every parameter gradient."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses implement."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Sequence[Tensor], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise NeuralNetworkError(f"learning rate must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise NeuralNetworkError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015), the optimizer the paper trains the TCNN with."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise NeuralNetworkError(f"learning rate must be > 0, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise NeuralNetworkError(f"betas must be in [0, 1), got {betas}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if grad.shape != param.data.shape:
                # Stale gradient from before a resize: skip this update.
                continue
            if self._m[i].shape != param.data.shape:
                # An embedding table grew since this optimizer was created
                # (new queries arriving); restart its moment buffers.
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** t)
            v_hat = self._v[i] / (1 - self.beta2 ** t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
