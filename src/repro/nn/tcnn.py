"""The TCNN and transductive TCNN models (paper Section 4.3.2).

``TCNNModel`` is the Bao-style architecture: tree convolution over plan
features, dynamic pooling, fully connected layers, one scalar output per
plan.  ``TransductiveTCNN`` adds two embedding tables -- one per query
(matrix row) and one per hint (matrix column) -- whose vectors are
concatenated with the pooled plan representation before the fully connected
head.  The embeddings are isomorphic to the ALS factors ``Q`` and ``H``,
which is how the model exploits the workload matrix's low-rank structure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import TCNNConfig
from ..errors import NeuralNetworkError
from ..plans.featurize import NODE_FEATURE_DIM, TreeBatch
from .autograd import Tensor
from .layers import Dropout, Embedding, Linear, Module, ReLU, Sequential
from .treeconv import TreeConvStack


def _build_head(in_features: int, hidden_units: Sequence[int], dropout: float,
                seed: int) -> Sequential:
    """Fully connected head ending in a single latency output."""
    modules = []
    previous = in_features
    for i, width in enumerate(hidden_units):
        modules.append(Linear(previous, int(width), seed=seed + 100 + i))
        modules.append(ReLU())
        if dropout > 0:
            modules.append(Dropout(dropout, seed=seed + 200 + i))
        previous = int(width)
    modules.append(Linear(previous, 1, seed=seed + 300))
    return Sequential(modules)


class TCNNModel(Module):
    """Plain tree convolutional network over plan features."""

    def __init__(self, config: Optional[TCNNConfig] = None,
                 node_feature_dim: int = NODE_FEATURE_DIM) -> None:
        super().__init__()
        self.config = config or TCNNConfig(use_embeddings=False)
        self.tree_conv = self.register_module(
            "tree_conv",
            TreeConvStack(node_feature_dim, self.config.channels, seed=self.config.seed),
        )
        self.dropout = self.register_module(
            "dropout", Dropout(self.config.dropout, seed=self.config.seed + 11)
        )
        self.head = self.register_module(
            "head",
            _build_head(
                self.tree_conv.out_channels,
                self.config.hidden_units,
                self.config.dropout,
                self.config.seed,
            ),
        )

    def forward(self, batch: TreeBatch, query_idx=None, hint_idx=None) -> Tensor:
        """Predict one latency per plan in ``batch`` (query/hint ids ignored)."""
        nodes = Tensor(batch.nodes)
        pooled = self.tree_conv(nodes, batch.left, batch.right, batch.mask)
        pooled = self.dropout(pooled)
        out = self.head(pooled)
        return out.reshape(batch.batch_size)


class TransductiveTCNN(Module):
    """Tree convolution plus query/hint embeddings (the LimeQO+ model)."""

    def __init__(
        self,
        n_queries: int,
        n_hints: int,
        config: Optional[TCNNConfig] = None,
        node_feature_dim: int = NODE_FEATURE_DIM,
    ) -> None:
        super().__init__()
        if n_queries < 1 or n_hints < 1:
            raise NeuralNetworkError("TransductiveTCNN needs positive matrix dimensions")
        self.config = config or TCNNConfig(use_embeddings=True)
        rank = self.config.embedding_rank
        self.tree_conv = self.register_module(
            "tree_conv",
            TreeConvStack(node_feature_dim, self.config.channels, seed=self.config.seed),
        )
        self.query_embedding = self.register_module(
            "query_embedding", Embedding(n_queries, rank, seed=self.config.seed + 1)
        )
        self.hint_embedding = self.register_module(
            "hint_embedding", Embedding(n_hints, rank, seed=self.config.seed + 2)
        )
        self.dropout = self.register_module(
            "dropout", Dropout(self.config.dropout, seed=self.config.seed + 11)
        )
        self.head = self.register_module(
            "head",
            _build_head(
                self.tree_conv.out_channels + 2 * rank,
                self.config.hidden_units,
                self.config.dropout,
                self.config.seed,
            ),
        )

    @property
    def n_queries(self) -> int:
        """Current size of the query embedding table."""
        return self.query_embedding.num_embeddings

    @property
    def n_hints(self) -> int:
        """Current size of the hint embedding table."""
        return self.hint_embedding.num_embeddings

    def grow_queries(self, new_count: int) -> None:
        """Extend the query embedding table when new queries arrive."""
        self.query_embedding.grow(new_count, seed=self.config.seed + 17)

    def forward(self, batch: TreeBatch, query_idx, hint_idx) -> Tensor:
        """Predict one latency per (plan, query id, hint id) triple."""
        query_idx = np.asarray(query_idx, dtype=np.int64)
        hint_idx = np.asarray(hint_idx, dtype=np.int64)
        if query_idx.shape[0] != batch.batch_size or hint_idx.shape[0] != batch.batch_size:
            raise NeuralNetworkError("query/hint index length must match the batch size")
        nodes = Tensor(batch.nodes)
        pooled = self.tree_conv(nodes, batch.left, batch.right, batch.mask)
        query_vectors = self.query_embedding(query_idx)
        hint_vectors = self.hint_embedding(hint_idx)
        combined = pooled.concat(query_vectors, axis=-1).concat(hint_vectors, axis=-1)
        combined = self.dropout(combined)
        out = self.head(combined)
        return out.reshape(batch.batch_size)
