"""Training loop for the (transductive) TCNN.

Follows the paper's protocol (Section 5, "Techniques and tests"):

* Adam with batch size 32,
* at most 100 epochs, stopping early when the training loss decreases by
  less than 1% over 10 epochs,
* warm start -- each offline-exploration step re-trains the model starting
  from the previous step's weights,
* censored loss for timed-out observations (Equation 8).

Targets are trained in ``log1p`` space so the heavy-tailed latency
distribution does not destabilise the small network; predictions are mapped
back with ``expm1`` and clipped to be non-negative.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import TCNNConfig
from ..core.workload_matrix import WorkloadMatrix
from ..errors import NeuralNetworkError
from .losses import censored_mse_loss, mse_loss
from .optim import Adam
from .tcnn import TCNNModel, TransductiveTCNN


class TCNNTrainer:
    """Trains a TCNN (with or without embeddings) on observed matrix cells."""

    def __init__(
        self,
        feature_store,
        n_queries: int,
        n_hints: int,
        config: Optional[TCNNConfig] = None,
    ) -> None:
        self.feature_store = feature_store
        self.config = config or TCNNConfig()
        self.n_queries = int(n_queries)
        self.n_hints = int(n_hints)
        if self.config.use_embeddings:
            self.model = TransductiveTCNN(self.n_queries, self.n_hints, self.config)
        else:
            self.model = TCNNModel(self.config)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)
        self.loss_history: List[float] = []

    # -- workload growth -----------------------------------------------------
    def grow_queries(self, new_count: int) -> None:
        """Handle new rows appearing in the workload matrix."""
        if new_count <= self.n_queries:
            return
        self.n_queries = int(new_count)
        if isinstance(self.model, TransductiveTCNN):
            self.model.grow_queries(self.n_queries)

    # -- training data ---------------------------------------------------------
    def _training_cells(
        self, matrix: WorkloadMatrix
    ) -> Tuple[List[Tuple[int, int]], np.ndarray, np.ndarray]:
        """Collect (cell, target, threshold) triples from the matrix.

        One vectorised pass over the matrix views; cells come out in the
        same row-major order (completed observations taking priority over
        censored ones) as the historical per-cell double loop.
        """
        observed = matrix.mask > 0
        keep = observed
        if self.config.censored:
            keep = observed | matrix.censored_mask
        rows, cols = np.nonzero(keep)
        if rows.size == 0:
            raise NeuralNetworkError("no observed cells to train on")
        values = matrix.values[rows, cols]
        timeouts = matrix.timeout_matrix[rows, cols]
        observed_here = observed[rows, cols]
        targets = np.where(observed_here, values, timeouts)
        thresholds = np.where(observed_here, 0.0, timeouts)
        cells = list(zip(rows.tolist(), cols.tolist()))
        return cells, targets, thresholds

    # -- fitting ------------------------------------------------------------------
    def fit(self, matrix: WorkloadMatrix) -> List[float]:
        """Train on the matrix's observed cells; returns per-epoch losses."""
        cells, targets, thresholds = self._training_cells(matrix)
        log_targets = np.log1p(targets)
        log_thresholds = np.where(thresholds > 0, np.log1p(thresholds), 0.0)

        # Featurise and pad the whole training set once; every epoch's
        # mini-batches are cheap row slices of the packed arrays instead of
        # a fresh featurise-and-pad pass (the tree convolution is padding-
        # width invariant, so the losses are identical).
        packed = self.feature_store.batch(cells)
        all_query_idx = np.array([c[0] for c in cells], dtype=np.int64)
        all_hint_idx = np.array([c[1] for c in cells], dtype=np.int64)

        self.model.train()
        epoch_losses: List[float] = []
        order = np.arange(len(cells))
        for epoch in range(self.config.max_epochs):
            self._rng.shuffle(order)
            batch_losses = []
            for start in range(0, len(order), self.config.batch_size):
                batch_idx = order[start:start + self.config.batch_size]
                batch = packed.take(batch_idx)
                query_idx = all_query_idx[batch_idx]
                hint_idx = all_hint_idx[batch_idx]
                predictions = self.model(batch, query_idx, hint_idx)
                if self.config.censored and (log_thresholds[batch_idx] > 0).any():
                    loss = censored_mse_loss(
                        predictions, log_targets[batch_idx], log_thresholds[batch_idx]
                    )
                else:
                    loss = mse_loss(predictions, log_targets[batch_idx])
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                batch_losses.append(loss.item())
            epoch_loss = float(np.mean(batch_losses))
            epoch_losses.append(epoch_loss)
            self.loss_history.append(epoch_loss)
            if self._converged(epoch_losses):
                break
        return epoch_losses

    def _converged(self, losses: Sequence[float]) -> bool:
        """Paper criterion: < ``convergence_threshold`` decrease over the window."""
        window = self.config.convergence_window
        if len(losses) <= window:
            return False
        previous = losses[-window - 1]
        current = losses[-1]
        if previous <= 0:
            return True
        improvement = (previous - current) / abs(previous)
        return improvement < self.config.convergence_threshold

    # -- inference -------------------------------------------------------------------
    def predict_batch(self, batch, query_idx, hint_idx) -> np.ndarray:
        """One forward pass over an already-packed padded tree batch.

        This is the serving-path entry point: callers that keep a
        pre-packed ``(batch, nodes, features)`` tensor around (see
        :class:`repro.serving.service.BatchedLatencyEstimator`) skip the
        per-cell featurise-and-pad work entirely and pay only for the
        gathers and matmuls of the tree convolution.  Returns latencies in
        seconds (``expm1`` of the model's log-space output, clipped at 0).
        """
        self.model.eval()
        query_idx = np.asarray(query_idx, dtype=np.int64)
        hint_idx = np.asarray(hint_idx, dtype=np.int64)
        out = self.model(batch, query_idx, hint_idx)
        return np.clip(np.expm1(out.numpy()), 0.0, None)

    def predict_cells(
        self, cells: Sequence[Tuple[int, int]], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Predicted latencies (seconds) for specific matrix cells."""
        if not cells:
            return np.zeros(0)
        predictions = np.zeros(len(cells))
        if batch_size is None:
            batch_size = max(self.config.batch_size, 64)
        for start in range(0, len(cells), batch_size):
            chunk = list(cells[start:start + batch_size])
            batch = self.feature_store.batch(chunk)
            query_idx = np.array([c[0] for c in chunk])
            hint_idx = np.array([c[1] for c in chunk])
            predictions[start:start + len(chunk)] = self.predict_batch(
                batch, query_idx, hint_idx
            )
        return predictions

    def predict_full(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Predicted latencies for every cell of the matrix.

        When the feature store caches a pre-packed full-matrix batch
        (:meth:`~repro.plans.featurize.PlanFeatureStore.full_batch`), the
        whole pass is array slices and forward passes -- no per-cell Python
        loop, no repeated padding.  Inference is deterministic per sample
        (dropout is off in eval mode), so chunk boundaries do not affect the
        predictions.
        """
        n, k = matrix.n_queries, matrix.n_hints
        full_batch = getattr(self.feature_store, "full_batch", None)
        if full_batch is None or self.feature_store.shape != (n, k):
            cells = [(i, j) for i in range(n) for j in range(k)]
            return self.predict_cells(cells).reshape(n, k)

        packed = full_batch()
        query_idx = np.repeat(np.arange(n, dtype=np.int64), k)
        hint_idx = np.tile(np.arange(k, dtype=np.int64), n)
        predictions = np.empty(n * k)
        chunk = max(self.config.batch_size, 512)
        for start in range(0, n * k, chunk):
            stop = min(start + chunk, n * k)
            window = slice(start, stop)
            predictions[window] = self.predict_batch(
                packed.take(window), query_idx[window], hint_idx[window]
            )
        return predictions.reshape(n, k)

    def predict_all(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Backwards-compatible alias for :meth:`predict_full`."""
        return self.predict_full(matrix)
