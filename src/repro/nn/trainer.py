"""Training loop for the (transductive) TCNN.

Follows the paper's protocol (Section 5, "Techniques and tests"):

* Adam with batch size 32,
* at most 100 epochs, stopping early when the training loss decreases by
  less than 1% over 10 epochs,
* warm start -- each offline-exploration step re-trains the model starting
  from the previous step's weights,
* censored loss for timed-out observations (Equation 8).

Targets are trained in ``log1p`` space so the heavy-tailed latency
distribution does not destabilise the small network; predictions are mapped
back with ``expm1`` and clipped to be non-negative.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import TCNNConfig
from ..core.workload_matrix import WorkloadMatrix
from ..errors import NeuralNetworkError
from .losses import censored_mse_loss, mse_loss
from .optim import Adam
from .tcnn import TCNNModel, TransductiveTCNN


class TCNNTrainer:
    """Trains a TCNN (with or without embeddings) on observed matrix cells."""

    def __init__(
        self,
        feature_store,
        n_queries: int,
        n_hints: int,
        config: Optional[TCNNConfig] = None,
    ) -> None:
        self.feature_store = feature_store
        self.config = config or TCNNConfig()
        self.n_queries = int(n_queries)
        self.n_hints = int(n_hints)
        if self.config.use_embeddings:
            self.model = TransductiveTCNN(self.n_queries, self.n_hints, self.config)
        else:
            self.model = TCNNModel(self.config)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)
        self.loss_history: List[float] = []

    # -- workload growth -----------------------------------------------------
    def grow_queries(self, new_count: int) -> None:
        """Handle new rows appearing in the workload matrix."""
        if new_count <= self.n_queries:
            return
        self.n_queries = int(new_count)
        if isinstance(self.model, TransductiveTCNN):
            self.model.grow_queries(self.n_queries)

    # -- training data ---------------------------------------------------------
    def _training_cells(
        self, matrix: WorkloadMatrix
    ) -> Tuple[List[Tuple[int, int]], np.ndarray, np.ndarray]:
        """Collect (cell, target, threshold) triples from the matrix."""
        cells: List[Tuple[int, int]] = []
        targets: List[float] = []
        thresholds: List[float] = []
        censored_mask = matrix.censored_mask
        timeout_matrix = matrix.timeout_matrix
        for i in range(matrix.n_queries):
            for j in range(matrix.n_hints):
                if matrix.is_observed(i, j):
                    cells.append((i, j))
                    targets.append(matrix.value(i, j))
                    thresholds.append(0.0)
                elif censored_mask[i, j] and self.config.censored:
                    cells.append((i, j))
                    targets.append(timeout_matrix[i, j])
                    thresholds.append(timeout_matrix[i, j])
        if not cells:
            raise NeuralNetworkError("no observed cells to train on")
        return cells, np.asarray(targets), np.asarray(thresholds)

    # -- fitting ------------------------------------------------------------------
    def fit(self, matrix: WorkloadMatrix) -> List[float]:
        """Train on the matrix's observed cells; returns per-epoch losses."""
        cells, targets, thresholds = self._training_cells(matrix)
        log_targets = np.log1p(targets)
        log_thresholds = np.where(thresholds > 0, np.log1p(thresholds), 0.0)

        self.model.train()
        epoch_losses: List[float] = []
        order = np.arange(len(cells))
        for epoch in range(self.config.max_epochs):
            self._rng.shuffle(order)
            batch_losses = []
            for start in range(0, len(order), self.config.batch_size):
                batch_idx = order[start:start + self.config.batch_size]
                batch_cells = [cells[i] for i in batch_idx]
                batch = self.feature_store.batch(batch_cells)
                query_idx = np.array([c[0] for c in batch_cells])
                hint_idx = np.array([c[1] for c in batch_cells])
                predictions = self.model(batch, query_idx, hint_idx)
                if self.config.censored and (log_thresholds[batch_idx] > 0).any():
                    loss = censored_mse_loss(
                        predictions, log_targets[batch_idx], log_thresholds[batch_idx]
                    )
                else:
                    loss = mse_loss(predictions, log_targets[batch_idx])
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                batch_losses.append(loss.item())
            epoch_loss = float(np.mean(batch_losses))
            epoch_losses.append(epoch_loss)
            self.loss_history.append(epoch_loss)
            if self._converged(epoch_losses):
                break
        return epoch_losses

    def _converged(self, losses: Sequence[float]) -> bool:
        """Paper criterion: < ``convergence_threshold`` decrease over the window."""
        window = self.config.convergence_window
        if len(losses) <= window:
            return False
        previous = losses[-window - 1]
        current = losses[-1]
        if previous <= 0:
            return True
        improvement = (previous - current) / abs(previous)
        return improvement < self.config.convergence_threshold

    # -- inference -------------------------------------------------------------------
    def predict_batch(self, batch, query_idx, hint_idx) -> np.ndarray:
        """One forward pass over an already-packed padded tree batch.

        This is the serving-path entry point: callers that keep a
        pre-packed ``(batch, nodes, features)`` tensor around (see
        :class:`repro.serving.service.BatchedLatencyEstimator`) skip the
        per-cell featurise-and-pad work entirely and pay only for the
        gathers and matmuls of the tree convolution.  Returns latencies in
        seconds (``expm1`` of the model's log-space output, clipped at 0).
        """
        self.model.eval()
        query_idx = np.asarray(query_idx, dtype=np.int64)
        hint_idx = np.asarray(hint_idx, dtype=np.int64)
        out = self.model(batch, query_idx, hint_idx)
        return np.clip(np.expm1(out.numpy()), 0.0, None)

    def predict_cells(
        self, cells: Sequence[Tuple[int, int]], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Predicted latencies (seconds) for specific matrix cells."""
        if not cells:
            return np.zeros(0)
        predictions = np.zeros(len(cells))
        if batch_size is None:
            batch_size = max(self.config.batch_size, 64)
        for start in range(0, len(cells), batch_size):
            chunk = list(cells[start:start + batch_size])
            batch = self.feature_store.batch(chunk)
            query_idx = np.array([c[0] for c in chunk])
            hint_idx = np.array([c[1] for c in chunk])
            predictions[start:start + len(chunk)] = self.predict_batch(
                batch, query_idx, hint_idx
            )
        return predictions

    def predict_all(self, matrix: WorkloadMatrix) -> np.ndarray:
        """Predicted latencies for every cell of the matrix."""
        cells = [
            (i, j) for i in range(matrix.n_queries) for j in range(matrix.n_hints)
        ]
        flat = self.predict_cells(cells)
        return flat.reshape(matrix.n_queries, matrix.n_hints)
