"""Binary tree convolution and dynamic pooling (Mou et al., adapted by Neo/Bao).

A tree convolution layer applies three weight matrices -- one for the node
itself, one for its left child, one for its right child -- at every node of
a binary plan tree, then sums and activates.  Missing children point at the
reserved all-zero node 0, so the operation vectorises as three gathers plus
three matmuls over a padded ``(batch, nodes, features)`` tensor.  Dynamic
pooling reduces the node dimension with a masked max, yielding one vector
per plan regardless of plan size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import NeuralNetworkError
from .autograd import Tensor, parameter
from .layers import Module


class BinaryTreeConv(Module):
    """One layer of binary tree convolution."""

    def __init__(self, in_channels: int, out_channels: int, seed: int = 0) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise NeuralNetworkError("BinaryTreeConv needs positive channel counts")
        rng = np.random.default_rng(seed)
        scale = np.sqrt(2.0 / (3 * in_channels))
        self.weight_self = self.register_parameter(
            "weight_self", parameter(rng.normal(0.0, scale, (in_channels, out_channels)))
        )
        self.weight_left = self.register_parameter(
            "weight_left", parameter(rng.normal(0.0, scale, (in_channels, out_channels)))
        )
        self.weight_right = self.register_parameter(
            "weight_right", parameter(rng.normal(0.0, scale, (in_channels, out_channels)))
        )
        self.bias = self.register_parameter("bias", parameter(np.zeros(out_channels)))
        self.in_channels = in_channels
        self.out_channels = out_channels

    def forward(self, nodes: Tensor, left: np.ndarray, right: np.ndarray,
                mask: np.ndarray) -> Tensor:
        """Convolve a padded batch of trees.

        Parameters
        ----------
        nodes:
            ``(batch, max_nodes, in_channels)`` node features; position 0 of
            every sample must stay the all-zero null node.
        left / right:
            ``(batch, max_nodes)`` child indices into the node axis.
        mask:
            ``(batch, max_nodes)`` 1.0 for real nodes.
        """
        if nodes.ndim != 3:
            raise NeuralNetworkError("tree convolution expects a 3-D node tensor")
        left_children = nodes.gather_nodes(left)
        right_children = nodes.gather_nodes(right)
        combined = (
            nodes.matmul(self.weight_self)
            + left_children.matmul(self.weight_left)
            + right_children.matmul(self.weight_right)
            + self.bias
        )
        activated = combined.relu()
        # Zero out padding (and the null node) so deeper layers keep the
        # "missing child == zero vector" invariant.
        return activated.apply_mask(np.asarray(mask, dtype=float)[:, :, None])


class DynamicPooling(Module):
    """Masked max pooling over the node dimension."""

    def forward(self, nodes: Tensor, mask: np.ndarray) -> Tensor:
        return nodes.masked_max(np.asarray(mask, dtype=float) > 0, axis=1)


class TreeConvStack(Module):
    """A stack of tree convolution layers followed by dynamic pooling."""

    def __init__(self, in_channels: int, channels: Sequence[int], seed: int = 0) -> None:
        super().__init__()
        if not channels:
            raise NeuralNetworkError("TreeConvStack needs at least one output channel size")
        self.layers = []
        previous = in_channels
        for i, width in enumerate(channels):
            layer = BinaryTreeConv(previous, int(width), seed=seed + i)
            self.register_module(f"conv{i}", layer)
            self.layers.append(layer)
            previous = int(width)
        self.pool = self.register_module("pool", DynamicPooling())
        self.out_channels = previous

    def forward(self, nodes: Tensor, left: np.ndarray, right: np.ndarray,
                mask: np.ndarray) -> Tensor:
        hidden = nodes
        for layer in self.layers:
            hidden = layer(hidden, left, right, mask)
        return self.pool(hidden, mask)
