"""Performance measurement and regression tracking (``repro.perf``).

Run the suite from the command line::

    PYTHONPATH=src python -m repro.perf --scale smoke \
        --baseline benchmarks/baselines/core_baseline.json

See ``docs/performance.md`` for the hot-path inventory and how to read
``BENCH_core.json``.
"""

from .cases import SCALES, build_suite
from .harness import PerfCase, PerfHarness, PerfResult, calibration_seconds
from .report import (
    Comparison,
    as_payload,
    compare,
    format_comparisons,
    load_report,
    write_report,
)

__all__ = [
    "SCALES",
    "build_suite",
    "PerfCase",
    "PerfHarness",
    "PerfResult",
    "calibration_seconds",
    "Comparison",
    "as_payload",
    "compare",
    "format_comparisons",
    "load_report",
    "write_report",
]
