"""CLI entry point: ``python -m repro.perf``.

Measures the named hot paths, writes ``BENCH_core.json``, and (when a
baseline is given) fails with exit code 1 on a regression beyond the
threshold.  CI runs this as the perf-smoke job.
"""

from __future__ import annotations

import argparse
import sys

from .cases import SCALES, build_suite
from .harness import calibration_seconds
from .report import (
    as_payload,
    compare,
    format_comparisons,
    load_report,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Time the library's named hot paths and check for regressions.",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="smoke",
        help="workload scale (smoke: seconds-fast, used by CI)",
    )
    parser.add_argument(
        "--output", default="BENCH_core.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="committed baseline report to compare against",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="fail when a case is slower than THRESHOLD x the baseline "
             "(normalised units)",
    )
    parser.add_argument(
        "--cases", nargs="*", default=None,
        help="subset of case names to run (default: all)",
    )
    args = parser.parse_args(argv)

    harness = build_suite(args.scale)
    print(f"running {len(harness.case_names)} hot-path cases at scale {args.scale!r}")
    calibration = calibration_seconds()
    results = harness.run(args.cases)
    for name, result in results.items():
        print(
            f"  {name:<22} best {result.best_seconds * 1e3:8.2f} ms   "
            f"norm {result.best_seconds / calibration:6.3f}"
        )

    payload = as_payload(results, calibration, scale=args.scale)
    path = write_report(payload, args.output)
    print(f"wrote {path}")

    if args.baseline:
        baseline = load_report(args.baseline)
        comparisons = compare(payload, baseline, threshold=args.threshold)
        print(format_comparisons(comparisons))
        regressed = [c for c in comparisons if c.regressed]
        if regressed:
            names = ", ".join(c.name for c in regressed)
            print(f"PERF REGRESSION (> {args.threshold:.1f}x baseline): {names}")
            return 1
        print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
