"""The library's named hot paths, packaged as perf cases.

Ten paths cover every layer a figure benchmark or the serving stack
exercises:

* ``als_cold``       -- one full censored-ALS solve from scratch,
* ``als_warm``       -- a warm-started incremental refresh after a small
                        feedback batch (the serving/exploration steady state),
* ``explore_200_steps`` -- the end-to-end offline exploration loop
                        (Algorithm 1 with the incremental ALS predictor),
* ``tcnn_predict_full`` -- a full-matrix TCNN prediction pass,
* ``serve_batch``    -- the batched online serving path,
* ``telemetry_overhead`` -- the same serving loop with telemetry
                        *enabled* (metrics mirror + stage timing); its
                        normalised cost tracks the instrumentation tax
                        against ``serve_batch``,
* ``ingress_serve``  -- the asyncio front door: per-request awaits
                        coalesced into vectorised batches (event-loop,
                        future, and coalescer overhead included),
* ``adapt_drift``    -- the drift-adaptation loop: residual recording,
                        detection, and one budgeted response (invalidate +
                        re-anchor + re-explore + warm refresh),
* ``wal_append``     -- the write-ahead journal's append hot path (frame +
                        CRC + unbuffered write per feedback batch),
* ``recovery_replay`` -- crash recovery: snapshot load plus WAL replay
                        back to a live matrix.

Two scales are provided: ``smoke`` (seconds, used by the CI perf job) and
``default`` (the numbers quoted in ``docs/performance.md``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..config import ALSConfig, ExplorationConfig, TCNNConfig
from ..core.als import censored_als
from ..core.policies import LimeQOPolicy
from ..core.predictors import ALSPredictor
from ..core.simulation import ExplorationSimulator
from ..core.workload_matrix import WorkloadMatrix
from ..errors import PerfError
from ..serving.service import ServingService
from ..workloads.matrices import generate_workload
from ..workloads.spec import WorkloadSpec
from .harness import PerfHarness

SCALES: Dict[str, Dict[str, int]] = {
    "smoke": {
        "n_queries": 60,
        "n_hints": 16,
        "explore_steps": 60,
        "serve_batches": 50,
        "serve_batch_size": 512,
        "ingress_requests": 2000,
        "wal_appends": 400,
        "replay_records": 300,
        "repeats": 3,
    },
    "default": {
        "n_queries": 150,
        "n_hints": 24,
        "explore_steps": 200,
        "serve_batches": 200,
        "serve_batch_size": 1024,
        "ingress_requests": 8000,
        "wal_appends": 2000,
        "replay_records": 1500,
        "repeats": 3,
    },
}


def _workload(scale: Dict[str, int], seed: int = 11):
    spec = WorkloadSpec(
        name=f"perf-{scale['n_queries']}x{scale['n_hints']}",
        n_queries=scale["n_queries"],
        n_hints=scale["n_hints"],
        default_total=10.0 * scale["n_queries"],
        optimal_total=3.5 * scale["n_queries"],
        rank=5,
    )
    return generate_workload(spec, seed=seed)


def _partial_matrix(workload, fill: float = 0.25, seed: int = 3) -> WorkloadMatrix:
    """A partially observed matrix with a revealed default column and a few
    censored cells -- the state censored ALS sees mid-exploration."""
    n, k = workload.true_latencies.shape
    rng = np.random.default_rng(seed)
    matrix = WorkloadMatrix(n, k)
    matrix.observe_batch(
        np.arange(n), np.zeros(n, dtype=np.int64), workload.true_latencies[:, 0]
    )
    extra = rng.random((n, k)) < fill
    extra[:, 0] = False
    rows, cols = np.nonzero(extra)
    matrix.observe_batch(rows, cols, workload.true_latencies[rows, cols])
    for i in range(0, n, max(1, n // 6)):
        j = 1 + (i % (k - 1))
        if not matrix.is_observed(i, j):
            matrix.observe_censored(i, j, float(workload.true_latencies[i, j]) * 0.5)
    return matrix


def build_suite(scale_name: str = "smoke") -> PerfHarness:
    """Assemble the named hot-path suite at the requested scale."""
    if scale_name not in SCALES:
        raise PerfError(
            f"unknown scale {scale_name!r}; choose from {sorted(SCALES)}"
        )
    scale = SCALES[scale_name]
    repeats = scale["repeats"]
    harness = PerfHarness()

    # -- als_cold ----------------------------------------------------------
    def setup_als():
        workload = _workload(scale)
        matrix = _partial_matrix(workload)
        return (
            matrix.observed_values(),
            matrix.mask,
            matrix.timeout_matrix,
            ALSConfig(iterations=50),
        )

    def run_als_cold(state):
        observed, mask, timeouts, config = state
        result = censored_als(observed, mask, timeouts, config)
        return {"iterations": int(len(result.objective_trace))}

    harness.add("als_cold", run_als_cold, setup=setup_als, repeats=repeats)

    # -- als_warm ----------------------------------------------------------
    def setup_als_warm():
        workload = _workload(scale)
        matrix = _partial_matrix(workload)
        config = ALSConfig(iterations=50)
        cold = censored_als(
            matrix.observed_values(), matrix.mask, matrix.timeout_matrix, config
        )
        # A small feedback batch lands, then the factors are refreshed warm.
        rng = np.random.default_rng(17)
        unknown = np.flatnonzero(matrix.unknown_mask())
        picks = unknown[rng.choice(unknown.size, size=min(10, unknown.size), replace=False)]
        rows, cols = np.divmod(picks, matrix.n_hints)
        matrix.observe_batch(rows, cols, workload.true_latencies[rows, cols])
        return (
            matrix.observed_values(),
            matrix.mask,
            matrix.timeout_matrix,
            config,
            cold.factors,
        )

    def run_als_warm(state):
        observed, mask, timeouts, config, factors = state
        result = censored_als(
            observed, mask, timeouts, config, warm_start=factors, iterations=5
        )
        return {"iterations": int(len(result.objective_trace))}

    harness.add("als_warm", run_als_warm, setup=setup_als_warm, repeats=repeats)

    # -- explore_200_steps -------------------------------------------------
    def setup_explore():
        return _workload(scale)

    def run_explore(workload):
        config = ExplorationConfig(batch_size=4, seed=0)
        simulator = ExplorationSimulator(workload.true_latencies, config)
        policy = LimeQOPolicy(predictor=ALSPredictor(ALSConfig(iterations=50)))
        trace = simulator.run(policy, max_steps=scale["explore_steps"])
        return {
            "steps": int(len(trace.times) - 1),
            "final_latency": float(trace.final_latency),
        }

    harness.add("explore_200_steps", run_explore, setup=setup_explore, repeats=repeats)

    # -- tcnn_predict_full -------------------------------------------------
    def setup_tcnn():
        from ..nn.trainer import TCNNTrainer

        workload = _workload(scale)
        store = workload.feature_store()
        matrix = _partial_matrix(workload)
        config = TCNNConfig(
            channels=(8,), hidden_units=(16,), max_epochs=2, batch_size=64,
            dropout=0.0,
        )
        trainer = TCNNTrainer(store, matrix.n_queries, matrix.n_hints, config)
        trainer.fit(matrix)
        trainer.predict_full(matrix)  # prime the packed full-batch cache
        return trainer, matrix

    def run_tcnn(state):
        trainer, matrix = state
        predictions = trainer.predict_full(matrix)
        return {"cells": int(predictions.size)}

    harness.add("tcnn_predict_full", run_tcnn, setup=setup_tcnn, repeats=repeats)

    # -- serve_batch -------------------------------------------------------
    def setup_serving():
        workload = _workload(scale)
        matrix = _partial_matrix(workload, fill=0.4)
        service = ServingService(matrix)
        rng = np.random.default_rng(5)
        batches = [
            rng.integers(0, matrix.n_queries, size=scale["serve_batch_size"])
            for _ in range(scale["serve_batches"])
        ]
        return service, batches

    def run_serving(state):
        service, batches = state
        served = 0
        for batch in batches:
            served += service.serve_batch(batch).batch_size
        return {"served": served}

    harness.add("serve_batch", run_serving, setup=setup_serving, repeats=repeats)

    # -- telemetry_overhead ------------------------------------------------
    def setup_telemetry_overhead():
        from ..telemetry import Telemetry

        workload = _workload(scale)
        matrix = _partial_matrix(workload, fill=0.4)
        telemetry = Telemetry.enabled()
        service = ServingService(matrix, telemetry=telemetry)
        rng = np.random.default_rng(5)
        batches = [
            rng.integers(0, matrix.n_queries, size=scale["serve_batch_size"])
            for _ in range(scale["serve_batches"])
        ]
        return service, telemetry, batches

    def run_telemetry_overhead(state):
        # Timed region matches run_serve_batch exactly: any extra cost is
        # the instrumentation tax.  (Registry reads stay out of the loop.)
        service, telemetry, batches = state
        served = 0
        for batch in batches:
            served += service.serve_batch(batch).batch_size
        return {"served": served, "enabled": telemetry.config.enabled}

    harness.add(
        "telemetry_overhead",
        run_telemetry_overhead,
        setup=setup_telemetry_overhead,
        repeats=repeats,
    )

    # -- ingress_serve -----------------------------------------------------
    def setup_ingress():
        workload = _workload(scale)
        matrix = _partial_matrix(workload, fill=0.4)
        service = ServingService(matrix)
        rng = np.random.default_rng(7)
        queries = rng.integers(
            0, matrix.n_queries, size=scale["ingress_requests"]
        ).tolist()
        return service, queries

    def run_ingress(state):
        import asyncio

        from ..config import IngressConfig
        from ..ingress import ServiceIngress

        service, queries = state
        # Capacity covers the whole burst: this case measures the
        # coalescing hot path, not admission control.
        config = IngressConfig(
            max_batch=256,
            max_wait_s=0.001,
            queue_capacity=max(256, len(queries)),
        )

        async def drive():
            async with ServiceIngress(service, config) as ingress:
                return await ingress.serve_many(queries)

        results = asyncio.run(drive())
        return {
            "served": len(results),
            "shed": sum(1 for r in results if r.shed),
        }

    harness.add("ingress_serve", run_ingress, setup=setup_ingress, repeats=repeats)

    # -- adapt_drift -------------------------------------------------------
    def setup_adapt():
        from ..workloads.shift import shift_latencies

        workload = _workload(scale)
        truth = workload.true_latencies
        n, k = truth.shape
        matrix = WorkloadMatrix(n, k)
        matrix.observe_batch(
            np.arange(n), np.zeros(n, dtype=np.int64), truth[:, 0]
        )
        best = truth.argmin(axis=1)
        matrix.observe_batch(np.arange(n), best, truth[np.arange(n), best])
        drifted, _ = shift_latencies(
            truth, 0.3, 1.2, np.random.default_rng(29)
        )
        return matrix.to_dict(), drifted

    def run_adapt(state):
        from ..adaptive import AdaptationController, RowOracle
        from ..config import AdaptiveConfig
        from ..serving.refresh import IncrementalALSRefresher

        payload, drifted = state
        # Rebuild pristine serving state each repeat: a response mutates
        # the matrix, and the measured path must include exactly one
        # detection + one budgeted response every time.
        matrix = WorkloadMatrix.from_dict(payload)
        service = ServingService(
            matrix, refresher=IncrementalALSRefresher(ALSConfig())
        )
        controller = AdaptationController(
            service,
            RowOracle(lambda q, h: drifted[q, h]),
            config=AdaptiveConfig(window=256, min_samples=32, cooldown_ticks=0),
        )
        service.monitor = controller
        for _ in range(2):
            decisions = service.serve_all()
            service.record_measured(
                decisions, drifted[decisions.queries, decisions.hints]
            )
        responded = controller.tick()
        report = controller.report()
        return {
            "responded": int(responded),
            "explored": int(report.explored_cells),
            "invalidated": int(report.invalidated_rows),
        }

    harness.add("adapt_drift", run_adapt, setup=setup_adapt, repeats=repeats)

    # -- wal_append --------------------------------------------------------
    def setup_wal():
        import tempfile

        from ..durability.journal import ShardJournal

        home = tempfile.TemporaryDirectory(prefix="repro-perf-wal-")
        journal = ShardJournal(home.name)
        rng = np.random.default_rng(23)
        n, k = scale["n_queries"], scale["n_hints"]
        batches = [
            (
                rng.integers(0, n, size=64),
                rng.integers(0, k, size=64),
                rng.uniform(0.5, 20.0, size=64),
            )
            for _ in range(scale["wal_appends"])
        ]
        # The TemporaryDirectory rides along in the state so its finalizer
        # cleans the segments up when the harness lets go of it.
        return home, journal, batches

    def run_wal(state):
        _, journal, batches = state
        for queries, hints, values in batches:
            journal.log_observe(queries, hints, values)
        return {
            "records": int(journal.appended_records),
            "bytes": int(journal.appended_bytes),
        }

    harness.add("wal_append", run_wal, setup=setup_wal, repeats=repeats)

    # -- recovery_replay ---------------------------------------------------
    def setup_recovery():
        import tempfile

        from ..durability.journal import ShardJournal
        from ..durability.snapshot import matrix_to_jsonable

        home = tempfile.TemporaryDirectory(prefix="repro-perf-recover-")
        n, k = scale["n_queries"], scale["n_hints"]
        matrix = WorkloadMatrix(n, k)
        journal = ShardJournal(home.name)
        journal.log_import(matrix_to_jsonable(matrix.to_dict()))
        matrix.journal = journal
        rng = np.random.default_rng(31)
        matrix.observe_batch(
            np.arange(n), np.zeros(n, dtype=np.int64), rng.uniform(1.0, 10.0, n)
        )
        # Half the history lands before a checkpoint (folded into the
        # snapshot, segments truncated), half after (replayed record by
        # record) -- the mix a real crash sees.
        total = scale["replay_records"]
        for step in range(total):
            queries = rng.integers(0, n, size=32)
            hints = rng.integers(0, k, size=32)
            matrix.observe_batch(queries, hints, rng.uniform(0.5, 20.0, size=32))
            if step == total // 2:
                journal.checkpoint(matrix_to_jsonable(matrix.to_dict()))
        journal.close()
        return home

    def run_recovery(home):
        from ..durability.recovery import recover_journal

        journal, state = recover_journal(home.name)
        journal.close()
        return {
            "replayed": int(state.replayed_records),
            "skipped": int(state.skipped_records),
        }

    harness.add("recovery_replay", run_recovery, setup=setup_recovery, repeats=repeats)

    return harness
