"""A small timeit-style harness for the library's named hot paths.

The harness exists so performance claims are *measured and tracked*, not
asserted once in a PR description and forgotten.  Each :class:`PerfCase`
wraps one hot path behind a setup/run split (setup builds workloads and
models off the clock; run times only the path under measurement).  The
result of a run is serialised by :mod:`repro.perf.report` into
``BENCH_core.json`` and compared against a committed baseline.

Timings are reported both raw and *normalised* by a calibration
measurement (a fixed numpy workload timed on the same machine, in the same
process).  Raw seconds are not portable across machines; normalised units
mostly are, which is what lets CI compare against a baseline committed
from a different box without tripping on hardware speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..errors import PerfError


@dataclass
class PerfResult:
    """Timing of one case: best and mean wall-clock seconds over repeats."""

    name: str
    best_seconds: float
    mean_seconds: float
    repeats: int
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSON report."""
        payload: Dict[str, Any] = {
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "repeats": self.repeats,
        }
        if self.meta:
            payload["meta"] = self.meta
        return payload


@dataclass
class PerfCase:
    """One named hot path.

    ``setup`` runs once, off the clock, and its return value is passed to
    ``run`` on every repeat.  ``run`` may return a dict of metadata that is
    attached to the result (e.g. solver iteration counts), which ends up in
    the JSON report.
    """

    name: str
    run: Callable[[Any], Optional[Dict[str, Any]]]
    setup: Optional[Callable[[], Any]] = None
    repeats: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise PerfError("perf case needs a non-empty name")
        if self.repeats < 1:
            raise PerfError(f"repeats must be >= 1, got {self.repeats}")

    def measure(self) -> PerfResult:
        """Time the case: best-of-``repeats`` plus the mean."""
        state = self.setup() if self.setup is not None else None
        timings: List[float] = []
        meta: Dict[str, Any] = {}
        for _ in range(self.repeats):
            start = time.perf_counter()
            extra = self.run(state)
            timings.append(time.perf_counter() - start)
            if extra:
                meta = dict(extra)
        return PerfResult(
            name=self.name,
            best_seconds=float(min(timings)),
            mean_seconds=float(np.mean(timings)),
            repeats=self.repeats,
            meta=meta,
        )


class PerfHarness:
    """An ordered registry of perf cases."""

    def __init__(self) -> None:
        self._cases: Dict[str, PerfCase] = {}

    @property
    def case_names(self) -> List[str]:
        """Registered case names, in registration order."""
        return list(self._cases)

    def register(self, case: PerfCase) -> PerfCase:
        """Add a case; names must be unique."""
        if case.name in self._cases:
            raise PerfError(f"duplicate perf case {case.name!r}")
        self._cases[case.name] = case
        return case

    def add(
        self,
        name: str,
        run: Callable[[Any], Optional[Dict[str, Any]]],
        setup: Optional[Callable[[], Any]] = None,
        repeats: int = 3,
    ) -> PerfCase:
        """Convenience wrapper around :meth:`register`."""
        return self.register(PerfCase(name=name, run=run, setup=setup, repeats=repeats))

    def run(self, names: Optional[List[str]] = None) -> Dict[str, PerfResult]:
        """Measure the selected (default: all) cases in registration order."""
        if names is None:
            selected = list(self._cases.values())
        else:
            missing = [n for n in names if n not in self._cases]
            if missing:
                raise PerfError(f"unknown perf case(s): {missing}")
            selected = [self._cases[n] for n in names]
        return {case.name: case.measure() for case in selected}


def calibration_seconds(repeats: int = 3) -> float:
    """Time a fixed numpy workload as a machine-speed yardstick.

    The workload (dense matmul + solve + fancy-indexed scatter on fixed
    shapes) exercises the same primitive mix as the library's hot paths,
    so ``case_seconds / calibration_seconds`` is roughly machine-
    independent.  Best-of-``repeats`` to shed scheduler noise.
    """
    rng = np.random.default_rng(0)
    a = rng.random((240, 240))
    b = rng.random((240, 240))
    rows = rng.integers(0, 240, size=4000)
    cols = rng.integers(0, 240, size=4000)
    vals = rng.random(4000)
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(8):
            c = a @ b
            c[rows, cols] = vals
            np.linalg.solve(a + 240 * np.eye(240), b)
        timings.append(time.perf_counter() - start)
    return float(min(timings))
