"""Serialisation and regression comparison for perf-harness runs.

The report format (``BENCH_core.json``) stores, per case, raw seconds and
*normalised* units (seconds divided by a same-process calibration
measurement, see :func:`repro.perf.harness.calibration_seconds`).
Regression checks compare normalised units so a committed baseline from
one machine remains meaningful on another; the threshold is deliberately
generous (2x by default) because normalisation removes most -- not all --
of the hardware variance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import PerfError
from .harness import PerfResult

SCHEMA_VERSION = 1


def as_payload(
    results: Dict[str, PerfResult],
    calibration: float,
    scale: str = "default",
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the JSON-ready report dictionary for a harness run."""
    if calibration <= 0:
        raise PerfError(f"calibration must be > 0, got {calibration}")
    cases = {}
    for name, result in results.items():
        entry = result.as_dict()
        entry["normalized"] = result.best_seconds / calibration
        cases[name] = entry
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "calibration_seconds": calibration,
        "cases": cases,
    }
    if extra:
        payload["extra"] = dict(extra)
    return payload


def write_report(payload: Dict[str, Any], path: str) -> str:
    """Write a payload as pretty JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=float)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, Any]:
    """Read a report produced by :func:`write_report`."""
    with open(path) as handle:
        payload = json.load(handle)
    if "cases" not in payload:
        raise PerfError(f"{path} is not a perf report (no 'cases' key)")
    return payload


@dataclass
class Comparison:
    """Outcome of comparing one case against the baseline."""

    name: str
    current: float
    baseline: Optional[float]
    threshold: float

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline in normalised units (None for new cases)."""
        if self.baseline is None or self.baseline <= 0:
            return None
        return self.current / self.baseline

    @property
    def regressed(self) -> bool:
        """True when the case is slower than ``threshold`` x the baseline."""
        ratio = self.ratio
        return ratio is not None and ratio > self.threshold


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = 2.0,
) -> List[Comparison]:
    """Compare two reports case by case (normalised units).

    Cases present only in ``current`` get ``baseline=None`` and never count
    as regressions (new hot paths should not fail the gate that introduces
    them); cases present only in the baseline are ignored.
    """
    if threshold <= 1.0:
        raise PerfError(f"threshold must be > 1, got {threshold}")
    comparisons = []
    baseline_cases = baseline.get("cases", {})
    for name, entry in current.get("cases", {}).items():
        base_entry = baseline_cases.get(name)
        comparisons.append(
            Comparison(
                name=name,
                current=float(entry["normalized"]),
                baseline=(
                    None if base_entry is None else float(base_entry["normalized"])
                ),
                threshold=threshold,
            )
        )
    return comparisons


def format_comparisons(comparisons: List[Comparison]) -> str:
    """A fixed-width text table of the comparison outcome."""
    lines = [
        f"{'case':<22} {'current':>10} {'baseline':>10} {'ratio':>7}  status",
        "-" * 60,
    ]
    for c in comparisons:
        base = "--" if c.baseline is None else f"{c.baseline:.3f}"
        ratio = "--" if c.ratio is None else f"{c.ratio:.2f}x"
        status = "REGRESSED" if c.regressed else ("new" if c.baseline is None else "ok")
        lines.append(
            f"{c.name:<22} {c.current:>10.3f} {base:>10} {ratio:>7}  {status}"
        )
    return "\n".join(lines)
