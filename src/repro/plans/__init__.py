"""Plan-tree utilities: binarisation and featurisation for the TCNN.

The neural method (LimeQO+) needs each workload-matrix cell to carry a
featurised query-plan tree.  This package converts the DB substrate's
:class:`~repro.db.operators.PlanNode` trees into padded tensors suitable
for tree convolution, and provides feature stores:

* :class:`~repro.plans.featurize.PlanFeatureStore` -- built from real plans
  produced by the simulated optimizer,
* :class:`~repro.plans.featurize.SyntheticPlanFeatureStore` -- derives
  pseudo-plans from latent workload factors when only a latency matrix is
  available (the fast benchmark path).
"""

from .featurize import (
    NODE_FEATURE_DIM,
    PlanFeatureStore,
    PlanFeaturizer,
    SyntheticPlanFeatureStore,
    TreeBatch,
)
from .tree import binarize_plan, plan_to_arrays

__all__ = [
    "NODE_FEATURE_DIM",
    "PlanFeatureStore",
    "PlanFeaturizer",
    "SyntheticPlanFeatureStore",
    "TreeBatch",
    "binarize_plan",
    "plan_to_arrays",
]
