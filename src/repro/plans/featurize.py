"""Featurisation of workload-matrix cells for the neural method.

A *feature store* maps a (query, hint) cell to a featurised plan tree.  The
TCNN trainer asks the store for batches: padded arrays of node features and
child indices (see :class:`TreeBatch`).

Two stores are provided:

* :class:`PlanFeatureStore` -- built from real plans produced by the
  simulated optimizer, mirroring a Bao-style deployment where ``EXPLAIN``
  output is featurised;
* :class:`SyntheticPlanFeatureStore` -- when a workload exists only as a
  latency matrix (the fast benchmark path), it derives deterministic
  pseudo-plans from latent query/hint factors so plan features remain
  predictive of latency, which is the property LimeQO+ exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..db.hints import HintSet
from ..db.operators import ALL_OPERATOR_NAMES, PlanNode
from ..db.optimizer import PlanEnumerator
from ..db.query import Query
from ..errors import PlanError
from .tree import plan_to_arrays

NODE_FEATURE_DIM = len(ALL_OPERATOR_NAMES) + 2


@dataclass
class TreeBatch:
    """A batch of padded plan trees ready for tree convolution.

    Attributes
    ----------
    nodes:
        ``(batch, max_nodes, NODE_FEATURE_DIM)`` node feature tensor; row 0
        of every sample is the all-zero null node.
    left / right:
        ``(batch, max_nodes)`` integer child indices into the node axis.
    mask:
        ``(batch, max_nodes)`` 1.0 for real nodes, 0.0 for padding and the
        null node.
    """

    nodes: np.ndarray
    left: np.ndarray
    right: np.ndarray
    mask: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of plans in the batch."""
        return self.nodes.shape[0]

    @property
    def max_nodes(self) -> int:
        """Padded node count per plan."""
        return self.nodes.shape[1]

    def take(self, index) -> "TreeBatch":
        """Sub-batch along the plan axis (``index`` is a slice or int array).

        The tree convolution is width-invariant -- padded nodes are masked
        out and never selected by the dynamic pooling -- so slicing a wide
        pre-packed batch produces exactly the same model outputs as packing
        the sub-batch from scratch.  This is what lets the trainer featurise
        and pad its training set once per fit and reuse the arrays across
        every epoch's mini-batches.
        """
        return TreeBatch(
            nodes=self.nodes[index],
            left=self.left[index],
            right=self.right[index],
            mask=self.mask[index],
        )


def pack_trees(trees: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]) -> TreeBatch:
    """Pad individual (nodes, left, right) arrays into one :class:`TreeBatch`."""
    if not trees:
        raise PlanError("cannot pack an empty list of trees")
    max_nodes = max(nodes.shape[0] for nodes, _, _ in trees)
    batch = len(trees)
    nodes = np.zeros((batch, max_nodes, NODE_FEATURE_DIM), dtype=float)
    left = np.zeros((batch, max_nodes), dtype=np.int64)
    right = np.zeros((batch, max_nodes), dtype=np.int64)
    mask = np.zeros((batch, max_nodes), dtype=float)
    for b, (node_arr, left_arr, right_arr) in enumerate(trees):
        count = node_arr.shape[0]
        nodes[b, :count] = node_arr
        left[b, :count] = left_arr
        right[b, :count] = right_arr
        mask[b, 1:count] = 1.0  # position 0 is the null node
    return TreeBatch(nodes=nodes, left=left, right=right, mask=mask)


class _FullBatchCacheMixin:
    """Shared cache for the packed full-matrix :class:`TreeBatch`.

    Plans are deterministic per cell, so the packed arrays only go stale
    when the store grows; the cache is keyed on the store's shape.  This is
    what makes repeated full-matrix predictions (one per exploration step)
    pay for featurisation and padding exactly once.
    """

    def full_batch(self) -> TreeBatch:
        """One padded batch covering every cell in row-major order (cached)."""
        cached = getattr(self, "_full_batch", None)
        if cached is None or getattr(self, "_full_batch_shape", None) != self.shape:
            n, k = self.shape
            cells = [(q, h) for q in range(n) for h in range(k)]
            cached = self.batch(cells)
            self._full_batch = cached
            self._full_batch_shape = (n, k)
        return cached


class PlanFeaturizer:
    """Featurises real plans from the simulated optimizer."""

    def __init__(self, enumerator: PlanEnumerator) -> None:
        self.enumerator = enumerator

    def featurize(self, query: Query, hint_set: HintSet) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Plan the query under the hint set and flatten the plan to arrays."""
        plan = self.enumerator.optimize(query, hint_set)
        return plan_to_arrays(plan)

    def featurize_plan(self, plan: PlanNode) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten an already-optimized plan."""
        return plan_to_arrays(plan)


class PlanFeatureStore(_FullBatchCacheMixin):
    """Caches featurised plans for every (query, hint) cell of a workload."""

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        queries: Sequence[Query],
        hint_sets: Sequence[HintSet],
    ) -> None:
        self.featurizer = featurizer
        self.queries = list(queries)
        self.hint_sets = list(hint_sets)
        self._cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def shape(self) -> Tuple[int, int]:
        """(number of queries, number of hint sets)."""
        return (len(self.queries), len(self.hint_sets))

    def tree(self, query: int, hint: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Featurised plan arrays for one cell (cached)."""
        key = (query, hint)
        if key not in self._cache:
            self._cache[key] = self.featurizer.featurize(
                self.queries[query], self.hint_sets[hint]
            )
        return self._cache[key]

    def batch(self, cells: Sequence[Tuple[int, int]]) -> TreeBatch:
        """Featurised plans for a batch of cells."""
        return pack_trees([self.tree(q, h) for q, h in cells])

    def add_query(self, query: Query) -> int:
        """Register a new query (workload shift) and return its row index."""
        self.queries.append(query)
        return len(self.queries) - 1


class SyntheticPlanFeatureStore(_FullBatchCacheMixin):
    """Derives pseudo-plan features from latent workload factors.

    Used when a workload is generated directly as a latency matrix with
    known latent query/hint factors (see
    :class:`repro.workloads.matrices.SyntheticWorkload`).  Each cell gets a
    small deterministic binary tree whose node features are noisy functions
    of the latent factors, so a tree convolution can genuinely learn to
    predict latency from "plan features" -- the property that makes LimeQO+
    converge faster than the linear method in the paper.
    """

    def __init__(
        self,
        query_factors: np.ndarray,
        hint_factors: np.ndarray,
        noise: float = 0.05,
        nodes_per_plan: int = 7,
        seed: int = 0,
    ) -> None:
        self.query_factors = np.asarray(query_factors, dtype=float)
        self.hint_factors = np.asarray(hint_factors, dtype=float)
        if self.query_factors.ndim != 2 or self.hint_factors.ndim != 2:
            raise PlanError("latent factors must be 2-D arrays")
        if self.query_factors.shape[1] != self.hint_factors.shape[1]:
            raise PlanError("query and hint factors must share the latent dimension")
        if nodes_per_plan < 1:
            raise PlanError("nodes_per_plan must be >= 1")
        self.noise = float(noise)
        self.nodes_per_plan = int(nodes_per_plan)
        self.seed = int(seed)
        self._cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def shape(self) -> Tuple[int, int]:
        """(number of queries, number of hint sets)."""
        return (self.query_factors.shape[0], self.hint_factors.shape[0])

    def add_query(self, query_factor: Optional[np.ndarray] = None) -> int:
        """Append a new query row; a random latent factor is drawn if omitted."""
        if query_factor is None:
            rng = np.random.default_rng(self.seed + 7919 * self.query_factors.shape[0])
            query_factor = rng.random(self.query_factors.shape[1])
        query_factor = np.asarray(query_factor, dtype=float).reshape(1, -1)
        if query_factor.shape[1] != self.query_factors.shape[1]:
            raise PlanError("new query factor has the wrong latent dimension")
        self.query_factors = np.vstack([self.query_factors, query_factor])
        return self.query_factors.shape[0] - 1

    def tree(self, query: int, hint: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pseudo-plan arrays for one cell (cached, deterministic)."""
        key = (query, hint)
        if key in self._cache:
            return self._cache[key]
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + query * 49_999 + hint * 101) % (2 ** 32)
        )
        count = self.nodes_per_plan + 1  # +1 null node
        nodes = np.zeros((count, NODE_FEATURE_DIM), dtype=float)
        left = np.zeros(count, dtype=np.int64)
        right = np.zeros(count, dtype=np.int64)

        signal = float(self.query_factors[query] @ self.hint_factors[hint])
        q_norm = float(np.linalg.norm(self.query_factors[query]))
        h_norm = float(np.linalg.norm(self.hint_factors[hint]))
        for i in range(1, count):
            op = int(rng.integers(0, len(ALL_OPERATOR_NAMES)))
            nodes[i, op] = 1.0
            nodes[i, -2] = np.log1p(abs(signal)) + rng.normal(0.0, self.noise)
            nodes[i, -1] = np.log1p(q_norm * h_norm) + rng.normal(0.0, self.noise)
        # Left-deep pseudo-structure: node i's left child is node i+1.
        for i in range(1, count - 1):
            left[i] = i + 1
        arrays = (nodes, left, right)
        self._cache[key] = arrays
        return arrays

    def batch(self, cells: Sequence[Tuple[int, int]]) -> TreeBatch:
        """Featurised pseudo-plans for a batch of cells."""
        return pack_trees([self.tree(q, h) for q, h in cells])
