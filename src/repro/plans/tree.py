"""Plan-tree binarisation and array conversion.

Tree convolution expects strictly binary trees.  The plans produced by the
simulated optimizer are already binary (scans are leaves, joins have two
children), so binarisation is a validation / defensive-copy step here; the
function exists because a real PostgreSQL plan can contain unary nodes
(aggregates, sorts, gathers) that Bao splices out.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..db.operators import ALL_OPERATOR_NAMES, PlanNode
from ..errors import PlanError

OPERATOR_INDEX = {name: i for i, name in enumerate(ALL_OPERATOR_NAMES)}


def binarize_plan(plan: PlanNode) -> PlanNode:
    """Return a validated binary copy of ``plan``.

    Unary chains (if they ever existed) would be collapsed onto their child;
    nodes with more than two children are rejected.
    """
    if plan.is_scan:
        return PlanNode(
            operator=plan.operator,
            alias=plan.alias,
            table=plan.table,
            estimated_rows=plan.estimated_rows,
            estimated_cost=plan.estimated_cost,
            true_rows=plan.true_rows,
            true_cost=plan.true_cost,
        )
    if len(plan.children) != 2:
        raise PlanError(
            f"cannot binarize a node with {len(plan.children)} children"
        )
    return PlanNode(
        operator=plan.operator,
        children=[binarize_plan(plan.children[0]), binarize_plan(plan.children[1])],
        estimated_rows=plan.estimated_rows,
        estimated_cost=plan.estimated_cost,
        true_rows=plan.true_rows,
        true_cost=plan.true_cost,
    )


def node_feature_vector(node: PlanNode) -> np.ndarray:
    """Featurise one node: one-hot operator + log cost + log cardinality."""
    features = np.zeros(len(ALL_OPERATOR_NAMES) + 2, dtype=float)
    features[OPERATOR_INDEX[node.operator]] = 1.0
    features[-2] = np.log1p(max(node.estimated_cost, 0.0))
    features[-1] = np.log1p(max(node.estimated_rows, 0.0))
    return features


def plan_to_arrays(plan: PlanNode) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a binary plan into (nodes, left_index, right_index) arrays.

    Index 0 is a reserved all-zero "null" node; real nodes start at 1 in
    pre-order.  Missing children point at index 0, which lets the tree
    convolution gather children without branching.
    """
    plan = binarize_plan(plan)
    flat: List[PlanNode] = list(plan.iter_nodes())
    count = len(flat) + 1  # +1 for the null node at position 0
    feature_dim = len(ALL_OPERATOR_NAMES) + 2
    nodes = np.zeros((count, feature_dim), dtype=float)
    left = np.zeros(count, dtype=np.int64)
    right = np.zeros(count, dtype=np.int64)

    position = {id(node): i + 1 for i, node in enumerate(flat)}
    for node in flat:
        idx = position[id(node)]
        nodes[idx] = node_feature_vector(node)
        if node.children:
            left[idx] = position[id(node.children[0])]
            right[idx] = position[id(node.children[1])]
    return nodes, left, right
