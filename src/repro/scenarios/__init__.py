"""Declarative traffic & drift scenarios: seeded, replayable serving timelines.

The ROADMAP's scenario-diversity goal, packaged: a scenario is a frozen
spec (tenants + phases + events), a mutable ground-truth world, and a
runner that drives a live :class:`~repro.serving.ServingService` or
:class:`~repro.cluster.ServingCluster` through it tick by tick:

* :mod:`repro.scenarios.spec` -- :class:`TenantSpec`, :class:`ScenarioPhase`,
  :class:`ScenarioEvent`, :class:`ScenarioSpec` (validated at construction),
* :mod:`repro.scenarios.world` -- the evolving per-tenant ground truth
  (drift, ETL floods, new templates, visibility horizons),
* :mod:`repro.scenarios.runner` -- :class:`ScenarioRunner` /
  :class:`ScenarioTrace`: arrivals, execution, adaptive feedback, replayable
  decision blobs,
* :mod:`repro.scenarios.primitives` -- the named library (sudden 70/30
  shift, gradual drift, diurnal mixes, flash crowds, template streams, ETL
  floods, tenant churn, shard-crash chaos) mapped to the paper's
  Figures 8-11.
"""

from .primitives import (
    diurnal_tenant_mix,
    drift_benchmark_scenarios,
    etl_flood,
    flash_crowd,
    gradual_data_drift,
    kill_shard_mid_drift,
    new_template_stream,
    restart_during_flash_crowd,
    standard_scenarios,
    sudden_workload_shift,
    tenant_churn,
)
from .runner import ScenarioRunner, ScenarioTrace, TickStats
from .spec import (
    CLUSTER_ACTIONS,
    DISTURBANCE_ACTIONS,
    EVENT_ACTIONS,
    ScenarioEvent,
    ScenarioPhase,
    ScenarioSpec,
    TenantSpec,
)
from .world import TenantWorld

__all__ = [
    "diurnal_tenant_mix",
    "drift_benchmark_scenarios",
    "etl_flood",
    "flash_crowd",
    "gradual_data_drift",
    "kill_shard_mid_drift",
    "new_template_stream",
    "restart_during_flash_crowd",
    "standard_scenarios",
    "sudden_workload_shift",
    "tenant_churn",
    "ScenarioRunner",
    "ScenarioTrace",
    "TickStats",
    "CLUSTER_ACTIONS",
    "DISTURBANCE_ACTIONS",
    "EVENT_ACTIONS",
    "ScenarioEvent",
    "ScenarioPhase",
    "ScenarioSpec",
    "TenantSpec",
    "TenantWorld",
]
