"""Reusable scenario primitives and the named scenario library.

Each builder composes :class:`~repro.scenarios.spec.ScenarioSpec` pieces
into one canonical robustness story from the paper's Section 5 -- plus the
serving-scale stories (flash crowds, diurnal mixes, tenant churn) the
ROADMAP's scenario-diversity goal asks for:

* :func:`sudden_workload_shift`  -- the 70/30 split, late 30% arriving at
  once (Figure 9),
* :func:`gradual_data_drift`     -- small per-tick drift compounding into
  the Figure 10 curve,
* :func:`diurnal_tenant_mix`     -- cyclic tenant weights with a mid-cycle
  data shift,
* :func:`flash_crowd`            -- a 4x arrival burst landing exactly on
  a data shift,
* :func:`new_template_stream`    -- batches of unseen templates arriving
  over several ticks,
* :func:`etl_flood`              -- incompressible ETL rows flooding in
  while the base workload drifts (Figure 8 meets Figure 11),
* :func:`tenant_churn`           -- tenants joining cold / leaving live
  with a shard added mid-run (cluster targets),
* :func:`kill_shard_mid_drift`   -- a shard crashes mid-drift and rejoins
  from its write-ahead journal (cluster targets),
* :func:`restart_during_flash_crowd` -- a crashed shard rejoins in the
  middle of a 4x burst (cluster targets).

All builders are pure: same arguments, same spec -- replay determinism
starts here.  :func:`standard_scenarios` is the whole library by name;
:func:`drift_benchmark_scenarios` is the six-scenario subset the
``benchmarks/test_adaptive_drift.py`` acceptance gate runs on a single
service.
"""

from __future__ import annotations

from typing import Dict

from .spec import ScenarioEvent, ScenarioPhase, ScenarioSpec, TenantSpec


def sudden_workload_shift(
    seed: int = 0,
    n_queries: int = 120,
    n_hints: int = 12,
    batch_size: int = 128,
) -> ScenarioSpec:
    """Figure 9: 70% of the workload is known, the other 30% arrives at once."""
    return ScenarioSpec(
        name="sudden_workload_shift",
        seed=seed,
        tenants=(
            TenantSpec(
                name="web",
                n_queries=n_queries,
                n_hints=n_hints,
                initial_fraction=0.7,
            ),
        ),
        phases=(
            ScenarioPhase(name="steady", ticks=12, batch_size=batch_size),
            ScenarioPhase(name="shifted", ticks=20, batch_size=batch_size),
        ),
        events=(
            ScenarioEvent(tick=12, action="activate_rest", tenant="web"),
        ),
    )


def gradual_data_drift(
    seed: int = 0,
    n_queries: int = 120,
    n_hints: int = 12,
    batch_size: int = 128,
) -> ScenarioSpec:
    """Figure 10: a little of the data ages every tick, compounding."""
    return ScenarioSpec(
        name="gradual_data_drift",
        seed=seed,
        tenants=(
            TenantSpec(name="analytics", n_queries=n_queries, n_hints=n_hints),
        ),
        phases=(
            ScenarioPhase(name="steady", ticks=10, batch_size=batch_size),
            ScenarioPhase(
                name="aging",
                ticks=12,
                batch_size=batch_size,
                drift_per_tick={"changed_fraction": 0.04, "growth_factor": 1.008},
            ),
            ScenarioPhase(name="settled", ticks=12, batch_size=batch_size),
        ),
    )


def diurnal_tenant_mix(
    seed: int = 0,
    n_queries: int = 60,
    n_hints: int = 12,
    batch_size: int = 128,
) -> ScenarioSpec:
    """Three tenants on a day/night cycle; one drifts mid-cycle."""
    tenants = tuple(
        TenantSpec(name=name, n_queries=n_queries, n_hints=n_hints, seed=i)
        for i, name in enumerate(("morning", "midday", "evening"))
    )
    return ScenarioSpec(
        name="diurnal_tenant_mix",
        seed=seed,
        tenants=tenants,
        phases=(
            ScenarioPhase(
                name="cycling",
                ticks=32,
                batch_size=batch_size,
                diurnal_period=8,
                diurnal_amplitude=0.8,
            ),
        ),
        events=(
            ScenarioEvent(
                tick=12,
                action="data_drift",
                tenant="midday",
                params={"changed_fraction": 0.35, "growth_factor": 1.15},
            ),
        ),
    )


def flash_crowd(
    seed: int = 0,
    n_queries: int = 120,
    n_hints: int = 12,
    batch_size: int = 96,
) -> ScenarioSpec:
    """A 4x arrival burst lands exactly when the data shifts under it."""
    return ScenarioSpec(
        name="flash_crowd",
        seed=seed,
        tenants=(
            TenantSpec(name="storefront", n_queries=n_queries, n_hints=n_hints),
        ),
        phases=(
            ScenarioPhase(name="calm", ticks=10, batch_size=batch_size),
            ScenarioPhase(
                name="burst",
                ticks=8,
                batch_size=batch_size,
                burst_multiplier=4.0,
            ),
            ScenarioPhase(name="after", ticks=14, batch_size=batch_size),
        ),
        events=(
            ScenarioEvent(
                tick=10,
                action="data_drift",
                tenant="storefront",
                params={"changed_fraction": 0.30, "growth_factor": 1.15},
            ),
        ),
    )


def new_template_stream(
    seed: int = 0,
    n_queries: int = 120,
    n_hints: int = 12,
    batch_size: int = 128,
) -> ScenarioSpec:
    """Unseen query templates keep arriving in waves."""
    return ScenarioSpec(
        name="new_template_stream",
        seed=seed,
        tenants=(
            TenantSpec(name="reports", n_queries=n_queries, n_hints=n_hints),
        ),
        phases=(
            ScenarioPhase(name="steady", ticks=10, batch_size=batch_size),
            ScenarioPhase(name="stream", ticks=14, batch_size=batch_size),
            ScenarioPhase(name="settled", ticks=8, batch_size=batch_size),
        ),
        events=tuple(
            ScenarioEvent(
                tick=tick,
                action="new_templates",
                tenant="reports",
                params={"count": 10},
            )
            for tick in (10, 13, 16, 19)
        ),
    )


def etl_flood(
    seed: int = 0,
    n_queries: int = 120,
    n_hints: int = 12,
    batch_size: int = 128,
) -> ScenarioSpec:
    """Figure 8 meets Figure 11: an ETL flood masks a concurrent data shift."""
    return ScenarioSpec(
        name="etl_flood",
        seed=seed,
        tenants=(
            TenantSpec(name="warehouse", n_queries=n_queries, n_hints=n_hints),
        ),
        phases=(
            ScenarioPhase(name="steady", ticks=10, batch_size=batch_size),
            ScenarioPhase(name="flooded", ticks=22, batch_size=batch_size),
        ),
        events=(
            ScenarioEvent(
                tick=10,
                action="etl_flood",
                tenant="warehouse",
                params={"count": 10, "jitter": 0.01},
            ),
            ScenarioEvent(
                tick=11,
                action="data_drift",
                tenant="warehouse",
                params={"changed_fraction": 0.30, "growth_factor": 1.10},
            ),
        ),
    )


def tenant_churn(
    seed: int = 0,
    n_queries: int = 80,
    n_hints: int = 12,
    batch_size: int = 128,
) -> ScenarioSpec:
    """Cluster churn: a cold tenant joins, a shard is added live, data
    drifts, and an original tenant leaves -- all in one run (cluster-only)."""
    return ScenarioSpec(
        name="tenant_churn",
        seed=seed,
        tenants=(
            TenantSpec(name="alpha", n_queries=n_queries, n_hints=n_hints, seed=0),
            TenantSpec(name="beta", n_queries=n_queries, n_hints=n_hints, seed=1),
        ),
        phases=(
            ScenarioPhase(name="duo", ticks=10, batch_size=batch_size),
            ScenarioPhase(name="churning", ticks=24, batch_size=batch_size),
        ),
        events=(
            ScenarioEvent(
                tick=10,
                action="tenant_join",
                tenant_spec=TenantSpec(
                    name="gamma", n_queries=n_queries, n_hints=n_hints, seed=2
                ),
            ),
            ScenarioEvent(tick=10, action="add_shard"),
            ScenarioEvent(
                tick=16,
                action="data_drift",
                tenant="alpha",
                params={"changed_fraction": 0.30, "growth_factor": 1.15},
            ),
            ScenarioEvent(tick=22, action="tenant_leave", tenant="beta"),
        ),
    )


def kill_shard_mid_drift(
    seed: int = 0,
    n_queries: int = 80,
    n_hints: int = 12,
    batch_size: int = 128,
    shard: int = 0,
) -> ScenarioSpec:
    """Chaos: a shard process dies in the middle of a gradual drift and
    rejoins from its journal several ticks later (cluster-only).

    The outage window exercises degraded default-plan serving plus the
    feedback outage queue; the restart exercises WAL replay, queue drain,
    and adaptation-backlog recovery -- all while the data keeps aging.
    """
    return ScenarioSpec(
        name="kill_shard_mid_drift",
        seed=seed,
        tenants=(
            TenantSpec(name="ledger", n_queries=n_queries, n_hints=n_hints),
        ),
        phases=(
            ScenarioPhase(name="steady", ticks=8, batch_size=batch_size),
            ScenarioPhase(
                name="aging",
                ticks=14,
                batch_size=batch_size,
                drift_per_tick={"changed_fraction": 0.05, "growth_factor": 1.01},
            ),
            ScenarioPhase(name="settled", ticks=10, batch_size=batch_size),
        ),
        events=(
            ScenarioEvent(
                tick=12, action="kill_shard", params={"shard": shard}
            ),
            ScenarioEvent(
                tick=17, action="restart_shard", params={"shard": shard}
            ),
        ),
    )


def restart_during_flash_crowd(
    seed: int = 0,
    n_queries: int = 120,
    n_hints: int = 12,
    batch_size: int = 96,
    shard: int = 0,
) -> ScenarioSpec:
    """Chaos: a shard lost before a flash crowd rejoins mid-burst
    (cluster-only).

    The 4x burst lands while the cluster is degraded, so the recovered
    shard must absorb both the queued outage feedback and peak traffic the
    moment it is back.
    """
    return ScenarioSpec(
        name="restart_during_flash_crowd",
        seed=seed,
        tenants=(
            TenantSpec(name="checkout", n_queries=n_queries, n_hints=n_hints),
        ),
        phases=(
            ScenarioPhase(name="calm", ticks=10, batch_size=batch_size),
            ScenarioPhase(
                name="burst",
                ticks=8,
                batch_size=batch_size,
                burst_multiplier=4.0,
            ),
            ScenarioPhase(name="after", ticks=12, batch_size=batch_size),
        ),
        events=(
            ScenarioEvent(
                tick=8, action="kill_shard", params={"shard": shard}
            ),
            ScenarioEvent(
                tick=10,
                action="data_drift",
                tenant="checkout",
                params={"changed_fraction": 0.25, "growth_factor": 1.12},
            ),
            ScenarioEvent(
                tick=13, action="restart_shard", params={"shard": shard}
            ),
        ),
    )


def standard_scenarios(seed: int = 0) -> Dict[str, ScenarioSpec]:
    """The whole named library, seed applied uniformly."""
    specs = [
        sudden_workload_shift(seed),
        gradual_data_drift(seed),
        diurnal_tenant_mix(seed),
        flash_crowd(seed),
        new_template_stream(seed),
        etl_flood(seed),
        tenant_churn(seed),
        kill_shard_mid_drift(seed),
        restart_during_flash_crowd(seed),
    ]
    return {spec.name: spec for spec in specs}


def drift_benchmark_scenarios(seed: int = 0) -> Dict[str, ScenarioSpec]:
    """The six single-service scenarios the acceptance benchmark runs."""
    library = standard_scenarios(seed)
    return {
        name: library[name]
        for name in (
            "sudden_workload_shift",
            "gradual_data_drift",
            "diurnal_tenant_mix",
            "flash_crowd",
            "new_template_stream",
            "etl_flood",
        )
    }
