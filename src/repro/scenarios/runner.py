"""The scenario runner: a seeded timeline driving a live serving stack.

:class:`ScenarioRunner` executes a :class:`~repro.scenarios.spec.ScenarioSpec`
tick by tick against either a single :class:`~repro.serving.ServingService`
(multi-tenant rows unioned into one matrix) or a sharded
:class:`~repro.cluster.ServingCluster`.  Per tick it:

1. fires the tick's events (drift, floods, churn, shard adds, shard
   crashes / journal-recovery rejoins) against the mutable
   :class:`~repro.scenarios.world.TenantWorld` ground truth,
2. samples arrivals from the phase's tenant mix (diurnal modulation and
   flash-crowd bursts included) with a dedicated arrival RNG stream,
3. serves each tenant's batch, *executes* the served hints against the
   current ground truth, and -- in adaptive mode -- feeds the measured
   latencies back through :meth:`ServingService.record_measured` /
   :meth:`ClusterAdaptationController.record`,
4. runs one background heartbeat (adaptation controller tick, cluster
   refresh-scheduler tick) off the serve path.

Everything random derives from ``spec.seed`` through named RNG streams
(arrivals, world mutations, bootstrap), and arrivals/mutations never depend
on serving decisions -- so a static and an adaptive run see byte-identical
traffic and ground truth, and two runs of the same configuration produce
byte-identical decision traces (asserted in
``benchmarks/test_adaptive_drift.py``).
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..adaptive.cluster import ClusterAdaptationController
from ..adaptive.controller import AdaptationController
from ..adaptive.reexplore import RowOracle
from ..cluster.cluster import ServingCluster
from ..config import ALSConfig, AdaptiveConfig, ExplorationConfig
from ..core.workload_matrix import WorkloadMatrix
from ..errors import ScenarioError
from ..serving.batch_cache import BatchDecisions
from ..serving.refresh import IncrementalALSRefresher
from ..serving.service import ServingService
from .spec import ScenarioEvent, ScenarioPhase, ScenarioSpec
from .world import TenantWorld


@dataclass(frozen=True)
class TickStats:
    """What one tick served, against current ground truth."""

    tick: int
    phase: str
    arrivals: int
    served_latency: float
    default_latency: float
    optimal_latency: float


@dataclass
class ScenarioTrace:
    """Everything a scenario run produced, for metrics and replay checks."""

    scenario: str
    adaptive: bool
    ticks: List[TickStats] = field(default_factory=list)
    adaptive_report: Optional[Dict[str, float]] = None
    _decision_parts: List[np.ndarray] = field(default_factory=list)

    # -- recording (runner-facing) ------------------------------------------------
    def add_decisions(self, queries: np.ndarray, hints: np.ndarray) -> None:
        self._decision_parts.append(np.asarray(queries, dtype=np.int64))
        self._decision_parts.append(np.asarray(hints, dtype=np.int64))

    def add_tick(self, stats: TickStats) -> None:
        self.ticks.append(stats)

    # -- series ----------------------------------------------------------------------
    @property
    def served(self) -> np.ndarray:
        """Per-tick total true latency of the served plans."""
        return np.array([t.served_latency for t in self.ticks])

    @property
    def default(self) -> np.ndarray:
        """Per-tick total true latency had every arrival used the default."""
        return np.array([t.default_latency for t in self.ticks])

    @property
    def optimal(self) -> np.ndarray:
        """Per-tick total true latency of the per-row optimal plans."""
        return np.array([t.optimal_latency for t in self.ticks])

    @property
    def arrivals(self) -> np.ndarray:
        """Per-tick arrival counts."""
        return np.array([t.arrivals for t in self.ticks], dtype=np.int64)

    def improvement(self) -> np.ndarray:
        """Per-tick fractional win over always-default serving (0 = none)."""
        default = self.default
        served = self.served
        out = np.zeros(default.shape)
        nonzero = default > 0
        out[nonzero] = 1.0 - served[nonzero] / default[nonzero]
        return out

    def decisions_blob(self) -> bytes:
        """Canonical bytes of every (queries, hints) decision in run order.

        Two runs are *replays* of each other iff their blobs are equal.
        """
        if not self._decision_parts:
            return b""
        return np.concatenate(self._decision_parts).tobytes()

    def summary(self) -> Dict[str, float]:
        """Headline totals for reports."""
        served, default = self.served, self.default
        return {
            "ticks": float(len(self.ticks)),
            "arrivals": float(self.arrivals.sum()),
            "served_latency": float(served.sum()),
            "default_latency": float(default.sum()),
            "optimal_latency": float(self.optimal.sum()),
            "mean_improvement": float(self.improvement().mean()) if self.ticks else 0.0,
        }


class _ServiceTarget:
    """All tenants unioned into one ServingService (rows keyed tenant/name)."""

    def __init__(
        self,
        worlds: Dict[str, TenantWorld],
        n_hints: int,
        als_config: ALSConfig,
        refresh_iterations: int,
    ) -> None:
        self.worlds = worlds
        self.n_hints = n_hints
        self._als_config = als_config
        self._refresh_iterations = refresh_iterations
        self.matrix: Optional[WorkloadMatrix] = None
        self.service: Optional[ServingService] = None
        self.controller: Optional[AdaptationController] = None
        self._rows: Dict[str, np.ndarray] = {}
        self._owners: List[Tuple[str, int]] = []

    def register(self, tenant: str, locals_: np.ndarray, names: List[str]) -> None:
        keys = [f"{tenant}/{name}" for name in names]
        if self.matrix is None:
            self.matrix = WorkloadMatrix(
                len(keys), self.n_hints, query_names=keys
            )
            self.service = ServingService(
                self.matrix,
                refresher=IncrementalALSRefresher(
                    self._als_config,
                    refresh_iterations=self._refresh_iterations,
                ),
            )
            new_rows = np.arange(len(keys), dtype=np.int64)
        else:
            new_rows = np.array(
                [self.matrix.add_query(key) for key in keys], dtype=np.int64
            )
        existing = self._rows.get(tenant, np.zeros(0, dtype=np.int64))
        self._rows[tenant] = np.concatenate([existing, new_rows])
        self._owners.extend(
            (tenant, int(local)) for local in np.asarray(locals_, dtype=np.int64)
        )

    def attach_controller(
        self,
        adaptive_config: AdaptiveConfig,
        policy_factory,
        explore_config: Optional[ExplorationConfig],
    ) -> None:
        oracle = RowOracle(
            lambda row, hint: self.worlds[self._owners[row][0]].latency(
                self._owners[row][1], hint
            )
        )
        self.controller = AdaptationController(
            self.service,
            oracle,
            config=adaptive_config,
            policy_factory=policy_factory,
            explore_config=explore_config,
        )
        self.service.monitor = self.controller

    def serve(self, tenant: str, local_queries: np.ndarray) -> BatchDecisions:
        return self.service.serve_batch(self._rows[tenant][local_queries])

    def observe(self, tenant: str, local_queries, hints, latencies) -> None:
        self.service.observe_batch(
            self._rows[tenant][np.asarray(local_queries, dtype=np.int64)],
            hints,
            latencies,
            refresh=False,
        )

    def record_measured(
        self, tenant: str, decisions: BatchDecisions, measured: np.ndarray
    ) -> None:
        self.service.record_measured(decisions, measured)

    def background_tick(self) -> None:
        if self.controller is not None:
            self.controller.tick()

    def add_shard(self) -> None:
        raise ScenarioError(
            "add_shard events need a cluster target, not a single service"
        )

    def kill_shard(self, shard_id: int) -> None:
        raise ScenarioError(
            "kill_shard events need a cluster target, not a single service"
        )

    def restart_shard(self, shard_id: int) -> None:
        raise ScenarioError(
            "restart_shard events need a cluster target, not a single service"
        )

    def adaptive_report(self) -> Optional[Dict[str, float]]:
        if self.controller is None:
            return None
        return self.controller.report().as_dict()


class _ClusterTarget:
    """Tenants registered on a ServingCluster; adaptation per shard."""

    def __init__(
        self,
        worlds: Dict[str, TenantWorld],
        n_hints: int,
        n_shards: int,
        als_config: ALSConfig,
        refresh_iterations: int,
        refresh_budget: int,
        durability_dir: Optional[str] = None,
    ) -> None:
        self.worlds = worlds
        self.cluster = ServingCluster(
            n_shards,
            n_hints,
            als_config=als_config,
            refresh_iterations=refresh_iterations,
            refresh_budget=refresh_budget,
            durability_dir=durability_dir,
        )
        self.controller: Optional[ClusterAdaptationController] = None

    def register(self, tenant: str, locals_: np.ndarray, names: List[str]) -> None:
        del locals_  # cluster tenant-global indices == world row order
        if tenant in self.cluster.tenants:
            self.cluster.add_queries(tenant, names)
        else:
            self.cluster.add_tenant(tenant, names)

    def attach_controller(
        self,
        adaptive_config: AdaptiveConfig,
        policy_factory,
        explore_config: Optional[ExplorationConfig],
    ) -> None:
        def cell_lookup(key: str, hint: int) -> float:
            tenant, name = key.split("/", 1)
            world = self.worlds[tenant]
            return world.latency(world.row_of(name), hint)

        self.controller = ClusterAdaptationController(
            self.cluster,
            cell_lookup,
            config=adaptive_config,
            policy_factory=policy_factory,
            explore_config=explore_config,
        )

    def serve(self, tenant: str, local_queries: np.ndarray) -> BatchDecisions:
        return self.cluster.serve_batch(tenant, local_queries)

    def observe(self, tenant: str, local_queries, hints, latencies) -> None:
        self.cluster.observe_batch(tenant, local_queries, hints, latencies)

    def record_measured(
        self, tenant: str, decisions: BatchDecisions, measured: np.ndarray
    ) -> None:
        if self.controller is not None:
            self.controller.record(tenant, decisions, measured)

    def background_tick(self) -> None:
        if self.controller is not None:
            self.controller.tick()
        self.cluster.tick()

    def add_shard(self) -> None:
        self.cluster.add_shard()
        if self.controller is not None:
            self.controller.notify_topology_change()

    def kill_shard(self, shard_id: int) -> None:
        self.cluster.kill_shard(shard_id)

    def restart_shard(self, shard_id: int) -> None:
        state = self.cluster.restart_shard(shard_id)
        if self.controller is not None and state.backlog.size:
            self.controller.restore_backlog(shard_id, state.backlog)

    def adaptive_report(self) -> Optional[Dict[str, float]]:
        if self.controller is None:
            return None
        return self.controller.report().as_dict()


class ScenarioRunner:
    """Executes one scenario against a serving target.

    Parameters
    ----------
    spec:
        The scenario timeline.
    target:
        ``"service"`` (one union :class:`ServingService`), ``"cluster"``
        (a :class:`ServingCluster`; required when the spec contains
        cluster-only events), or a *callable* ``factory(worlds) -> target``
        returning a custom target object implementing the same protocol as
        the built-ins (``register`` / ``serve`` / ``observe`` /
        ``record_measured`` / ``background_tick`` / ``add_shard`` /
        ``adaptive_report``).  The factory hook is how alternative serving
        paths -- e.g. the asyncio ingress in
        ``benchmarks/test_ingress_load.py`` -- replay byte-identical
        scenario traffic without the runner knowing about them.
    adaptive:
        With False the serving stack is a *static snapshot cache*: it is
        bootstrapped once and never told what execution measured -- the
        baseline the drift benchmark compares against.  With True the
        adaptation controller closes the loop.
    bootstrap_coverage:
        Fraction of initially visible rows whose true-best hint is observed
        before tick 0 (models converged offline exploration, Figure 2's
        steady state).  The default column is always observed.
    durability_dir:
        Directory for the cluster target's per-shard write-ahead journals.
        Required (in spirit) by chaos specs containing ``kill_shard`` /
        ``restart_shard`` events: when those are present and no directory
        is given, the runner creates a temporary one per :meth:`run` and
        removes it afterwards, so chaos scenarios work out of the box.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        target: str = "service",
        adaptive: bool = True,
        adaptive_config: Optional[AdaptiveConfig] = None,
        policy_factory=None,
        explore_config: Optional[ExplorationConfig] = None,
        bootstrap_coverage: float = 0.85,
        n_shards: int = 4,
        als_config: Optional[ALSConfig] = None,
        refresh_iterations: int = 3,
        refresh_budget: int = 1,
        durability_dir: Optional[str] = None,
    ) -> None:
        self._target_factory = target if callable(target) else None
        if self._target_factory is None:
            if target not in ("service", "cluster"):
                raise ScenarioError(
                    f"target must be 'service', 'cluster', or a factory "
                    f"callable, got {target!r}"
                )
            if spec.uses_cluster_actions() and target != "cluster":
                raise ScenarioError(
                    f"scenario {spec.name!r} contains cluster-only events; "
                    "run it with target='cluster'"
                )
        if not 0.0 <= bootstrap_coverage <= 1.0:
            raise ScenarioError(
                f"bootstrap_coverage must be in [0, 1], got {bootstrap_coverage}"
            )
        hints = {t.n_hints for t in spec.tenants} | {
            e.tenant_spec.n_hints
            for e in spec.events
            if e.tenant_spec is not None
        }
        if len(hints) != 1:
            raise ScenarioError(
                f"scenario {spec.name!r}: every tenant must share one hint-set "
                f"width, got {sorted(hints)}"
            )
        self.spec = spec
        self.target_kind = "custom" if self._target_factory is not None else target
        self.adaptive = bool(adaptive)
        self.adaptive_config = adaptive_config or AdaptiveConfig()
        self.policy_factory = policy_factory
        self.explore_config = explore_config
        self.bootstrap_coverage = float(bootstrap_coverage)
        self.n_hints = hints.pop()
        self.n_shards = int(n_shards)
        self.als_config = als_config or ALSConfig()
        self.refresh_iterations = int(refresh_iterations)
        self.refresh_budget = int(refresh_budget)
        self.durability_dir = durability_dir
        self._needs_durability = any(
            event.action in ("kill_shard", "restart_shard")
            for event in spec.events
        )

    # -- construction ------------------------------------------------------------
    def _build_target(
        self,
        worlds: Dict[str, TenantWorld],
        durability_dir: Optional[str] = None,
    ):
        if self._target_factory is not None:
            return self._target_factory(worlds)
        if self.target_kind == "cluster":
            return _ClusterTarget(
                worlds,
                self.n_hints,
                self.n_shards,
                self.als_config,
                self.refresh_iterations,
                self.refresh_budget,
                durability_dir=durability_dir,
            )
        return _ServiceTarget(
            worlds, self.n_hints, self.als_config, self.refresh_iterations
        )

    def _bootstrap(self, world: TenantWorld, target, rng: np.random.Generator) -> None:
        """Converged pre-drift state: default column + most true-best hints."""
        tenant = world.spec.name
        rows = np.arange(world.visible, dtype=np.int64)
        target.observe(
            tenant, rows, np.zeros(rows.size, dtype=np.int64),
            world.latencies[rows, 0],
        )
        covered = rows[rng.random(rows.size) < self.bootstrap_coverage]
        if covered.size:
            best = world.latencies[covered].argmin(axis=1)
            target.observe(
                tenant, covered, best, world.latencies[covered, best]
            )

    # -- the run --------------------------------------------------------------------
    def run(self) -> ScenarioTrace:
        """Execute the full timeline; returns the trace."""
        durability_dir = self.durability_dir
        scratch: Optional[str] = None
        if durability_dir is None and self._needs_durability:
            scratch = tempfile.mkdtemp(prefix="repro-scenario-wal-")
            durability_dir = scratch
        try:
            return self._run(durability_dir)
        finally:
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)

    def _run(self, durability_dir: Optional[str]) -> ScenarioTrace:
        arrival_rng = np.random.default_rng([self.spec.seed, 11])
        world_rng = np.random.default_rng([self.spec.seed, 23])
        bootstrap_rng = np.random.default_rng([self.spec.seed, 5])

        worlds: Dict[str, TenantWorld] = {}
        order: List[str] = []
        target = self._build_target(worlds, durability_dir)
        for tenant_spec in self.spec.tenants:
            world = TenantWorld(tenant_spec, seed=self.spec.seed)
            worlds[tenant_spec.name] = world
            order.append(tenant_spec.name)
            visible = np.arange(world.visible, dtype=np.int64)
            target.register(
                tenant_spec.name, visible, [world.names[i] for i in visible]
            )
            self._bootstrap(world, target, bootstrap_rng)
        if self.adaptive:
            target.attach_controller(
                self.adaptive_config, self.policy_factory, self.explore_config
            )

        trace = ScenarioTrace(scenario=self.spec.name, adaptive=self.adaptive)
        for tick in range(self.spec.total_ticks):
            for event in self.spec.events_at(tick):
                self._fire(event, worlds, order, target, world_rng)
            phase, phase_start = self.spec.phase_at(tick)
            if phase.drift_per_tick is not None:
                changed = float(phase.drift_per_tick.get("changed_fraction", 0.0))
                growth = float(phase.drift_per_tick.get("growth_factor", 1.0))
                for tenant in order:
                    if worlds[tenant].active:
                        worlds[tenant].apply_drift(changed, growth, world_rng)
            self._run_tick(
                tick, phase, tick - phase_start, worlds, order, target,
                arrival_rng, trace,
            )
            if self.adaptive:
                target.background_tick()
        trace.adaptive_report = target.adaptive_report()
        return trace

    def _run_tick(
        self,
        tick: int,
        phase: ScenarioPhase,
        phase_tick: int,
        worlds: Dict[str, TenantWorld],
        order: List[str],
        target,
        arrival_rng: np.random.Generator,
        trace: ScenarioTrace,
    ) -> None:
        weights = self._weights(phase, phase_tick, worlds, order)
        total_weight = float(sum(weights.values()))
        served_latency = default_latency = optimal_latency = 0.0
        arrivals = 0
        if total_weight > 0:
            batch = max(1, int(round(phase.batch_size * phase.burst_multiplier)))
            active = [t for t in order if weights.get(t, 0.0) > 0]
            shares = np.array([weights[t] for t in active]) / total_weight
            counts = arrival_rng.multinomial(batch, shares)
            for tenant, count in zip(active, counts):
                if count == 0:
                    continue
                world = worlds[tenant]
                local = arrival_rng.integers(0, world.visible, size=int(count))
                decisions = target.serve(tenant, local)
                measured = world.latencies[local, decisions.hints]
                if self.adaptive:
                    target.record_measured(tenant, decisions, measured)
                trace.add_decisions(decisions.queries, decisions.hints)
                served_latency += float(measured.sum())
                default_latency += float(world.default_latencies(local).sum())
                optimal_latency += float(world.optimal_latencies(local).sum())
                arrivals += int(count)
        trace.add_tick(
            TickStats(
                tick=tick,
                phase=phase.name,
                arrivals=arrivals,
                served_latency=served_latency,
                default_latency=default_latency,
                optimal_latency=optimal_latency,
            )
        )

    def _weights(
        self,
        phase: ScenarioPhase,
        phase_tick: int,
        worlds: Dict[str, TenantWorld],
        order: List[str],
    ) -> Dict[str, float]:
        """The phase's tenant mix, filtered to live tenants, diurnally modulated."""
        weights: Dict[str, float] = {}
        for position, tenant in enumerate(order):
            world = worlds[tenant]
            if not world.active or world.visible == 0:
                continue
            if phase.tenant_weights is not None:
                base = float(phase.tenant_weights.get(tenant, 0.0))
            else:
                base = 1.0
            if base <= 0:
                continue
            if phase.diurnal_period > 0:
                angle = 2.0 * np.pi * (
                    phase_tick / phase.diurnal_period + position / max(1, len(order))
                )
                base *= 1.0 + phase.diurnal_amplitude * np.sin(angle)
            weights[tenant] = max(0.0, base)
        return weights

    def _fire(
        self,
        event: ScenarioEvent,
        worlds: Dict[str, TenantWorld],
        order: List[str],
        target,
        world_rng: np.random.Generator,
    ) -> None:
        if event.action == "data_drift":
            worlds[event.tenant].apply_drift(
                event.param("changed_fraction", 0.25),
                event.param("growth_factor", 1.1),
                world_rng,
            )
        elif event.action == "etl_flood":
            world = worlds[event.tenant]
            names = world.add_etl_rows(
                int(event.param("count", 8)),
                event.param("latency", 20.0 * world.spec.mean_default_latency),
                event.param("jitter", 0.01),
                world_rng,
            )
            first = world.row_of(names[0])
            target.register(
                event.tenant,
                np.arange(first, first + len(names), dtype=np.int64),
                names,
            )
        elif event.action == "new_templates":
            world = worlds[event.tenant]
            names = world.add_template_rows(int(event.param("count", 8)), world_rng)
            first = world.row_of(names[0])
            target.register(
                event.tenant,
                np.arange(first, first + len(names), dtype=np.int64),
                names,
            )
        elif event.action == "activate_rest":
            world = worlds[event.tenant]
            start = world.visible
            names = world.activate_rest()
            if names:
                target.register(
                    event.tenant,
                    np.arange(start, start + len(names), dtype=np.int64),
                    names,
                )
        elif event.action == "tenant_join":
            world = TenantWorld(event.tenant_spec, seed=self.spec.seed)
            worlds[event.tenant_spec.name] = world
            order.append(event.tenant_spec.name)
            visible = np.arange(world.visible, dtype=np.int64)
            # Joiners start cold: no bootstrap -- adapting to them is the point.
            target.register(
                event.tenant_spec.name, visible, [world.names[i] for i in visible]
            )
        elif event.action == "tenant_leave":
            worlds[event.tenant].active = False
        elif event.action == "add_shard":
            target.add_shard()
        elif event.action == "kill_shard":
            target.kill_shard(int(event.params.get("shard", 0)))
        elif event.action == "restart_shard":
            target.restart_shard(int(event.params.get("shard", 0)))
        else:  # pragma: no cover - spec validation rejects unknown actions
            raise ScenarioError(f"unhandled event action {event.action!r}")
