"""Declarative scenario specifications: tenants, phases, events.

A scenario is a seeded, replayable description of how traffic and data
evolve over a span of *ticks* (one tick = one served batch window per
active tenant plus one background heartbeat).  Three layers compose:

* :class:`TenantSpec` -- a tenant's ground-truth workload shape (size,
  headroom, how much of it is visible before tick 0),
* :class:`ScenarioPhase` -- a contiguous run of ticks with one arrival
  regime: batch size, tenant mix, flash-crowd burst multiplier, cyclic
  diurnal modulation, and optional per-tick gradual data drift,
* :class:`ScenarioEvent` -- a one-shot disturbance at an absolute tick:
  sudden data drift, an ETL flood, a stream of new templates, the late
  30% of a workload shift arriving, tenant churn, a live shard addition,
  a shard crash, a crashed shard rejoining from its journal.

Everything is a frozen dataclass validated at construction, so a spec
either is runnable or raises :class:`~repro.errors.ScenarioError` at
definition time -- never mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from ..errors import ScenarioError

#: Event actions understood by the runner.  "Disturbances" are the ones the
#: recovery metric anchors on (see ``repro.experiments.adaptive``).
EVENT_ACTIONS = (
    "data_drift",      # sudden shift of a tenant's ground truth (Figs 10-11)
    "etl_flood",       # burst of incompressible ETL rows (Fig 8)
    "new_templates",   # brand-new query templates start arriving
    "activate_rest",   # the held-back split of a 70/30 workload shift (Fig 9)
    "tenant_join",     # a new tenant registers (churn)
    "tenant_leave",    # a tenant stops arriving (churn)
    "add_shard",       # live cluster rebalance (cluster targets only)
    "kill_shard",      # crash a shard process (cluster targets only)
    "restart_shard",   # recover a killed shard from its journal
)

#: Cluster-only actions: the runner must be pointed at a ServingCluster.
CLUSTER_ACTIONS = frozenset({"add_shard", "kill_shard", "restart_shard"})

#: Actions that name a shard via ``params={"shard": id}`` instead of a tenant.
_SHARD_ACTIONS = frozenset({"kill_shard", "restart_shard"})

DISTURBANCE_ACTIONS = frozenset(
    {"data_drift", "etl_flood", "new_templates", "activate_rest"}
)


@dataclass(frozen=True)
class TenantSpec:
    """Ground-truth workload shape for one tenant."""

    name: str
    n_queries: int = 120
    n_hints: int = 12
    headroom: float = 2.5
    initial_fraction: float = 1.0
    mean_default_latency: float = 10.0
    rank: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ScenarioError(
                f"tenant name must be non-empty and '/'-free, got {self.name!r}"
            )
        if self.n_queries < 2:
            raise ScenarioError(
                f"tenant {self.name!r} needs >= 2 queries, got {self.n_queries}"
            )
        if self.n_hints < 2:
            raise ScenarioError(
                f"tenant {self.name!r} needs >= 2 hints, got {self.n_hints}"
            )
        if self.headroom <= 1.0:
            raise ScenarioError(
                f"headroom must be > 1 (default/optimal), got {self.headroom}"
            )
        if not 0.0 < self.initial_fraction <= 1.0:
            raise ScenarioError(
                f"initial_fraction must be in (0, 1], got {self.initial_fraction}"
            )
        if self.mean_default_latency <= 0:
            raise ScenarioError(
                f"mean_default_latency must be > 0, got {self.mean_default_latency}"
            )
        if self.rank < 1:
            raise ScenarioError(f"rank must be >= 1, got {self.rank}")
        if self.seed < 0:
            raise ScenarioError(
                f"tenant {self.name!r}: seed must be >= 0, got {self.seed}"
            )

    @property
    def initial_queries(self) -> int:
        """Rows visible (arriving) before tick 0; at least one."""
        return max(1, int(round(self.initial_fraction * self.n_queries)))


@dataclass(frozen=True)
class ScenarioEvent:
    """A one-shot disturbance at an absolute tick (fired at tick start)."""

    tick: int
    action: str
    tenant: Optional[str] = None
    params: Mapping[str, float] = field(default_factory=dict)
    tenant_spec: Optional[TenantSpec] = None

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ScenarioError(f"event tick must be >= 0, got {self.tick}")
        if self.action not in EVENT_ACTIONS:
            raise ScenarioError(
                f"unknown event action {self.action!r}; expected one of "
                f"{list(EVENT_ACTIONS)}"
            )
        if self.action == "tenant_join" and self.tenant_spec is None:
            raise ScenarioError("tenant_join events need a tenant_spec")
        tenant_free = {"add_shard", "tenant_join"} | _SHARD_ACTIONS
        if self.action not in tenant_free and not self.tenant:
            raise ScenarioError(f"{self.action!r} events need a tenant")
        if self.action in _SHARD_ACTIONS:
            shard = self.params.get("shard", 0)
            if int(shard) != shard or int(shard) < 0:
                raise ScenarioError(
                    f"{self.action!r} events need a non-negative integer "
                    f"'shard' param, got {shard!r}"
                )

    def param(self, name: str, default: float) -> float:
        """Look up a numeric parameter with a default."""
        return float(self.params.get(name, default))


@dataclass(frozen=True)
class ScenarioPhase:
    """A contiguous run of ticks with one arrival regime."""

    name: str
    ticks: int
    batch_size: int = 128
    tenant_weights: Optional[Mapping[str, float]] = None
    burst_multiplier: float = 1.0
    drift_per_tick: Optional[Mapping[str, float]] = None
    diurnal_period: int = 0
    diurnal_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ScenarioError(
                f"phase {self.name!r} needs >= 1 tick, got {self.ticks}"
            )
        if self.batch_size < 1:
            raise ScenarioError(
                f"phase {self.name!r} needs batch_size >= 1, got {self.batch_size}"
            )
        if self.burst_multiplier <= 0:
            raise ScenarioError(
                f"phase {self.name!r}: burst_multiplier must be > 0, got "
                f"{self.burst_multiplier}"
            )
        if self.tenant_weights is not None:
            if not self.tenant_weights:
                raise ScenarioError(f"phase {self.name!r}: empty tenant_weights")
            for tenant, weight in self.tenant_weights.items():
                if weight < 0:
                    raise ScenarioError(
                        f"phase {self.name!r}: negative weight for {tenant!r}"
                    )
        if self.drift_per_tick is not None:
            changed = float(self.drift_per_tick.get("changed_fraction", 0.0))
            growth = float(self.drift_per_tick.get("growth_factor", 1.0))
            if not 0.0 <= changed <= 1.0:
                raise ScenarioError(
                    f"phase {self.name!r}: drift changed_fraction must be in "
                    f"[0, 1], got {changed}"
                )
            if growth <= 0:
                raise ScenarioError(
                    f"phase {self.name!r}: drift growth_factor must be > 0, "
                    f"got {growth}"
                )
        if self.diurnal_period < 0:
            raise ScenarioError(
                f"phase {self.name!r}: diurnal_period must be >= 0"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ScenarioError(
                f"phase {self.name!r}: diurnal_amplitude must be in [0, 1), "
                f"got {self.diurnal_amplitude}"
            )

    @property
    def drifting(self) -> bool:
        """True when the phase applies gradual per-tick data drift."""
        return (
            self.drift_per_tick is not None
            and float(self.drift_per_tick.get("changed_fraction", 0.0)) > 0
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, seeded, replayable scenario."""

    name: str
    seed: int
    tenants: Tuple[TenantSpec, ...]
    phases: Tuple[ScenarioPhase, ...]
    events: Tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if self.seed < 0:
            # Seeds feed np.random.default_rng([seed, stream]); a negative
            # value would pass construction and crash mid-run instead.
            raise ScenarioError(
                f"scenario {self.name!r}: seed must be >= 0, got {self.seed}"
            )
        if not self.tenants:
            raise ScenarioError(f"scenario {self.name!r} needs >= 1 tenant")
        if not self.phases:
            raise ScenarioError(f"scenario {self.name!r} needs >= 1 phase")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ScenarioError(f"scenario {self.name!r}: duplicate tenant names")
        known = set(names)
        # Tenants whose late split has not arrived yet: visibility is a
        # row-index prefix, so no event may append rows behind the gap.
        partial = {
            tenant.name for tenant in self.tenants if tenant.initial_fraction < 1.0
        }
        total = self.total_ticks
        down: set = set()  # shard ids killed and not yet restarted
        for event in sorted(self.events, key=lambda e: e.tick):
            if event.tick >= total:
                raise ScenarioError(
                    f"scenario {self.name!r}: event {event.action!r} at tick "
                    f"{event.tick} is past the end ({total} ticks)"
                )
            if event.action == "tenant_join":
                if event.tenant_spec.name in known:
                    raise ScenarioError(
                        f"scenario {self.name!r}: tenant "
                        f"{event.tenant_spec.name!r} joins twice"
                    )
                known.add(event.tenant_spec.name)
                if event.tenant_spec.initial_fraction < 1.0:
                    partial.add(event.tenant_spec.name)
            elif event.tenant is not None and event.tenant not in known:
                raise ScenarioError(
                    f"scenario {self.name!r}: event {event.action!r} references "
                    f"unknown tenant {event.tenant!r}"
                )
            if event.action == "add_shard" and down:
                raise ScenarioError(
                    f"scenario {self.name!r}: add_shard at tick {event.tick} "
                    f"while shards {sorted(down)} are down; the cluster "
                    "cannot rebalance during an outage"
                )
            if event.action == "kill_shard":
                shard = int(event.params.get("shard", 0))
                if shard in down:
                    raise ScenarioError(
                        f"scenario {self.name!r}: kill_shard at tick "
                        f"{event.tick} targets shard {shard}, which is "
                        "already down"
                    )
                down.add(shard)
            elif event.action == "restart_shard":
                shard = int(event.params.get("shard", 0))
                if shard not in down:
                    raise ScenarioError(
                        f"scenario {self.name!r}: restart_shard at tick "
                        f"{event.tick} targets shard {shard}, which was "
                        "never killed; schedule its kill_shard event first"
                    )
                down.discard(shard)
            if event.action == "activate_rest":
                partial.discard(event.tenant)
            elif event.action in ("etl_flood", "new_templates") and (
                event.tenant in partial
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: {event.action!r} at tick "
                    f"{event.tick} would append rows behind tenant "
                    f"{event.tenant!r}'s held-back split; schedule its "
                    "activate_rest event first"
                )

    # -- timeline ---------------------------------------------------------------
    @property
    def total_ticks(self) -> int:
        """Total scenario length in ticks."""
        return sum(phase.ticks for phase in self.phases)

    def phase_at(self, tick: int) -> Tuple[ScenarioPhase, int]:
        """The phase covering ``tick`` and the tick at which it started."""
        if not 0 <= tick < self.total_ticks:
            raise ScenarioError(
                f"tick {tick} out of range [0, {self.total_ticks})"
            )
        start = 0
        for phase in self.phases:
            if tick < start + phase.ticks:
                return phase, start
            start += phase.ticks
        raise ScenarioError("unreachable")  # pragma: no cover

    def events_at(self, tick: int) -> List[ScenarioEvent]:
        """Events firing at ``tick``, in declaration order."""
        return [event for event in self.events if event.tick == tick]

    def first_disturbance_tick(self) -> Optional[int]:
        """Tick of the first drift-like disturbance (None for a calm run).

        The recovery metric compares serving quality before and after this
        tick: disturbance events plus the start of any gradually drifting
        phase count.
        """
        candidates = [
            event.tick
            for event in self.events
            if event.action in DISTURBANCE_ACTIONS
        ]
        start = 0
        for phase in self.phases:
            if phase.drifting:
                candidates.append(start)
            start += phase.ticks
        return min(candidates) if candidates else None

    def tenant_names(self) -> List[str]:
        """Initial tenants plus every tenant that ever joins, in order."""
        names = [tenant.name for tenant in self.tenants]
        for event in sorted(self.events, key=lambda e: e.tick):
            if event.action == "tenant_join":
                names.append(event.tenant_spec.name)
        return names

    def uses_cluster_actions(self) -> bool:
        """True when the spec contains cluster-only events (add_shard,
        kill_shard, restart_shard)."""
        return any(event.action in CLUSTER_ACTIONS for event in self.events)

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.name}: {len(self.tenants)} tenant(s), "
            f"{len(self.phases)} phase(s) / {self.total_ticks} ticks, "
            f"{len(self.events)} event(s), seed={self.seed}"
        )
