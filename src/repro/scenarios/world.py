"""Mutable ground truth behind a running scenario.

The serving stack only ever sees *observations*; the scenario engine owns
the evolving reality those observations are drawn from.  A
:class:`TenantWorld` holds one tenant's true latency matrix -- built with
the same calibrated low-rank generator as the paper's workloads -- and
mutates it as the timeline dictates: sudden or gradual data drift
(:func:`repro.workloads.shift.shift_latencies`), ETL floods
(:func:`repro.workloads.shift.etl_latency_rows`), and brand-new templates
synthesised as scaled mixtures of existing rows (so they respect the
low-rank structure matrix completion exploits).

Rows also carry a *visibility* horizon: a workload-shift tenant starts
with only its initial split visible, and ``activate_rest`` / row-adding
events advance the horizon.  Only visible rows arrive in traffic and only
visible rows are registered with the serving target.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import ScenarioError
from ..workloads.matrices import generate_workload
from ..workloads.shift import etl_latency_rows, shift_latencies
from ..workloads.spec import WorkloadSpec
from .spec import TenantSpec


class TenantWorld:
    """One tenant's evolving ground truth."""

    def __init__(self, spec: TenantSpec, seed: int) -> None:
        self.spec = spec
        workload_spec = WorkloadSpec(
            name=f"scenario-{spec.name}",
            n_queries=spec.n_queries,
            n_hints=spec.n_hints,
            default_total=spec.mean_default_latency * spec.n_queries,
            optimal_total=(
                spec.mean_default_latency * spec.n_queries / spec.headroom
            ),
            rank=spec.rank,
        )
        workload = generate_workload(workload_spec, seed=seed + spec.seed)
        self.latencies: np.ndarray = workload.true_latencies
        self.names: List[str] = [f"q{i}" for i in range(spec.n_queries)]
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self.visible = spec.initial_queries
        self.active = True

    # -- shape --------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Total rows in the ground truth (visible or not)."""
        return self.latencies.shape[0]

    @property
    def n_hints(self) -> int:
        """Hint-set count (fixed for the tenant's lifetime)."""
        return self.latencies.shape[1]

    def row_of(self, name: str) -> int:
        """Row index of a named query."""
        try:
            return self._index[name]
        except KeyError:
            raise ScenarioError(
                f"tenant {self.spec.name!r} has no query named {name!r}"
            ) from None

    # -- execution ------------------------------------------------------------------
    def latency(self, row: int, hint: int) -> float:
        """One live execution: the current true latency of a cell."""
        return float(self.latencies[row, hint])

    # -- mutations (the timeline's verbs) ---------------------------------------------
    def apply_drift(
        self,
        changed_fraction: float,
        growth_factor: float,
        rng: np.random.Generator,
    ) -> int:
        """Shift the ground truth; returns how many rows changed optimum."""
        self.latencies, changed = shift_latencies(
            self.latencies, changed_fraction, growth_factor, rng
        )
        return int(changed.size)

    def _append_rows(self, rows: np.ndarray, label: str) -> List[str]:
        if self.visible != self.n_rows:
            # Visibility is a prefix: rows appended behind a held-back gap
            # would be sampled by traffic while the gap's rows were never
            # registered with the serving target (and local indices would
            # silently mis-resolve).  Spec validation rejects this shape at
            # definition time; this guard catches hand-driven worlds.
            raise ScenarioError(
                f"tenant {self.spec.name!r} still holds back rows "
                f"[{self.visible}, {self.n_rows}); fire activate_rest before "
                "adding new rows"
            )
        first = self.n_rows
        self.latencies = np.vstack([self.latencies, rows])
        new_names = [f"{label}{first + i}" for i in range(rows.shape[0])]
        for offset, name in enumerate(new_names):
            self._index[name] = first + offset
        self.names.extend(new_names)
        # Appended rows are part of current traffic by definition.
        self.visible = self.n_rows
        return new_names

    def add_etl_rows(
        self,
        count: int,
        latency: float,
        jitter: float,
        rng: np.random.Generator,
    ) -> List[str]:
        """Append ``count`` incompressible ETL rows (Figure 8's flood)."""
        rows = etl_latency_rows(self.n_hints, latency, jitter, rng, count=count)
        return self._append_rows(rows, "etl")

    def add_template_rows(self, count: int, rng: np.random.Generator) -> List[str]:
        """Append ``count`` new templates as mixtures of existing rows.

        A convex blend of two existing rows times a log-normal scale keeps
        the new rows on (approximately) the same low-rank manifold, which
        is what makes them learnable by completion once explored.
        """
        if count < 1:
            raise ScenarioError(f"template count must be >= 1, got {count}")
        a = rng.integers(0, self.n_rows, size=count)
        b = rng.integers(0, self.n_rows, size=count)
        mix = rng.uniform(0.2, 0.8, size=(count, 1))
        scale = rng.lognormal(mean=0.0, sigma=0.4, size=(count, 1))
        rows = (mix * self.latencies[a] + (1.0 - mix) * self.latencies[b]) * scale
        return self._append_rows(np.maximum(rows, 1e-4), "new")

    def activate_rest(self) -> List[str]:
        """Make every held-back row visible (the late 30% arriving, Fig 9)."""
        newly = self.names[self.visible:self.n_rows]
        self.visible = self.n_rows
        return newly

    # -- reference quantities ------------------------------------------------------------
    def default_latencies(self, rows) -> np.ndarray:
        """Current true latency of the default plan for ``rows``."""
        return self.latencies[np.asarray(rows, dtype=np.int64), 0]

    def optimal_latencies(self, rows) -> np.ndarray:
        """Current true per-row optimal latency for ``rows``."""
        return self.latencies[np.asarray(rows, dtype=np.int64)].min(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantWorld({self.spec.name!r}, {self.n_rows}x{self.n_hints}, "
            f"visible={self.visible}, active={self.active})"
        )
