"""Batched online serving: Figure 2's online path at production throughput.

The paper's online story is a per-query cache lookup; this package is the
same verified, no-regression serving rule engineered for heavy traffic:

* :mod:`repro.serving.batch_cache` -- vectorised decisions over precomputed
  best-verified-hint arrays, auto-invalidated by the workload-matrix
  version counter,
* :mod:`repro.serving.refresh` -- warm-started incremental censored-ALS
  refreshes so feedback batches update the completion without a full solve,
* :mod:`repro.serving.service` -- the request-facing service (serve /
  observe / predict / report) plus batched TCNN latency annotation over
  pre-packed padded tensors,
* :mod:`repro.serving.stats` -- throughput, p50/p99 decision latency, and
  regression-guarantee hit-rate telemetry.
"""

from .batch_cache import BatchDecisions, BatchedPlanCache
from .refresh import IncrementalALSRefresher
from .service import BatchedLatencyEstimator, ServingService
from .stats import LatencyRecorder, ServingStats

__all__ = [
    "BatchDecisions",
    "BatchedPlanCache",
    "IncrementalALSRefresher",
    "BatchedLatencyEstimator",
    "ServingService",
    "LatencyRecorder",
    "ServingStats",
]
