"""Vectorised, auto-refreshing view of the verified plan cache.

The scalar :class:`repro.core.plan_cache.PlanCache` answers one query per
call: it re-derives the row's best verified hint with a masked ``argmin``,
checks the regression margin, and allocates a decision object.  That is the
right interface for the paper's Figure 2 walkthrough, but a service fielding
thousands of arrivals per second cannot afford a Python-level row walk per
query.

:class:`BatchedPlanCache` keeps the precomputed decision arrays of a
:class:`~repro.core.plan_cache.CacheSnapshot` and answers whole batches with
fancy indexing.  The snapshot is invalidated by comparing
:attr:`WorkloadMatrix.version` -- new observations (from the offline
explorer or the serving feedback path) are picked up on the next batch
without any explicit cache-flush protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.plan_cache import CacheDecision, CacheSnapshot, PlanCache
from ..core.workload_matrix import WorkloadMatrix
from ..errors import ServingError


@dataclass(frozen=True)
class BatchDecisions:
    """Decisions for one served batch, as parallel arrays.

    Attributes
    ----------
    queries:
        ``(batch,)`` query indices as they arrived.
    hints:
        ``(batch,)`` hint index to use for each arrival.
    used_default:
        ``(batch,)`` bool; True where the default plan was served.
    expected_latency:
        ``(batch,)`` observed latency of the served plan (``inf`` when the
        default plan has never been measured).
    predicted_latency:
        ``(batch,)`` model-predicted latency of the served plan, or ``None``
        when the service has no latency estimator attached.
    """

    queries: np.ndarray
    hints: np.ndarray
    used_default: np.ndarray
    expected_latency: np.ndarray
    predicted_latency: Optional[np.ndarray] = None

    @property
    def batch_size(self) -> int:
        """Number of decisions in the batch."""
        return int(self.queries.shape[0])

    @property
    def non_default_count(self) -> int:
        """How many arrivals got a verified non-default plan."""
        # Counted as batch minus defaults: summing the existing bool array
        # avoids materialising its inverse on the serve hot path.
        return int(self.used_default.shape[0] - self.used_default.sum())

    def to_decisions(self) -> List[CacheDecision]:
        """Materialise scalar :class:`CacheDecision` objects (for tests/logs)."""
        return [
            CacheDecision(
                query=int(self.queries[i]),
                hint=int(self.hints[i]),
                used_default=bool(self.used_default[i]),
                expected_latency=float(self.expected_latency[i]),
            )
            for i in range(self.batch_size)
        ]


class BatchedPlanCache:
    """Answers batches of arrivals from precomputed decision arrays.

    Semantically identical to per-query :meth:`PlanCache.lookup` -- the
    equality is asserted cell-for-cell in ``tests/test_serving.py`` -- but
    the no-regression rule is evaluated once per matrix version instead of
    once per arrival.
    """

    def __init__(
        self,
        matrix: WorkloadMatrix,
        default_hint: int = 0,
        regression_margin: float = 1.0,
    ) -> None:
        # Parameter validation is shared with the scalar cache.
        self._scalar = PlanCache(
            matrix, default_hint=default_hint, regression_margin=regression_margin
        )
        self.matrix = matrix
        self.default_hint = self._scalar.default_hint
        self.regression_margin = self._scalar.regression_margin
        # Telemetry seam (bound by the owning service, never required):
        # None keeps decide() on the uninstrumented path.
        self._tracer = None
        self._metrics = None
        self._stage_clock = None

    def bind_telemetry(self, telemetry, metrics, clock) -> None:
        """Route lookups through the ``cache.lookup`` stage histogram.

        Only an *enabled* telemetry context binds; anything else leaves
        the hot path untouched.  ``metrics`` is the owning service's
        :class:`~repro.telemetry.ServingMetrics` (rebuild counter);
        ``clock`` supplies the one perf-counter pair the stage costs.
        """
        if telemetry is None or not telemetry.config.enabled:
            return
        self._tracer = telemetry.tracer
        self._metrics = metrics
        self._stage_clock = clock

    # -- snapshot management ------------------------------------------------
    @property
    def snapshot_version(self) -> Optional[int]:
        """Matrix version of the current snapshot (None before first use)."""
        snap = self._scalar.cached_snapshot
        return None if snap is None else snap.version

    def refresh(self) -> CacheSnapshot:
        """Force-recompute the decision arrays at the current matrix version."""
        return self._scalar.snapshot(force=True)

    def _current(self) -> CacheSnapshot:
        return self._scalar.snapshot()

    # -- batched decisions --------------------------------------------------
    def decide(self, queries) -> BatchDecisions:
        """Decisions for a batch of query indices (the hot path)."""
        if self._tracer is not None:
            return self._decide_traced(queries)
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 1:
            raise ServingError("decide expects a 1-D array of query indices")
        snap = self._current()
        if queries.size and (queries.min() < 0 or queries.max() >= snap.n_queries):
            raise ServingError(
                f"query index out of range [0, {snap.n_queries}) in batch"
            )
        return BatchDecisions(
            queries=queries,
            hints=snap.hints[queries],
            used_default=snap.used_default[queries],
            expected_latency=snap.expected_latency[queries],
        )

    def _decide_traced(self, queries) -> BatchDecisions:
        """decide() plus the ``cache.lookup`` stage and rebuild counter.

        Same validation, same snapshot discipline, same arrays -- the
        decisions are byte-identical to the untraced path (asserted in
        ``tests/test_telemetry.py``).  The rebuild counter is always
        maintained (one attribute compare); the ``cache.lookup`` clock
        pair only runs inside an open trace (the ingress path), keeping
        raw enabled ``decide`` within the serve-overhead budget.
        """
        trace_open = self._tracer._current is not None
        if trace_open:
            start = self._stage_clock()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 1:
            raise ServingError("decide expects a 1-D array of query indices")
        stale = self._scalar.cached_snapshot
        snap = self._current()
        if snap is not stale:
            self._metrics.cache_rebuilds.inc()
        if queries.size and (queries.min() < 0 or queries.max() >= snap.n_queries):
            raise ServingError(
                f"query index out of range [0, {snap.n_queries}) in batch"
            )
        decisions = BatchDecisions(
            queries=queries,
            hints=snap.hints[queries],
            used_default=snap.used_default[queries],
            expected_latency=snap.expected_latency[queries],
        )
        if trace_open:
            self._tracer.record_stage(
                "cache.lookup", self._stage_clock() - start
            )
        return decisions

    def decide_all(self) -> BatchDecisions:
        """Decisions for every query in the workload."""
        return self.decide(np.arange(self.matrix.n_queries))

    def scalar_cache(self) -> PlanCache:
        """The scalar cache sharing this instance's matrix and parameters."""
        return self._scalar
