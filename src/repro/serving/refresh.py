"""Warm-started incremental ALS refreshes for the serving matrix.

When the service feeds fresh observations back into the workload matrix,
the completed estimate ``Q Hᵀ`` that exploration policies (and any
prediction-serving endpoint) rely on goes stale.  Re-running censored ALS
from scratch after every feedback batch would dominate serving-side CPU, so
:class:`IncrementalALSRefresher` keeps the factor pair of the previous
solve and warm-starts the next one from it: a handful of fill-in iterations
recovers the optimum because a few new observations barely move a
well-conditioned low-rank factorisation.

The convergence equivalence (warm refresh reaches the cold-solve objective
up to a tolerance) is asserted in ``tests/test_serving.py``.
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np

from ..config import ALSConfig
from ..core.als import CensoredALSResult, censored_als
from ..core.workload_matrix import WorkloadMatrix
from ..errors import ServingError


class IncrementalALSRefresher:
    """Maintains a censored-ALS completion across serving-time updates.

    Parameters
    ----------
    config:
        ALS hyper-parameters; ``config.iterations`` is used for the initial
        cold solve.
    refresh_iterations:
        Fill-in iterations per *warm* refresh.  The default of 3 is enough
        to re-converge after a feedback batch touching a few percent of the
        matrix; raise it if refreshes arrive rarely and change a lot.
    """

    def __init__(
        self,
        config: Optional[ALSConfig] = None,
        refresh_iterations: int = 3,
    ) -> None:
        if refresh_iterations < 1:
            raise ServingError(
                f"refresh_iterations must be >= 1, got {refresh_iterations}"
            )
        self.config = config or ALSConfig()
        self.refresh_iterations = int(refresh_iterations)
        self._result: Optional[CensoredALSResult] = None
        self._matrix_ref: Optional[weakref.ref] = None
        self._matrix_version: Optional[int] = None
        self._cold_solves = 0
        self._warm_refreshes = 0

    # -- state ---------------------------------------------------------------
    @property
    def result(self) -> Optional[CensoredALSResult]:
        """Most recent solve (None before the first refresh)."""
        return self._result

    @property
    def cold_solves(self) -> int:
        """Number of from-scratch solves performed."""
        return self._cold_solves

    @property
    def warm_refreshes(self) -> int:
        """Number of warm-started refreshes performed."""
        return self._warm_refreshes

    # -- refreshes -------------------------------------------------------------
    def refresh(self, matrix: WorkloadMatrix, force_cold: bool = False) -> CensoredALSResult:
        """Bring the completion up to date with the matrix; returns the solve.

        The first call (or ``force_cold=True``) runs a full cold solve; later
        calls warm-start from the previous factors with
        ``refresh_iterations`` fill-in iterations.  A no-op when the matrix
        has not changed since the last refresh.  Passing a *different*
        matrix object starts over cold -- the cached factors describe the
        previous matrix, not this one.
        """
        same_matrix = (
            self._matrix_ref is not None and self._matrix_ref() is matrix
        )
        if (
            self._result is not None
            and not force_cold
            and same_matrix
            and self._matrix_version == matrix.version
        ):
            return self._result

        warm = None
        iterations: Optional[int] = None
        if self._result is not None and not force_cold and same_matrix:
            warm_q, warm_h = self._result.factors
            rank = min(self.config.rank, matrix.n_queries, matrix.n_hints)
            # A rank change (possible when the matrix was tiny) or a shrunken
            # matrix invalidates the warm factors; fall back to a cold solve.
            if (
                warm_q.shape[1] == rank
                and warm_q.shape[0] <= matrix.n_queries
                and warm_h.shape[0] <= matrix.n_hints
            ):
                warm = (warm_q, warm_h)
                iterations = self.refresh_iterations

        self._result = censored_als(
            matrix.observed_values(),
            matrix.mask,
            matrix.timeout_matrix,
            config=self.config,
            warm_start=warm,
            iterations=iterations,
        )
        self._matrix_ref = weakref.ref(matrix)
        self._matrix_version = matrix.version
        if warm is None:
            self._cold_solves += 1
        else:
            self._warm_refreshes += 1
        return self._result

    def completed_matrix(self, matrix: WorkloadMatrix) -> np.ndarray:
        """The up-to-date completed estimate for ``matrix``."""
        return self.refresh(matrix).completed
