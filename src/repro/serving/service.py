"""The batched hint-recommendation service (Figure 2's online path, scaled).

:class:`ServingService` is what a DBMS-side integration talks to under
heavy traffic:

* **serve**: batches of query arrivals are answered with one vectorised
  pass over precomputed decision arrays (:class:`BatchedPlanCache`) instead
  of a per-query row walk -- every answer still carries the paper's
  no-regression guarantee;
* **observe**: measured latencies flow back in batches
  (:meth:`WorkloadMatrix.observe_batch`), which automatically invalidates
  the decision arrays and, when an :class:`IncrementalALSRefresher` is
  attached, triggers a warm-started ALS update instead of a full recompute;
* **predict**: an optional :class:`BatchedLatencyEstimator` annotates
  decisions with TCNN-predicted latencies using a single padded forward
  pass per batch (optionally sliced from a pre-packed whole-plan-space
  tensor after an explicit :meth:`~BatchedLatencyEstimator.warm_up`);
* **report**: :meth:`stats` summarises throughput, p50/p99 decision
  latency, and the regression-guarantee hit rate.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.workload_matrix import WorkloadMatrix
from ..durability.snapshot import matrix_to_jsonable
from ..errors import ServingError
from ..plans.featurize import TreeBatch
from ..telemetry.runtime import Telemetry
from .batch_cache import BatchDecisions, BatchedPlanCache
from .refresh import IncrementalALSRefresher
from .stats import LatencyRecorder, ServingStats


class BatchedLatencyEstimator:
    """Batched TCNN inference: one padded forward pass per served batch.

    Each prediction call packs exactly the requested cells into one padded
    ``(batch, nodes, features)`` tensor and runs a single forward pass
    (:meth:`TCNNTrainer.predict_batch`); the per-cell plan arrays come out
    of the feature store's cache, so repeat cells cost only the pack.

    Operators who can afford the memory may call :meth:`warm_up` once
    (outside any latency-sensitive window) to pre-pack the *entire* plan
    space; batches are then answered by fancy-indexing row slices out of
    the big tensor with no per-batch packing at all.  Warm-up is explicit
    rather than lazy because packing every ``(query, hint)`` cell of a
    large workload is a multi-second, memory-heavy operation that must not
    land inside a served batch's clock window.
    """

    def __init__(self, trainer, feature_store) -> None:
        self.trainer = trainer
        self.feature_store = feature_store
        self._packed: Optional[TreeBatch] = None
        self._packed_shape: Optional[Tuple[int, int]] = None

    def warm_up(self, shape: Tuple[int, int]) -> None:
        """Pre-pack the padded tensor for every cell of a ``shape`` matrix."""
        n_queries, n_hints = shape
        if self._packed is None or self._packed_shape != (n_queries, n_hints):
            cells = [(i, j) for i in range(n_queries) for j in range(n_hints)]
            self._packed = self.feature_store.batch(cells)
            self._packed_shape = (n_queries, n_hints)

    def predict(self, queries, hints, shape: Tuple[int, int]) -> np.ndarray:
        """Predicted latencies (seconds) for parallel query/hint arrays."""
        queries = np.asarray(queries, dtype=np.int64)
        hints = np.asarray(hints, dtype=np.int64)
        if queries.shape != hints.shape or queries.ndim != 1:
            raise ServingError("predict expects matching 1-D query/hint arrays")
        if queries.size == 0:
            return np.zeros(0)
        n_queries, n_hints = shape
        if self._packed is not None and self._packed_shape == (n_queries, n_hints):
            flat = queries * n_hints + hints
            batch = TreeBatch(
                nodes=self._packed.nodes[flat],
                left=self._packed.left[flat],
                right=self._packed.right[flat],
                mask=self._packed.mask[flat],
            )
        else:
            batch = self.feature_store.batch(list(zip(queries.tolist(), hints.tolist())))
        return self.trainer.predict_batch(batch, queries, hints)

    def invalidate(self) -> None:
        """Drop the warmed tensor (e.g. after the plan space changed)."""
        self._packed = None
        self._packed_shape = None


class ServingService:
    """High-throughput front end over the verified plan cache.

    Parameters
    ----------
    matrix:
        The live workload matrix (shared with the offline explorer).
    default_hint / regression_margin:
        Same meaning as for :class:`repro.core.plan_cache.PlanCache`.
    refresher:
        Optional :class:`IncrementalALSRefresher`; when present, feedback
        batches trigger a warm-started completion refresh.
    estimator:
        Optional :class:`BatchedLatencyEstimator` used to annotate
        decisions with model-predicted latencies.
    clock:
        Injectable time source for the latency telemetry (tests use a fake).
    recorder:
        Optional externally owned :class:`LatencyRecorder`.  A cluster
        shard passes its own so telemetry survives the service being
        rebuilt (e.g. after every row migrates away); by default the
        service owns a fresh one.
    monitor:
        Optional drift monitor (anything with a
        ``record(queries, hints, expected, measured)`` method, e.g. a
        :class:`repro.adaptive.DriftDetector` window).  It receives every
        :meth:`record_measured` feedback batch so an adaptation controller
        can watch live residuals without sitting on the serve path.
    journal:
        Optional write-ahead journal
        (:class:`~repro.durability.ShardJournal`), riding the same seam as
        ``recorder``: externally owned, survives service rebuilds.  It is
        attached to the *matrix*, so every mutation -- including ones that
        bypass this service, like re-exploration -- is logged before it
        applies; :meth:`record_measured` additionally journals executed
        decisions for audit.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  Only an *enabled*
        one is kept (``Telemetry.enabled()``): the service then feeds the
        registry's serving counters and per-stage latency histograms, and
        stamps traces.  Disabled or absent, the hot path is byte-identical
        to an uninstrumented service.
    """

    def __init__(
        self,
        matrix: WorkloadMatrix,
        default_hint: int = 0,
        regression_margin: float = 1.0,
        refresher: Optional[IncrementalALSRefresher] = None,
        estimator: Optional[BatchedLatencyEstimator] = None,
        clock=time.perf_counter,
        recorder: Optional[LatencyRecorder] = None,
        monitor=None,
        journal=None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.matrix = matrix
        self.cache = BatchedPlanCache(
            matrix, default_hint=default_hint, regression_margin=regression_margin
        )
        self.refresher = refresher
        self.estimator = estimator
        self.monitor = monitor
        self.journal = journal
        if journal is not None:
            if (
                journal.next_lsn == 1
                and journal.appended_records == 0
                and journal.recovered_snapshot is None
            ):
                # A brand-new journal: bootstrap it with the matrix as it
                # stands, so recovery has a starting point.  (A cluster
                # shard logs its own import first; a recovered journal
                # already has history; both skip this.)
                journal.log_import(matrix_to_jsonable(matrix.to_dict()))
            matrix.journal = journal
        self._clock = clock
        self._recorder = recorder if recorder is not None else LatencyRecorder()
        # Normalised once here: the hot path's only telemetry cost when
        # disabled is a single attribute-is-None check.
        self._telemetry = (
            telemetry
            if telemetry is not None and telemetry.config.enabled
            else None
        )
        if self._telemetry is not None:
            metrics = self._telemetry.serving_metrics()
            self._recorder.bind_metrics(metrics)
            # The recorder mirrors lazily; exports flush it first.
            self._telemetry.register_sync(self._recorder.sync_metrics)
            self.cache.bind_telemetry(self._telemetry, metrics, clock)
            if journal is not None:
                journal.bind_telemetry(self._telemetry, clock)

    # -- the hot path ---------------------------------------------------------
    def serve_batch(self, queries, annotate: bool = False) -> BatchDecisions:
        """Answer a batch of query arrivals.

        Returns one decision per arrival, in arrival order.  With
        ``annotate=True`` (and an estimator attached) the decisions carry
        TCNN-predicted latencies for the served plans.
        """
        start = self._clock()
        decisions = self.cache.decide(queries)
        if annotate:
            if self.estimator is None:
                raise ServingError("annotate=True requires a latency estimator")
            predicted = self.estimator.predict(
                decisions.queries, decisions.hints, self.matrix.shape
            )
            decisions = BatchDecisions(
                queries=decisions.queries,
                hints=decisions.hints,
                used_default=decisions.used_default,
                expected_latency=decisions.expected_latency,
                predicted_latency=predicted,
            )
        elapsed = self._clock() - start
        self._recorder.record(
            decisions.batch_size, elapsed, decisions.non_default_count
        )
        tel = self._telemetry
        if tel is not None and tel.tracer._current is not None:
            # Stage attribution only inside an open trace (the ingress
            # path): a raw serve_batch already feeds repro_batch_seconds
            # through the recorder mirror, and skipping the per-batch
            # stage observe keeps enabled overhead within the <=5% gate.
            tel.tracer.record_stage("shard.serve", elapsed)
        return decisions

    def serve_all(self, annotate: bool = False) -> BatchDecisions:
        """Answer every query in the workload as one batch."""
        return self.serve_batch(np.arange(self.matrix.n_queries), annotate=annotate)

    # -- the feedback path -----------------------------------------------------
    def observe_batch(
        self,
        queries: Sequence[int],
        hints: Sequence[int],
        latencies: Sequence[float],
        refresh: bool = True,
    ) -> None:
        """Feed measured latencies back into the serving matrix.

        The decision arrays refresh automatically on the next batch (the
        matrix version changed).  With ``refresh=True`` and a refresher
        attached, the low-rank completion is warm-started forward as well.
        """
        version_before = self.matrix.version
        if self._telemetry is None:
            self.matrix.observe_batch(queries, hints, latencies)
        else:
            start = self._clock()
            self.matrix.observe_batch(queries, hints, latencies)
            self._telemetry.tracer.record_stage("observe", self._clock() - start)
        if (
            refresh
            and self.refresher is not None
            and self.matrix.version != version_before
        ):
            self.refresher.refresh(self.matrix)
            self._recorder.record_refresh()

    def record_measured(
        self,
        decisions: BatchDecisions,
        measured,
        observe: bool = False,
    ) -> None:
        """Report the *measured* latencies of an already-served batch.

        This is the residual telemetry hook the adaptation loop is built
        on: the attached ``monitor`` sees each arrival's served hint, the
        snapshot's expected latency at decision time, and what execution
        actually measured.  With ``observe=True`` the measurements are also
        folded into the matrix (``refresh=False`` -- any ALS work stays on
        the background path).  The default is observation-free so a
        detection-only deployment never mutates serving state.
        """
        measured = np.asarray(measured, dtype=float)
        if measured.shape != decisions.queries.shape:
            raise ServingError(
                f"record_measured needs one measurement per decision, got "
                f"{measured.shape} for batch of {decisions.batch_size}"
            )
        if self.monitor is not None:
            self.monitor.record(
                decisions.queries,
                decisions.hints,
                decisions.expected_latency,
                measured,
            )
        if self.journal is not None and not observe:
            # observe=True routes through the matrix, which journals the
            # same cells as an "observe" record; avoid double-logging.
            self.journal.log_measured(decisions.queries, decisions.hints, measured)
        if observe:
            self.observe_batch(
                decisions.queries, decisions.hints, measured, refresh=False
            )

    def invalidate(self, queries: Optional[Sequence[int]] = None) -> None:
        """Forget observations (all rows, or a subset) and drop warm state.

        The adaptation controller's response to detected drift: the stale
        rows' observations are erased (so they serve the default plan until
        re-verified -- the no-regression guarantee is anchored there), the
        decision snapshot recomputes on the next batch via the version
        bump, and a warmed estimator tensor is dropped.  No eager snapshot
        rebuild: callers typically mutate the matrix further (re-anchoring,
        re-exploration) before the next serve, and the version bump already
        guarantees freshness.
        """
        self.matrix.invalidate(queries)
        if self.estimator is not None:
            self.estimator.invalidate()

    def completed_matrix(self) -> np.ndarray:
        """Up-to-date completed latency estimate (requires a refresher)."""
        if self.refresher is None:
            raise ServingError("completed_matrix requires an ALS refresher")
        return self.refresher.completed_matrix(self.matrix)

    # -- shard-embedding hooks -------------------------------------------------
    def refresh_now(self) -> bool:
        """Run the attached refresher against the current matrix state.

        The hook a background scheduler (e.g. the cluster's
        :class:`~repro.cluster.scheduler.RefreshScheduler`) calls *between*
        serve batches: feedback is recorded with ``refresh=False`` on the
        hot path and the ALS work happens here instead.  Returns True when
        a solve actually ran (the matrix had changed), False for a no-op.
        """
        if self.refresher is None:
            raise ServingError("refresh_now requires an ALS refresher")
        before = self.refresher.cold_solves + self.refresher.warm_refreshes
        self.refresher.refresh(self.matrix)
        ran = (self.refresher.cold_solves + self.refresher.warm_refreshes) > before
        if ran:
            self._recorder.record_refresh()
        return ran

    @property
    def recorder(self) -> LatencyRecorder:
        """The raw latency recorder (cluster aggregators pool these)."""
        return self._recorder

    # -- telemetry ----------------------------------------------------------------
    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The enabled telemetry context, or None (disabled counts as None)."""
        return self._telemetry

    def record_shed(self, count: int = 1) -> None:
        """Count admission-control shed arrivals.

        The blessed mutation path: dual-writes the recorder and (when
        bound) the registry mirror, without the deprecation warning that
        direct :meth:`LatencyRecorder.record_shed` calls now carry.
        """
        self._recorder.record_shed(count, _blessed=True)

    def stats(self) -> ServingStats:
        """Throughput / latency / hit-rate report over everything served."""
        return self._recorder.report()

    def reset_stats(self) -> None:
        """Zero the telemetry (the decision arrays are untouched)."""
        self._recorder.reset()
