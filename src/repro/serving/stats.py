"""Serving-side telemetry: throughput, decision-latency percentiles, hit rate.

A production hint-recommendation service lives or dies by two numbers: how
many decisions per second it sustains, and how long a single arrival waits
for its decision.  :class:`LatencyRecorder` accumulates per-batch timings as
they happen (cheap appends on the hot path); :class:`ServingStats` is the
immutable report derived from them on demand.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..telemetry.runtime import (
    BATCH_SECONDS,
    BATCHES_TOTAL,
    DECISIONS_TOTAL,
    NON_DEFAULT_TOTAL,
    REFRESHES_TOTAL,
    SHED_TOTAL,
    WALL_SECONDS_TOTAL,
    ServingMetrics,
)


@dataclass(frozen=True)
class ServingStats:
    """A point-in-time report over everything the service has served.

    Attributes
    ----------
    decisions / batches:
        Total queries answered and the number of batches they arrived in.
    wall_seconds:
        Total decision time (excludes caller think-time between batches).
    throughput_qps:
        ``decisions / wall_seconds``.
    p50_latency_s / p99_latency_s:
        Percentiles of the *per-decision* latency: each decision in a batch
        is charged the batch's wall time divided by its size, which is the
        amortised latency an arrival experiences under batched execution.
    non_default_fraction:
        Fraction of decisions answered with a verified non-default plan --
        the regression-guarantee hit rate (every non-default answer carries
        the no-regression guarantee).
    refreshes:
        How many model/cache refreshes ran (incremental ALS updates).
    shed:
        Arrivals answered with the default plan by admission control
        (:mod:`repro.ingress` load-shedding) instead of the decision
        arrays.  Shed answers are valid decisions -- the no-regression
        guarantee is anchored on the default plan -- but they never touch
        the snapshot, so they are counted here and *not* in ``decisions``
        or the latency percentiles.
    """

    decisions: int
    batches: int
    wall_seconds: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    non_default_fraction: float
    refreshes: int
    shed: int = 0

    def as_dict(self, registry=None) -> Dict[str, Union[int, float, Dict]]:
        """Plain dictionary for dashboards and log lines.

        Counters (``decisions``, ``batches``, ``refreshes``) stay integers;
        only the genuinely continuous fields are floats.  With a
        :class:`~repro.telemetry.MetricsRegistry` passed, the dictionary
        gains a ``telemetry`` section: the same report rebuilt from the
        registry mirror (:meth:`from_registry`) plus a ``consistent`` flag
        asserting the two counter sets agree -- the drift alarm between the
        legacy recorder and the registry.
        """
        out: Dict[str, Union[int, float, Dict]] = {
            "decisions": int(self.decisions),
            "batches": int(self.batches),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "non_default_fraction": self.non_default_fraction,
            "refreshes": int(self.refreshes),
            "shed": int(self.shed),
        }
        if registry is not None:
            mirror = ServingStats.from_registry(registry)
            section = mirror.as_dict()
            section["consistent"] = (
                mirror.decisions == self.decisions
                and mirror.batches == self.batches
                and mirror.refreshes == self.refreshes
                and mirror.shed == self.shed
            )
            out["telemetry"] = section
        return out

    @classmethod
    def from_registry(
        cls, registry, shard: Optional[str] = None
    ) -> "ServingStats":
        """Rebuild the report from the registry's well-known serving metrics.

        The counters (decisions, batches, wall time, refreshes, shed) are
        exact -- :meth:`LatencyRecorder.sync_metrics` feeds them from the
        same samples :meth:`LatencyRecorder.report` folds, and every cold
        path that reads the registry syncs first.  The percentiles come
        from the fixed-bucket
        ``repro_batch_seconds`` histogram, so they are bucket-interpolated
        estimates rather than the recorder's exact sample percentiles.
        With ``shard`` given, only that label's children are read;
        otherwise every shard's children are merged first.
        """
        if DECISIONS_TOTAL not in registry:
            return cls(
                decisions=0, batches=0, wall_seconds=0.0, throughput_qps=0.0,
                p50_latency_s=0.0, p99_latency_s=0.0,
                non_default_fraction=0.0, refreshes=0, shed=0,
            )

        def child(name):
            family = registry.get(name)
            return (
                family.merged_child() if shard is None else family.labels(shard)
            )

        decisions = int(child(DECISIONS_TOTAL).value)
        wall = float(child(WALL_SECONDS_TOTAL).value)
        hist = child(BATCH_SECONDS)
        if wall > 0:
            throughput = decisions / wall
        else:
            throughput = 0.0 if decisions == 0 else float("inf")
        return cls(
            decisions=decisions,
            batches=int(child(BATCHES_TOTAL).value),
            wall_seconds=wall,
            throughput_qps=throughput,
            p50_latency_s=hist.quantile(0.50),
            p99_latency_s=hist.quantile(0.99),
            non_default_fraction=(
                float(child(NON_DEFAULT_TOTAL).value) / decisions
                if decisions
                else 0.0
            ),
            refreshes=int(child(REFRESHES_TOTAL).value),
            shed=int(child(SHED_TOTAL).value),
        )

    @classmethod
    def merge(cls, parts: Iterable["ServingStats"]) -> "ServingStats":
        """Fold per-shard reports into one cluster-wide report.

        Counters (decisions, batches, wall time, refreshes) merge exactly;
        throughput and the hit rate are recomputed from the merged counters.
        The percentiles are combined as a decision-weighted percentile of
        the per-part percentiles -- exact when every part is internally
        uniform, an approximation otherwise.  Aggregators holding the raw
        recorders (:meth:`LatencyRecorder.merged`) can recompute them
        exactly and overwrite these two fields.
        """
        parts = list(parts)
        decisions = sum(p.decisions for p in parts)
        batches = sum(p.batches for p in parts)
        wall = float(sum(p.wall_seconds for p in parts))
        refreshes = sum(p.refreshes for p in parts)
        shed = sum(p.shed for p in parts)
        if decisions == 0:
            return cls(
                decisions=0,
                batches=batches,
                wall_seconds=wall,
                throughput_qps=0.0,
                p50_latency_s=0.0,
                p99_latency_s=0.0,
                non_default_fraction=0.0,
                refreshes=refreshes,
                shed=shed,
            )
        served = [p for p in parts if p.decisions > 0]
        weights = [p.decisions for p in served]
        p50 = _weighted_percentiles([p.p50_latency_s for p in served], weights, [50.0])[0]
        p99 = _weighted_percentiles([p.p99_latency_s for p in served], weights, [99.0])[0]
        non_default = sum(p.non_default_fraction * p.decisions for p in served)
        return cls(
            decisions=int(decisions),
            batches=int(batches),
            wall_seconds=wall,
            throughput_qps=decisions / wall if wall > 0 else float("inf"),
            p50_latency_s=float(p50),
            p99_latency_s=float(p99),
            non_default_fraction=float(non_default) / decisions,
            refreshes=int(refreshes),
            shed=int(shed),
        )

    def __str__(self) -> str:
        return (
            f"ServingStats({self.decisions} decisions in {self.batches} batches, "
            f"{self.throughput_qps:,.0f} qps, "
            f"p50={self.p50_latency_s * 1e6:.1f}us, "
            f"p99={self.p99_latency_s * 1e6:.1f}us, "
            f"hit_rate={self.non_default_fraction:.1%}, "
            f"refreshes={self.refreshes}, "
            f"shed={self.shed})"
        )


def _weighted_percentiles(values, weights, qs) -> np.ndarray:
    """Percentiles of a population where ``values[i]`` occurs ``weights[i]``
    times, matching ``np.percentile`` (linear interpolation) on the expanded
    array without allocating it.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=np.int64)
    order = np.argsort(values)
    values = values[order]
    # cumulative[i] is the 1-based end index of group i in the sorted
    # expanded array; searchsorted recovers the group holding any index.
    cumulative = np.cumsum(weights[order])
    total = int(cumulative[-1])
    out = np.empty(len(qs))
    for i, q in enumerate(qs):
        position = q / 100.0 * (total - 1)
        low = int(np.floor(position))
        high = int(np.ceil(position))
        value_low = values[np.searchsorted(cumulative, low + 1)]
        value_high = values[np.searchsorted(cumulative, high + 1)]
        out[i] = value_low + (position - low) * (value_high - value_low)
    return out


class LatencyRecorder:
    """Accumulates batch timings; hot-path cost is three list appends.

    With a metrics mirror bound (:meth:`bind_metrics`), the registry's
    well-known serving counters are fed from the same per-batch samples
    this recorder keeps -- but lazily: :meth:`sync_metrics` pushes the
    delta since the last sync, and runs from every cold path that reads
    the registry (:meth:`report`, :meth:`Telemetry.snapshot`,
    :meth:`Telemetry.expose_text`).  The hot path therefore stays the
    original three list appends whether or not a mirror is bound, and
    :meth:`ServingStats.from_registry` still cannot drift from
    :meth:`report` -- both views derive from the same samples.  Registry
    counters are monotonic: :meth:`reset` flushes pending deltas and
    clears only the recorder's samples, never the mirror.
    """

    def __init__(self) -> None:
        self._batch_sizes: List[int] = []
        self._batch_seconds: List[float] = []
        self._non_default: List[int] = []
        self._refreshes = 0
        self._shed = 0
        self._metrics: Optional[ServingMetrics] = None
        # Sync watermarks: how much of the sample history has already been
        # pushed into the bound mirror.
        self._synced_batches = 0
        self._synced_refreshes = 0
        self._synced_shed = 0

    def bind_metrics(self, metrics: ServingMetrics) -> None:
        """Mirror this recorder's samples into the registry's serving counters.

        Once bound, the registry is the mutation authority for the shared
        counters: external callers must go through the owning service's
        blessed hooks (e.g. :meth:`ServingService.record_shed`) instead of
        mutating this recorder directly.  On the *first* bind the
        watermarks skip any pre-bind history (the registry mirrors what
        happened under its watch); a rebind (the shard rebuilding its
        service around the same recorder) keeps the watermarks so nothing
        is double-counted or lost.
        """
        first = self._metrics is None
        self._metrics = metrics
        if first:
            self._synced_batches = len(self._batch_sizes)
            self._synced_refreshes = self._refreshes
            self._synced_shed = self._shed

    def sync_metrics(self) -> None:
        """Push samples recorded since the last sync into the mirror."""
        m = self._metrics
        if m is None:
            return
        start = self._synced_batches
        sizes = self._batch_sizes[start:]
        if sizes:
            self._synced_batches = len(self._batch_sizes)
            seconds = self._batch_seconds[start:]
            m.batches.inc(len(sizes))
            m.wall_seconds.inc(float(np.sum(seconds)))
            decisions = int(np.sum(sizes))
            if decisions:
                m.decisions.inc(decisions)
                m.non_default.inc(int(np.sum(self._non_default[start:])))
                hist = m.batch_seconds
                for size, secs in zip(sizes, seconds):
                    if size:
                        # One weighted observe per batch: every decision is
                        # charged the batch's amortised latency, matching
                        # report()'s per-decision percentile population.
                        hist.observe(secs / size, size)
        refreshes = self._refreshes - self._synced_refreshes
        if refreshes:
            m.refreshes.inc(refreshes)
            self._synced_refreshes = self._refreshes
        shed = self._shed - self._synced_shed
        if shed:
            m.shed.inc(shed)
            self._synced_shed = self._shed

    def record(self, batch_size: int, seconds: float, non_default: int) -> None:
        """Log one served batch."""
        self._batch_sizes.append(int(batch_size))
        self._batch_seconds.append(float(seconds))
        self._non_default.append(int(non_default))

    def record_refresh(self) -> None:
        """Log one model/cache refresh."""
        self._refreshes += 1

    def record_shed(self, count: int = 1, _blessed: bool = False) -> None:
        """Log arrivals degraded to default plans by admission control.

        .. deprecated::
            Calling this directly while a registry mirror is bound.  The
            registry is then the mutation authority; use
            :meth:`ServingService.record_shed` /
            :meth:`ServingCluster.record_shed` instead (they stay
            mirrored and keep ``from_registry`` consistent).
        """
        if self._metrics is not None and not _blessed:
            warnings.warn(
                "mutating LatencyRecorder counters directly is deprecated "
                "once a metrics registry mirror is bound; call "
                "ServingService.record_shed / ServingCluster.record_shed "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._shed += int(count)

    def report(self) -> ServingStats:
        """Fold the accumulated timings into a :class:`ServingStats`."""
        self.sync_metrics()
        sizes = np.asarray(self._batch_sizes, dtype=float)
        seconds = np.asarray(self._batch_seconds, dtype=float)
        decisions = int(sizes.sum())
        wall = float(seconds.sum())
        if decisions == 0:
            return ServingStats(
                decisions=0,
                batches=0,
                wall_seconds=0.0,
                throughput_qps=0.0,
                p50_latency_s=0.0,
                p99_latency_s=0.0,
                non_default_fraction=0.0,
                refreshes=self._refreshes,
                shed=self._shed,
            )
        # Each decision in a batch experiences the batch's amortised latency,
        # so the percentiles are over a weighted population (one value per
        # batch, weighted by its size) -- computed without materialising the
        # O(decisions) expanded array.
        nonempty = sizes > 0
        p50, p99 = _weighted_percentiles(
            seconds[nonempty] / sizes[nonempty], sizes[nonempty], [50.0, 99.0]
        )
        return ServingStats(
            decisions=decisions,
            batches=len(self._batch_sizes),
            wall_seconds=wall,
            throughput_qps=decisions / wall if wall > 0 else float("inf"),
            p50_latency_s=float(p50),
            p99_latency_s=float(p99),
            non_default_fraction=float(sum(self._non_default)) / decisions,
            refreshes=self._refreshes,
            shed=self._shed,
        )

    def reset(self) -> None:
        """Drop all accumulated timings (refresh and shed counts included).

        Pending deltas are flushed to the mirror first, so a reset never
        loses registry counts -- the registry stays monotonic while the
        recorder's own view restarts from zero.
        """
        self.sync_metrics()
        self._batch_sizes.clear()
        self._batch_seconds.clear()
        self._non_default.clear()
        self._refreshes = 0
        self._shed = 0
        self._synced_batches = 0
        self._synced_refreshes = 0
        self._synced_shed = 0

    @classmethod
    def merged(cls, recorders: Sequence["LatencyRecorder"]) -> "LatencyRecorder":
        """Pool raw batch samples from many recorders into a fresh one.

        Unlike :meth:`ServingStats.merge`, the pooled recorder's
        :meth:`report` computes the global percentiles *exactly* -- this is
        what the cluster aggregator uses when it holds every shard
        in-process and the raw samples are still available.
        """
        pooled = cls()
        for recorder in recorders:
            pooled._batch_sizes.extend(recorder._batch_sizes)
            pooled._batch_seconds.extend(recorder._batch_seconds)
            pooled._non_default.extend(recorder._non_default)
            pooled._refreshes += recorder._refreshes
            pooled._shed += recorder._shed
        return pooled
