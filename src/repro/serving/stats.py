"""Serving-side telemetry: throughput, decision-latency percentiles, hit rate.

A production hint-recommendation service lives or dies by two numbers: how
many decisions per second it sustains, and how long a single arrival waits
for its decision.  :class:`LatencyRecorder` accumulates per-batch timings as
they happen (cheap appends on the hot path); :class:`ServingStats` is the
immutable report derived from them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np


@dataclass(frozen=True)
class ServingStats:
    """A point-in-time report over everything the service has served.

    Attributes
    ----------
    decisions / batches:
        Total queries answered and the number of batches they arrived in.
    wall_seconds:
        Total decision time (excludes caller think-time between batches).
    throughput_qps:
        ``decisions / wall_seconds``.
    p50_latency_s / p99_latency_s:
        Percentiles of the *per-decision* latency: each decision in a batch
        is charged the batch's wall time divided by its size, which is the
        amortised latency an arrival experiences under batched execution.
    non_default_fraction:
        Fraction of decisions answered with a verified non-default plan --
        the regression-guarantee hit rate (every non-default answer carries
        the no-regression guarantee).
    refreshes:
        How many model/cache refreshes ran (incremental ALS updates).
    shed:
        Arrivals answered with the default plan by admission control
        (:mod:`repro.ingress` load-shedding) instead of the decision
        arrays.  Shed answers are valid decisions -- the no-regression
        guarantee is anchored on the default plan -- but they never touch
        the snapshot, so they are counted here and *not* in ``decisions``
        or the latency percentiles.
    """

    decisions: int
    batches: int
    wall_seconds: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    non_default_fraction: float
    refreshes: int
    shed: int = 0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Plain dictionary for dashboards and log lines.

        Counters (``decisions``, ``batches``, ``refreshes``) stay integers;
        only the genuinely continuous fields are floats.
        """
        return {
            "decisions": int(self.decisions),
            "batches": int(self.batches),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "non_default_fraction": self.non_default_fraction,
            "refreshes": int(self.refreshes),
            "shed": int(self.shed),
        }

    @classmethod
    def merge(cls, parts: Iterable["ServingStats"]) -> "ServingStats":
        """Fold per-shard reports into one cluster-wide report.

        Counters (decisions, batches, wall time, refreshes) merge exactly;
        throughput and the hit rate are recomputed from the merged counters.
        The percentiles are combined as a decision-weighted percentile of
        the per-part percentiles -- exact when every part is internally
        uniform, an approximation otherwise.  Aggregators holding the raw
        recorders (:meth:`LatencyRecorder.merged`) can recompute them
        exactly and overwrite these two fields.
        """
        parts = list(parts)
        decisions = sum(p.decisions for p in parts)
        batches = sum(p.batches for p in parts)
        wall = float(sum(p.wall_seconds for p in parts))
        refreshes = sum(p.refreshes for p in parts)
        shed = sum(p.shed for p in parts)
        if decisions == 0:
            return cls(
                decisions=0,
                batches=batches,
                wall_seconds=wall,
                throughput_qps=0.0,
                p50_latency_s=0.0,
                p99_latency_s=0.0,
                non_default_fraction=0.0,
                refreshes=refreshes,
                shed=shed,
            )
        served = [p for p in parts if p.decisions > 0]
        weights = [p.decisions for p in served]
        p50 = _weighted_percentiles([p.p50_latency_s for p in served], weights, [50.0])[0]
        p99 = _weighted_percentiles([p.p99_latency_s for p in served], weights, [99.0])[0]
        non_default = sum(p.non_default_fraction * p.decisions for p in served)
        return cls(
            decisions=int(decisions),
            batches=int(batches),
            wall_seconds=wall,
            throughput_qps=decisions / wall if wall > 0 else float("inf"),
            p50_latency_s=float(p50),
            p99_latency_s=float(p99),
            non_default_fraction=float(non_default) / decisions,
            refreshes=int(refreshes),
            shed=int(shed),
        )

    def __str__(self) -> str:
        return (
            f"ServingStats({self.decisions} decisions in {self.batches} batches, "
            f"{self.throughput_qps:,.0f} qps, "
            f"p50={self.p50_latency_s * 1e6:.1f}us, "
            f"p99={self.p99_latency_s * 1e6:.1f}us, "
            f"hit_rate={self.non_default_fraction:.1%}, "
            f"refreshes={self.refreshes}, "
            f"shed={self.shed})"
        )


def _weighted_percentiles(values, weights, qs) -> np.ndarray:
    """Percentiles of a population where ``values[i]`` occurs ``weights[i]``
    times, matching ``np.percentile`` (linear interpolation) on the expanded
    array without allocating it.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=np.int64)
    order = np.argsort(values)
    values = values[order]
    # cumulative[i] is the 1-based end index of group i in the sorted
    # expanded array; searchsorted recovers the group holding any index.
    cumulative = np.cumsum(weights[order])
    total = int(cumulative[-1])
    out = np.empty(len(qs))
    for i, q in enumerate(qs):
        position = q / 100.0 * (total - 1)
        low = int(np.floor(position))
        high = int(np.ceil(position))
        value_low = values[np.searchsorted(cumulative, low + 1)]
        value_high = values[np.searchsorted(cumulative, high + 1)]
        out[i] = value_low + (position - low) * (value_high - value_low)
    return out


class LatencyRecorder:
    """Accumulates batch timings; hot-path cost is three list appends."""

    def __init__(self) -> None:
        self._batch_sizes: List[int] = []
        self._batch_seconds: List[float] = []
        self._non_default: List[int] = []
        self._refreshes = 0
        self._shed = 0

    def record(self, batch_size: int, seconds: float, non_default: int) -> None:
        """Log one served batch."""
        self._batch_sizes.append(int(batch_size))
        self._batch_seconds.append(float(seconds))
        self._non_default.append(int(non_default))

    def record_refresh(self) -> None:
        """Log one model/cache refresh."""
        self._refreshes += 1

    def record_shed(self, count: int = 1) -> None:
        """Log arrivals degraded to default plans by admission control."""
        self._shed += int(count)

    def report(self) -> ServingStats:
        """Fold the accumulated timings into a :class:`ServingStats`."""
        sizes = np.asarray(self._batch_sizes, dtype=float)
        seconds = np.asarray(self._batch_seconds, dtype=float)
        decisions = int(sizes.sum())
        wall = float(seconds.sum())
        if decisions == 0:
            return ServingStats(
                decisions=0,
                batches=0,
                wall_seconds=0.0,
                throughput_qps=0.0,
                p50_latency_s=0.0,
                p99_latency_s=0.0,
                non_default_fraction=0.0,
                refreshes=self._refreshes,
                shed=self._shed,
            )
        # Each decision in a batch experiences the batch's amortised latency,
        # so the percentiles are over a weighted population (one value per
        # batch, weighted by its size) -- computed without materialising the
        # O(decisions) expanded array.
        nonempty = sizes > 0
        p50, p99 = _weighted_percentiles(
            seconds[nonempty] / sizes[nonempty], sizes[nonempty], [50.0, 99.0]
        )
        return ServingStats(
            decisions=decisions,
            batches=len(self._batch_sizes),
            wall_seconds=wall,
            throughput_qps=decisions / wall if wall > 0 else float("inf"),
            p50_latency_s=float(p50),
            p99_latency_s=float(p99),
            non_default_fraction=float(sum(self._non_default)) / decisions,
            refreshes=self._refreshes,
            shed=self._shed,
        )

    def reset(self) -> None:
        """Drop all accumulated timings (refresh and shed counts included)."""
        self._batch_sizes.clear()
        self._batch_seconds.clear()
        self._non_default.clear()
        self._refreshes = 0
        self._shed = 0

    @classmethod
    def merged(cls, recorders: Sequence["LatencyRecorder"]) -> "LatencyRecorder":
        """Pool raw batch samples from many recorders into a fresh one.

        Unlike :meth:`ServingStats.merge`, the pooled recorder's
        :meth:`report` computes the global percentiles *exactly* -- this is
        what the cluster aggregator uses when it holds every shard
        in-process and the raw samples are still available.
        """
        pooled = cls()
        for recorder in recorders:
            pooled._batch_sizes.extend(recorder._batch_sizes)
            pooled._batch_seconds.extend(recorder._batch_seconds)
            pooled._non_default.extend(recorder._non_default)
            pooled._refreshes += recorder._refreshes
            pooled._shed += recorder._shed
        return pooled
