"""Serving-side telemetry: throughput, decision-latency percentiles, hit rate.

A production hint-recommendation service lives or dies by two numbers: how
many decisions per second it sustains, and how long a single arrival waits
for its decision.  :class:`LatencyRecorder` accumulates per-batch timings as
they happen (cheap appends on the hot path); :class:`ServingStats` is the
immutable report derived from them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class ServingStats:
    """A point-in-time report over everything the service has served.

    Attributes
    ----------
    decisions / batches:
        Total queries answered and the number of batches they arrived in.
    wall_seconds:
        Total decision time (excludes caller think-time between batches).
    throughput_qps:
        ``decisions / wall_seconds``.
    p50_latency_s / p99_latency_s:
        Percentiles of the *per-decision* latency: each decision in a batch
        is charged the batch's wall time divided by its size, which is the
        amortised latency an arrival experiences under batched execution.
    non_default_fraction:
        Fraction of decisions answered with a verified non-default plan --
        the regression-guarantee hit rate (every non-default answer carries
        the no-regression guarantee).
    refreshes:
        How many model/cache refreshes ran (incremental ALS updates).
    """

    decisions: int
    batches: int
    wall_seconds: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    non_default_fraction: float
    refreshes: int

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary for dashboards and log lines."""
        return {
            "decisions": float(self.decisions),
            "batches": float(self.batches),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "non_default_fraction": self.non_default_fraction,
            "refreshes": float(self.refreshes),
        }

    def __str__(self) -> str:
        return (
            f"ServingStats({self.decisions} decisions in {self.batches} batches, "
            f"{self.throughput_qps:,.0f} qps, "
            f"p50={self.p50_latency_s * 1e6:.1f}us, "
            f"p99={self.p99_latency_s * 1e6:.1f}us, "
            f"hit_rate={self.non_default_fraction:.1%}, "
            f"refreshes={self.refreshes})"
        )


def _weighted_percentiles(values, weights, qs) -> np.ndarray:
    """Percentiles of a population where ``values[i]`` occurs ``weights[i]``
    times, matching ``np.percentile`` (linear interpolation) on the expanded
    array without allocating it.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=np.int64)
    order = np.argsort(values)
    values = values[order]
    # cumulative[i] is the 1-based end index of group i in the sorted
    # expanded array; searchsorted recovers the group holding any index.
    cumulative = np.cumsum(weights[order])
    total = int(cumulative[-1])
    out = np.empty(len(qs))
    for i, q in enumerate(qs):
        position = q / 100.0 * (total - 1)
        low = int(np.floor(position))
        high = int(np.ceil(position))
        value_low = values[np.searchsorted(cumulative, low + 1)]
        value_high = values[np.searchsorted(cumulative, high + 1)]
        out[i] = value_low + (position - low) * (value_high - value_low)
    return out


class LatencyRecorder:
    """Accumulates batch timings; hot-path cost is three list appends."""

    def __init__(self) -> None:
        self._batch_sizes: List[int] = []
        self._batch_seconds: List[float] = []
        self._non_default: List[int] = []
        self._refreshes = 0

    def record(self, batch_size: int, seconds: float, non_default: int) -> None:
        """Log one served batch."""
        self._batch_sizes.append(int(batch_size))
        self._batch_seconds.append(float(seconds))
        self._non_default.append(int(non_default))

    def record_refresh(self) -> None:
        """Log one model/cache refresh."""
        self._refreshes += 1

    def report(self) -> ServingStats:
        """Fold the accumulated timings into a :class:`ServingStats`."""
        sizes = np.asarray(self._batch_sizes, dtype=float)
        seconds = np.asarray(self._batch_seconds, dtype=float)
        decisions = int(sizes.sum())
        wall = float(seconds.sum())
        if decisions == 0:
            return ServingStats(
                decisions=0,
                batches=0,
                wall_seconds=0.0,
                throughput_qps=0.0,
                p50_latency_s=0.0,
                p99_latency_s=0.0,
                non_default_fraction=0.0,
                refreshes=self._refreshes,
            )
        # Each decision in a batch experiences the batch's amortised latency,
        # so the percentiles are over a weighted population (one value per
        # batch, weighted by its size) -- computed without materialising the
        # O(decisions) expanded array.
        nonempty = sizes > 0
        p50, p99 = _weighted_percentiles(
            seconds[nonempty] / sizes[nonempty], sizes[nonempty], [50.0, 99.0]
        )
        return ServingStats(
            decisions=decisions,
            batches=len(self._batch_sizes),
            wall_seconds=wall,
            throughput_qps=decisions / wall if wall > 0 else float("inf"),
            p50_latency_s=float(p50),
            p99_latency_s=float(p99),
            non_default_fraction=float(sum(self._non_default)) / decisions,
            refreshes=self._refreshes,
        )

    def reset(self) -> None:
        """Drop all accumulated timings (refresh count included)."""
        self._batch_sizes.clear()
        self._batch_seconds.clear()
        self._non_default.clear()
        self._refreshes = 0
