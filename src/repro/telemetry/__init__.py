"""Unified observability: metrics registry, request tracing, snapshots.

See ``docs/observability.md`` for the metric catalog, trace stages, and
snapshot schema.  Everything here is no-op-by-default: components only
instrument when handed a :class:`Telemetry` whose config has
``enabled=True`` (use :meth:`Telemetry.enabled` to opt in).
"""

from .registry import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .runtime import (
    ClusterMetrics,
    JournalMetrics,
    ServingMetrics,
    Telemetry,
)
from .snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    TelemetrySnapshot,
    collect_snapshot,
    write_telemetry_json,
)
from .tracing import STAGES, Trace, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
    "Telemetry",
    "ServingMetrics",
    "JournalMetrics",
    "ClusterMetrics",
    "Trace",
    "Tracer",
    "STAGES",
    "TelemetrySnapshot",
    "SNAPSHOT_SCHEMA_VERSION",
    "collect_snapshot",
    "write_telemetry_json",
]
