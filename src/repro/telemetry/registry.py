"""A lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.

Three design rules keep the registry usable on the serve hot path:

* **Mutation is O(1) python arithmetic.**  ``Counter.inc`` is one float
  add; ``Histogram.observe`` is one bisect plus two adds.  No locks: the
  whole serving stack runs on one event loop / one thread per shard, and
  cross-shard aggregation happens by *merging* registries (or labeled
  children), never by sharing mutable cells.
* **Fixed buckets make histograms mergeable.**  Every histogram of a
  family shares the same upper bounds, so merging is element-wise
  addition of bucket counts and ``merge(a, b)`` is exactly equivalent to
  observing the union of the samples (hypothesis-verified in
  ``tests/test_telemetry.py``).
* **Label cardinality is bounded.**  Past ``max_label_values`` distinct
  label sets per metric, new label sets collapse into one shared
  ``"__overflow__"`` child and the registry's overflow counter
  increments -- an unbounded tenant-id stream degrades gracefully
  instead of growing the process without limit.

Mutating a metric's value *directly* (``counter.value = 5``) is not
possible -- ``value`` is a read-only property.  The registry is the
single mutation authority; legacy counter paths
(:class:`repro.serving.stats.LatencyRecorder`) dual-write through it and
warn on direct external mutation once a registry mirror is bound.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TelemetryError

OVERFLOW_LABEL = "__overflow__"

#: Default histogram bounds (seconds) -- kept in sync with
#: :class:`repro.config.TelemetryConfig.latency_buckets`.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing count.  Mutate only through :meth:`inc`."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(f"counters only go up; got inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count (read-only; there is deliberately no setter)."""
        return self._value

    def merge_from(self, other: "Counter") -> None:
        """Fold another shard's counter into this one (sum)."""
        self._value += other._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, budget, LSN)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value (read-only property; mutate via set/inc/dec)."""
        return self._value

    def merge_from(self, other: "Gauge") -> None:
        """Fold another shard's gauge into this one (sum -- gauges in this
        library are extensive quantities: rows, segments, queue depths)."""
        self._value += other._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with a weighted observe and exact sum/count.

    ``bounds`` are inclusive upper bounds; one implicit ``+Inf`` bucket
    catches the tail.  ``observe(value, weight)`` charges ``weight``
    occurrences of ``value`` -- the serving layer uses this to record a
    batch's amortised per-decision latency once per batch, weighted by
    batch size, instead of looping per decision.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TelemetryError(
                "histogram bounds must be non-empty and strictly increasing"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float, weight: int = 1) -> None:
        """Record ``weight`` occurrences of ``value``."""
        self.counts[bisect_left(self.bounds, value)] += weight
        self.total += value * weight
        self.count += weight

    def observe_many(self, values) -> None:
        """Vectorised observe of a 1-D array of values."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        idx = np.searchsorted(self.bounds, values, side="left")
        for i, c in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(i)] += int(c)
        self.total += float(values.sum())
        self.count += int(values.size)

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram in; bounds must match exactly."""
        if other.bounds != self.bounds:
            raise TelemetryError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        Exact to within one bucket width; 0.0 on an empty histogram.  The
        estimate interpolates linearly inside the holding bucket, with the
        first bucket anchored at 0 and the ``+Inf`` bucket clamped to the
        last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank and c > 0:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                fraction = (rank - (cumulative - c)) / c
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        """Exact mean of everything observed (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": int(self.count),
            "sum": float(self.total),
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): int(c)
                for i, c in enumerate(self.counts)
                if c
            },
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labeled children.

    An unlabeled metric is a family with a single anonymous child (the
    empty label tuple).  ``labels(...)`` returns -- creating on first use
    -- the child for one ordered tuple of label values, collapsing into
    the shared overflow child past the registry's cardinality bound.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        max_label_values: int,
        overflow_counter: Counter,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._max_label_values = max_label_values
        self._overflow = overflow_counter
        self._bounds = tuple(bounds) if bounds is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not label_names:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._bounds or DEFAULT_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, *values) -> Any:
        """The child for one ordered tuple of label values."""
        if len(values) != len(self.label_names):
            raise TelemetryError(
                f"{self.name} takes labels {self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if (
                len(self._children) >= self._max_label_values
                and key != (OVERFLOW_LABEL,) * len(self.label_names)
            ):
                # Cardinality guard: collapse into the shared overflow
                # child instead of growing without bound.
                self._overflow.inc()
                return self.labels(*((OVERFLOW_LABEL,) * len(self.label_names)))
            child = self._make_child()
            self._children[key] = child
        return child

    @property
    def child(self) -> Any:
        """The anonymous child of an unlabeled metric."""
        if self.label_names:
            raise TelemetryError(
                f"{self.name} is labeled by {self.label_names}; use labels()"
            )
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs in insertion order."""
        return list(self._children.items())

    def merged_child(self) -> Any:
        """All children folded into one fresh metric (cross-label total)."""
        merged = self._make_child()
        for child in self._children.values():
            merged.merge_from(child)
        return merged

    def merge_from(self, other: "MetricFamily") -> None:
        if (
            other.kind != self.kind
            or other.label_names != self.label_names
        ):
            raise TelemetryError(
                f"cannot merge family {self.name!r}: kind/labels differ"
            )
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._make_child()
                self._children[key] = mine
            mine.merge_from(child)

    def snapshot(self) -> Dict[str, Any]:
        if not self.label_names:
            return {"kind": self.kind, "value": self._children[()].snapshot()}
        return {
            "kind": self.kind,
            "labels": list(self.label_names),
            "children": {
                ",".join(key): child.snapshot()
                for key, child in self._children.items()
            },
        }


class MetricsRegistry:
    """An ordered registry of metric families with exposition and merge.

    Metric names follow the Prometheus convention (``repro_*_total`` for
    counters, ``*_seconds`` for latency histograms).  Registering the
    same name twice with the same signature returns the existing family,
    so independent components can share well-known metrics without
    coordination; a signature mismatch raises.
    """

    def __init__(self, max_label_values: int = 64) -> None:
        if max_label_values < 1:
            raise TelemetryError(
                f"max_label_values must be >= 1, got {max_label_values}"
            )
        self.max_label_values = int(max_label_values)
        self._families: Dict[str, MetricFamily] = {}
        self.label_overflows = Counter()

    # -- registration -------------------------------------------------------
    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        bounds: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise TelemetryError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != labels:
                raise TelemetryError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(
            name,
            help_text,
            kind,
            labels,
            self.max_label_values,
            self.label_overflows,
            bounds=bounds,
        )
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(name, help_text, "histogram", labels, bounds=bounds)

    # -- lookup -------------------------------------------------------------
    def get(self, name: str) -> MetricFamily:
        """The family registered under ``name``; raises when unknown."""
        try:
            return self._families[name]
        except KeyError:
            raise TelemetryError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    @property
    def names(self) -> List[str]:
        """Registered family names in registration order."""
        return list(self._families)

    # -- merging ------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (per-shard registries -> one view)."""
        for name, family in other._families.items():
            mine = self._families.get(name)
            if mine is None:
                mine = MetricFamily(
                    family.name,
                    family.help,
                    family.kind,
                    family.label_names,
                    self.max_label_values,
                    self.label_overflows,
                    bounds=family._bounds,
                )
                self._families[name] = mine
            mine.merge_from(family)
        self.label_overflows.merge_from(other.label_overflows)

    @classmethod
    def merged(cls, parts: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the fold of every part."""
        out = cls()
        for part in parts:
            out.merge_from(part)
        return out

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dictionary of every family's state."""
        payload = {
            name: family.snapshot() for name, family in self._families.items()
        }
        payload["_label_overflows"] = self.label_overflows.value
        return payload

    def expose_text(self) -> str:
        """Prometheus-style text exposition of every family."""
        lines: List[str] = []
        for name, family in self._families.items():
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.children():
                label_str = _format_labels(family.label_names, key)
                if family.kind == "histogram":
                    cumulative = 0
                    for i, bound in enumerate(child.bounds):
                        cumulative += child.counts[i]
                        le = _format_labels(
                            family.label_names + ("le",), key + (repr(bound),)
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _format_labels(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{le} {child.count}")
                    lines.append(f"{name}_sum{label_str} {_num(child.total)}")
                    lines.append(f"{name}_count{label_str} {child.count}")
                else:
                    lines.append(f"{name}{label_str} {_num(child.value)}")
        lines.append(
            f"# TYPE repro_label_overflows_total counter\n"
            f"repro_label_overflows_total {_num(self.label_overflows.value)}"
        )
        return "\n".join(lines) + "\n"


def _format_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + inner + "}"


def _num(value: float) -> str:
    """Render integral floats without the trailing .0 (counter convention)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))
