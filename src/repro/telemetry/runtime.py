"""The `Telemetry` facade: one object components share to emit metrics.

Construction cost is paid once; hot paths only ever touch pre-resolved
metric children.  Components accept ``telemetry=None`` and normalise at
construction time::

    self._telemetry = telemetry if telemetry is not None and telemetry.config.enabled else None

so the disabled path is a single ``if self._telemetry is not None``
branch -- byte-identical behaviour, zero extra allocations (regression-
tested in ``tests/test_telemetry.py``).

Per-shard usage: each shard gets its own ``Telemetry`` view (via
:meth:`Telemetry.labeled`) with its shard id as the default label; the
views share one registry and tracer, so cluster-wide exposition needs
no merge step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from ..config import DEFAULT_TELEMETRY_CONFIG, TelemetryConfig
from .registry import MetricsRegistry
from .tracing import Tracer

#: Well-known metric names.  Keep in sync with docs/observability.md.
DECISIONS_TOTAL = "repro_decisions_total"
BATCHES_TOTAL = "repro_batches_total"
NON_DEFAULT_TOTAL = "repro_non_default_total"
REFRESHES_TOTAL = "repro_refreshes_total"
SHED_TOTAL = "repro_shed_total"
WALL_SECONDS_TOTAL = "repro_serve_wall_seconds_total"
BATCH_SECONDS = "repro_batch_seconds"
STAGE_SECONDS = "repro_stage_seconds"
CACHE_REBUILDS_TOTAL = "repro_cache_rebuilds_total"
WAL_RECORDS_TOTAL = "repro_wal_records_total"
WAL_BYTES_TOTAL = "repro_wal_bytes_total"
CHECKPOINTS_TOTAL = "repro_checkpoints_total"
ROUTED_BATCHES_TOTAL = "repro_routed_batches_total"
FAN_OUT_TOTAL = "repro_fan_out_total"
DEGRADED_TOTAL = "repro_degraded_decisions_total"
CLUSTER_SHED_TOTAL = "repro_cluster_shed_total"
REBALANCED_ROWS_TOTAL = "repro_rebalanced_rows_total"
CRASHES_TOTAL = "repro_crashes_total"
RESTARTS_TOTAL = "repro_restarts_total"
QUEUED_FEEDBACK_TOTAL = "repro_queued_feedback_total"
REPLAYED_FEEDBACK_TOTAL = "repro_replayed_feedback_total"
SHARDS_GAUGE = "repro_shards"
SHARDS_UP_GAUGE = "repro_shards_up"
TENANTS_GAUGE = "repro_tenants"
ROWS_GAUGE = "repro_rows"
SCHEDULER_TICKS_GAUGE = "repro_scheduler_ticks"
SCHEDULER_REFRESHES_GAUGE = "repro_scheduler_refreshes"
SCHEDULER_BUDGET_GAUGE = "repro_scheduler_budget_per_tick"


class Telemetry:
    """Shared observability context: config + registry + tracer.

    Disabled (the :class:`~repro.config.TelemetryConfig` default) it is
    inert: components that receive it check ``config.enabled`` once at
    construction and keep no reference, so no instrumentation runs.
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        shard_label: str = "all",
    ) -> None:
        self.config = config if config is not None else DEFAULT_TELEMETRY_CONFIG
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(max_label_values=self.config.max_label_values)
        )
        self.shard_label = str(shard_label)
        self.tracer = Tracer(
            self.registry,
            slow_trace_seconds=self.config.slow_trace_seconds,
            ring_size=self.config.trace_ring,
        )
        self._bounds = self.config.latency_buckets
        # Lazy-mirror flush hooks (e.g. LatencyRecorder.sync_metrics),
        # run before any registry export so deferred counters are current.
        self._sync_fns: list = []

    @classmethod
    def enabled(cls, config: Optional[TelemetryConfig] = None) -> "Telemetry":
        """An opted-in instance (``TelemetryConfig.enabled`` flipped on)."""
        base = config if config is not None else DEFAULT_TELEMETRY_CONFIG
        if not base.enabled:
            base = TelemetryConfig(
                enabled=True,
                latency_buckets=base.latency_buckets,
                slow_trace_seconds=base.slow_trace_seconds,
                trace_ring=base.trace_ring,
                max_label_values=base.max_label_values,
            )
        return cls(base)

    def child(self, shard_label: str) -> "Telemetry":
        """A per-shard view: same config, own registry, own tracer.

        Shards mutate their own registries (no sharing across workers);
        :meth:`merged_registry` folds any set of children back into one
        cluster-wide view.
        """
        return Telemetry(
            self.config,
            registry=MetricsRegistry(
                max_label_values=self.config.max_label_values
            ),
            shard_label=shard_label,
        )

    def labeled(self, shard_label: str) -> "Telemetry":
        """A same-process view with a different default shard label.

        Config, registry, and tracer are *shared* -- this is how the
        in-process cluster hands one telemetry context to every shard
        while keeping their metric children separated by label (the whole
        stack runs one event-loop frame at a time, so sharing is safe).
        """
        view = Telemetry.__new__(Telemetry)
        view.config = self.config
        view.registry = self.registry
        view.shard_label = str(shard_label)
        view.tracer = self.tracer
        view._bounds = self._bounds
        view._sync_fns = self._sync_fns
        return view

    def merged_registry(
        self, children: Iterable["Telemetry"]
    ) -> MetricsRegistry:
        """This registry plus every child's, folded into a fresh one."""
        parts = [self.registry] + [c.registry for c in children]
        return MetricsRegistry.merged(parts)

    # -- pre-wired metric bundles ------------------------------------------
    def serving_metrics(self, shard: str = "") -> "ServingMetrics":
        """The well-known serving counters, resolved for one shard label."""
        return ServingMetrics(self, shard or self.shard_label)

    def journal_metrics(self, shard: str = "") -> "JournalMetrics":
        """The well-known durability counters for one shard label."""
        return JournalMetrics(self, shard or self.shard_label)

    def cluster_metrics(self) -> "ClusterMetrics":
        """The well-known cluster facade counters and topology gauges."""
        return ClusterMetrics(self)

    # -- deferred-mirror flushing -------------------------------------------
    def register_sync(self, fn) -> None:
        """Register a flush hook run before every registry export.

        Components whose mirrors are fed lazily (the
        :class:`~repro.serving.stats.LatencyRecorder` pushes counter
        deltas on cold paths only, keeping the serve hot path untouched)
        register their flush here so :meth:`snapshot` and
        :meth:`expose_text` always export current numbers.
        """
        if fn not in self._sync_fns:
            self._sync_fns.append(fn)

    def sync(self) -> None:
        """Run every registered flush hook (idempotent)."""
        for fn in self._sync_fns:
            fn()

    # -- export -------------------------------------------------------------
    def expose_text(self) -> str:
        self.sync()
        return self.registry.expose_text()

    def snapshot(self) -> Dict[str, Any]:
        self.sync()
        return {
            "registry": self.registry.snapshot(),
            "traces": self.tracer.snapshot(),
        }


class ServingMetrics:
    """Pre-resolved serving-path metric children for one shard label.

    Resolving ``labels(...)`` once at construction keeps the hot path to
    attribute loads plus float adds -- no dict lookups per batch.
    """

    __slots__ = (
        "decisions",
        "batches",
        "non_default",
        "refreshes",
        "shed",
        "wall_seconds",
        "batch_seconds",
        "cache_rebuilds",
    )

    def __init__(self, telemetry: Telemetry, shard: str) -> None:
        reg = telemetry.registry
        bounds = telemetry.config.latency_buckets
        self.decisions = reg.counter(
            DECISIONS_TOTAL, "Hint decisions served.", labels=("shard",)
        ).labels(shard)
        self.batches = reg.counter(
            BATCHES_TOTAL, "Batches served.", labels=("shard",)
        ).labels(shard)
        self.non_default = reg.counter(
            NON_DEFAULT_TOTAL,
            "Decisions that deviated from the default hint.",
            labels=("shard",),
        ).labels(shard)
        self.refreshes = reg.counter(
            REFRESHES_TOTAL, "Cache snapshot refreshes.", labels=("shard",)
        ).labels(shard)
        self.shed = reg.counter(
            SHED_TOTAL, "Requests shed by admission control.", labels=("shard",)
        ).labels(shard)
        self.wall_seconds = reg.counter(
            WALL_SECONDS_TOTAL,
            "Total serve_batch wall time (decision work only).",
            labels=("shard",),
        ).labels(shard)
        self.batch_seconds = reg.histogram(
            BATCH_SECONDS,
            "Amortised per-decision serve latency, weighted by batch size.",
            labels=("shard",),
            bounds=bounds,
        ).labels(shard)
        self.cache_rebuilds = reg.counter(
            CACHE_REBUILDS_TOTAL,
            "Batch-cache snapshot rebuilds (version invalidations).",
            labels=("shard",),
        ).labels(shard)


class JournalMetrics:
    """Pre-resolved durability metric children for one shard label."""

    __slots__ = ("wal_records", "wal_bytes", "checkpoints")

    def __init__(self, telemetry: Telemetry, shard: str) -> None:
        reg = telemetry.registry
        self.wal_records = reg.counter(
            WAL_RECORDS_TOTAL, "WAL records appended.", labels=("shard",)
        ).labels(shard)
        self.wal_bytes = reg.counter(
            WAL_BYTES_TOTAL, "WAL bytes appended.", labels=("shard",)
        ).labels(shard)
        self.checkpoints = reg.counter(
            CHECKPOINTS_TOTAL, "Checkpoints taken.", labels=("shard",)
        ).labels(shard)


class ClusterMetrics:
    """Pre-resolved cluster-facade counters and topology gauges.

    Counters are incremented at their event sites (route, degrade, crash,
    restart, rebalance); the topology and scheduler *gauges* are refreshed
    by :meth:`ServingCluster.stats` -- cold-path, always-current at report
    time.
    """

    __slots__ = (
        "routed_batches",
        "fan_out",
        "degraded",
        "shed",
        "rebalanced_rows",
        "crashes",
        "restarts",
        "queued_feedback",
        "replayed_feedback",
        "shards",
        "shards_up",
        "tenants",
        "total_rows",
        "scheduler_ticks",
        "scheduler_refreshes",
        "scheduler_budget",
    )

    def __init__(self, telemetry: Telemetry) -> None:
        reg = telemetry.registry
        self.routed_batches = reg.counter(
            ROUTED_BATCHES_TOTAL, "Batches routed through the cluster."
        ).child
        self.fan_out = reg.counter(
            FAN_OUT_TOTAL, "Per-shard sub-batches produced by routing."
        ).child
        self.degraded = reg.counter(
            DEGRADED_TOTAL, "Arrivals answered by failover default plans."
        ).child
        self.shed = reg.counter(
            CLUSTER_SHED_TOTAL, "Arrivals shed before reaching any shard."
        ).child
        self.rebalanced_rows = reg.counter(
            REBALANCED_ROWS_TOTAL, "Rows migrated by topology changes."
        ).child
        self.crashes = reg.counter(
            CRASHES_TOTAL, "Shard processes lost (kill or injected fault)."
        ).child
        self.restarts = reg.counter(
            RESTARTS_TOTAL, "Shards recovered from their journals."
        ).child
        self.queued_feedback = reg.counter(
            QUEUED_FEEDBACK_TOTAL, "Observations queued during shard outages."
        ).child
        self.replayed_feedback = reg.counter(
            REPLAYED_FEEDBACK_TOTAL, "Queued observations applied by restarts."
        ).child
        self.shards = reg.gauge(SHARDS_GAUGE, "Current shard count.").child
        self.shards_up = reg.gauge(
            SHARDS_UP_GAUGE, "Shards currently serving verified plans."
        ).child
        self.tenants = reg.gauge(TENANTS_GAUGE, "Registered tenants.").child
        self.total_rows = reg.gauge(
            ROWS_GAUGE, "Rows across all shards."
        ).child
        self.scheduler_ticks = reg.gauge(
            SCHEDULER_TICKS_GAUGE, "Background refresh-scheduler ticks."
        ).child
        self.scheduler_refreshes = reg.gauge(
            SCHEDULER_REFRESHES_GAUGE, "Warm ALS refreshes the scheduler ran."
        ).child
        self.scheduler_budget = reg.gauge(
            SCHEDULER_BUDGET_GAUGE, "Dirty shards refreshed per tick."
        ).child
