"""`TelemetrySnapshot`: one exportable view of a running system.

:func:`collect_snapshot` pools whatever parts of the stack the caller
hands it -- registry state, :class:`~repro.serving.stats.ServingStats`
or :class:`~repro.cluster.stats.ClusterStats`, drift-detector signal
counts, refresh-scheduler budgets, WAL segment/LSN/checkpoint state,
and circuit-breaker health -- into a single JSON-ready dict.  It is the
"health endpoint" of the library: examples print it, the chaos and load
benchmarks dump it as ``TELEMETRY_*.json`` CI artifacts
(:func:`write_telemetry_json`).

Collection is cold-path only (deep-copies and dict building); never
call it per batch.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from .runtime import Telemetry

SNAPSHOT_SCHEMA_VERSION = 1


class TelemetrySnapshot:
    """An immutable-ish wrapper around one collected snapshot dict."""

    __slots__ = ("payload",)

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.payload = payload

    def as_dict(self) -> Dict[str, Any]:
        return self.payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.payload, indent=indent, sort_keys=True)

    def section(self, name: str) -> Any:
        """One top-level section (``metrics``, ``serving``, ``wal``, ...)."""
        return self.payload.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = ", ".join(sorted(self.payload))
        return f"TelemetrySnapshot({keys})"


def collect_snapshot(
    telemetry: Optional[Telemetry] = None,
    service: Any = None,
    cluster: Any = None,
    ingress: Any = None,
    controller: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> TelemetrySnapshot:
    """Pool the observable state of whatever components are provided.

    Every argument is optional and duck-typed: pass a
    :class:`~repro.serving.service.ServingService`, a
    :class:`~repro.cluster.cluster.ServingCluster`, an ingress, an
    adaptation controller, or any subset.  Sections for absent
    components are simply omitted.
    """
    payload: Dict[str, Any] = {"schema_version": SNAPSHOT_SCHEMA_VERSION}

    if telemetry is not None:
        telemetry.sync()  # flush lazily mirrored counters before export
        payload["enabled"] = bool(telemetry.config.enabled)
        payload["metrics"] = telemetry.registry.snapshot()
        payload["traces"] = telemetry.tracer.snapshot()

    if service is not None:
        payload["serving"] = service.stats().as_dict()
        journal = getattr(service, "journal", None)
        if journal is not None:
            payload["wal"] = {"service": _journal_section(journal)}

    if cluster is not None:
        payload["cluster"] = cluster.stats().as_dict()
        payload["health"] = _health_section(cluster.health)
        payload["scheduler"] = _scheduler_section(cluster.scheduler)
        wal = _cluster_wal_section(cluster)
        if wal:
            payload["wal"] = wal

    if ingress is not None:
        payload["ingress"] = ingress.stats().as_dict()

    if controller is not None:
        payload["adaptive"] = controller.report().as_dict()
        detector = getattr(controller, "detector", None)
        if detector is not None:
            payload["drift"] = _drift_section(detector)

    if extra:
        payload["extra"] = dict(extra)
    return TelemetrySnapshot(payload)


def write_telemetry_json(name: str, snapshot: TelemetrySnapshot) -> str:
    """Write ``TELEMETRY_<name>.json`` for CI artifact upload.

    Mirrors ``benchmarks/_bench_utils.write_bench_json``: the file lands
    in ``BENCH_OUTPUT_DIR`` when set, else the current directory, and
    the path is returned.
    """
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"TELEMETRY_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshot.to_json())
        fh.write("\n")
    return path


# -- section builders -------------------------------------------------------

def _journal_section(journal: Any) -> Dict[str, Any]:
    wal = getattr(journal, "wal", None)
    return {
        "next_lsn": int(journal.next_lsn),
        "appended_records": int(journal.appended_records),
        "appended_bytes": int(journal.appended_bytes),
        "on_disk_bytes": int(journal.on_disk_bytes()),
        "segment_count": int(wal.segment_count) if wal is not None else 0,
        "checkpoints": int(getattr(journal, "checkpoints", 0)),
    }


def _cluster_wal_section(cluster: Any) -> Dict[str, Any]:
    shards = getattr(cluster, "shards", {})
    out: Dict[str, Any] = {}
    for shard_id, shard in shards.items():
        journal = getattr(shard, "journal", None)
        if journal is not None:
            out[str(shard_id)] = _journal_section(journal)
    return out


def _health_section(health: Any) -> Dict[str, Any]:
    up = health.up_shards()
    down = health.down_shards()
    return {
        "up_shards": sorted(int(s) for s in up),
        "down_shards": sorted(int(s) for s in down),
        "n_up": len(up),
        "n_down": len(down),
        "failure_threshold": int(health.failure_threshold),
    }


def _scheduler_section(scheduler: Any) -> Dict[str, Any]:
    return {
        "budget_per_tick": int(scheduler.budget_per_tick),
        "ticks": int(scheduler.ticks),
        "refreshes": int(scheduler.refreshes),
        "skipped_down": int(scheduler.skipped_down),
        "escalations": int(scheduler.escalations),
    }


def _drift_section(detector: Any) -> Dict[str, Any]:
    statuses = detector.statuses()
    return {
        "keys": len(statuses),
        "drift_triggered": sum(1 for s in statuses if s.drift_triggered),
        "unseen_triggered": sum(1 for s in statuses if s.unseen_triggered),
        "signals": [
            {
                "key": s.key,
                "samples": int(s.samples),
                "drift_score": float(s.drift_score),
                "unseen_rate": float(s.unseen_rate),
                "new_row_fraction": float(s.new_row_fraction),
                "drift_triggered": bool(s.drift_triggered),
                "unseen_triggered": bool(s.unseen_triggered),
            }
            for s in statuses
        ],
    }
