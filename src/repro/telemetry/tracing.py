"""Explicit-clock request tracing with per-stage histograms.

A :class:`Trace` is one request's journey through the stack
(``ingress.flush -> router.split -> shard.serve -> cache.lookup ->
observe / wal.append``).  Stages are timed by the *caller* with one
``perf_counter`` pair each -- the tracer never reads a clock itself, so
tracing adds no wall-clock calls beyond what the instrumented component
already pays.

The tracer keeps a **current-trace slot** instead of threading trace
objects through every signature.  The serving stack runs one request at
a time per event-loop frame (ingress drains coalesced batches
sequentially; the cluster fans out synchronously), so a plain attribute
is race-free here -- no contextvars, no locks.

Finished traces whose total duration is at least ``slow_trace_seconds``
enter a bounded ring buffer; when full, the oldest trace is evicted.
With the threshold at 0.0 every trace is admitted, which the demo and
tests use to inspect recent activity.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .registry import MetricsRegistry

#: Canonical stage names, in pipeline order.  Components are free to add
#: more, but these are the ones the docs and dashboards key on.
STAGES = (
    "ingress.flush",
    "router.split",
    "shard.serve",
    "cache.lookup",
    "observe",
    "wal.append",
)


class Trace:
    """One request's recorded stages: ``(stage, seconds)`` in call order."""

    __slots__ = ("name", "stages", "batch_size")

    def __init__(self, name: str, batch_size: int = 0) -> None:
        self.name = name
        self.batch_size = int(batch_size)
        self.stages: List[Tuple[str, float]] = []

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stages.append((stage, float(seconds)))

    @property
    def total_seconds(self) -> float:
        """Sum of top-level stage durations.

        Nested stages (``cache.lookup`` inside ``shard.serve``) would be
        double-counted by a plain sum, so the total is taken from the
        single largest recorded stage when one stage dominates; in this
        stack the root stage (``ingress.flush`` or ``shard.serve``)
        always encloses the others, making max() the enclosing duration.
        """
        return max((s for _, s in self.stages), default=0.0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "batch_size": self.batch_size,
            "total_seconds": self.total_seconds,
            "stages": [
                {"stage": stage, "seconds": seconds}
                for stage, seconds in self.stages
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{s}={t:.2e}" for s, t in self.stages)
        return f"Trace({self.name!r}, {inner})"


class Tracer:
    """Builds traces, feeds stage histograms, keeps a slow-trace ring.

    ``start(...)`` opens a trace and makes it current; ``record_stage``
    attributes a caller-measured duration to the current trace (or to
    the histograms only, when no trace is open -- e.g. a direct
    ``serve_batch`` call outside ingress); ``finish()`` closes the
    current trace and admits it to the ring when slow enough.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slow_trace_seconds: float = 0.0,
        ring_size: int = 64,
    ) -> None:
        if ring_size < 1:
            ring_size = 1
        self._stage_seconds = registry.histogram(
            "repro_stage_seconds",
            "Per-stage request latency across the serving pipeline.",
            labels=("stage",),
        )
        # Per-stage children resolved once: record_stage runs on the serve
        # hot path, and labels() pays a tuple-of-str build per call.
        self._stage_children: Dict[str, Any] = {}
        self.slow_trace_seconds = float(slow_trace_seconds)
        self._ring: Deque[Trace] = deque(maxlen=int(ring_size))
        self._current: Optional[Trace] = None
        self.dropped_traces = 0
        self.finished_traces = 0

    # -- trace lifecycle ----------------------------------------------------
    def start(self, name: str, batch_size: int = 0) -> Trace:
        """Open a new trace and make it the current one."""
        trace = Trace(name, batch_size=batch_size)
        self._current = trace
        return trace

    @property
    def current(self) -> Optional[Trace]:
        return self._current

    def record_stage(
        self, stage: str, seconds: float, weight: int = 1
    ) -> None:
        """Attribute a caller-measured duration to ``stage``.

        Feeds the per-stage histogram always; appends to the current
        trace when one is open.  ``weight`` charges the histogram with
        that many occurrences (batch-amortised observes).
        """
        child = self._stage_children.get(stage)
        if child is None:
            child = self._stage_seconds.labels(stage)
            self._stage_children[stage] = child
        child.observe(seconds, weight)
        if self._current is not None:
            self._current.add_stage(stage, seconds)

    def finish(self) -> Optional[Trace]:
        """Close the current trace; ring-admit it when slow enough."""
        trace = self._current
        if trace is None:
            return None
        self._current = None
        self.finished_traces += 1
        if trace.total_seconds >= self.slow_trace_seconds:
            if len(self._ring) == self._ring.maxlen:
                self.dropped_traces += 1
            self._ring.append(trace)
        return trace

    def abandon(self) -> None:
        """Drop the current trace without recording it (error paths)."""
        self._current = None

    # -- inspection ---------------------------------------------------------
    def slow_traces(self) -> List[Trace]:
        """Ring contents, oldest first."""
        return list(self._ring)

    def slowest(self, n: int = 5) -> List[Trace]:
        """The ``n`` slowest retained traces, slowest first."""
        return sorted(
            self._ring, key=lambda t: t.total_seconds, reverse=True
        )[: max(0, int(n))]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "finished_traces": self.finished_traces,
            "dropped_traces": self.dropped_traces,
            "slow_trace_seconds": self.slow_trace_seconds,
            "ring": [t.as_dict() for t in self._ring],
        }
