"""Workload construction: paper benchmarks, synthetic matrices, shifts.

Two paths produce workloads:

* :mod:`repro.workloads.generator` runs the full DB substrate (catalog →
  queries → planner → latency model) and is used for JOB-sized workloads
  and the end-to-end examples;
* :mod:`repro.workloads.matrices` generates calibrated low-rank latency
  matrices directly from the specs in :mod:`repro.workloads.spec`, which is
  how the large CEB / Stack / DSB matrices are reproduced quickly for the
  benchmark harness.

:mod:`repro.workloads.shift` implements the paper's workload-shift,
data-shift and ETL-query experiments.
"""

from .generator import DatabaseWorkload, build_database_workload
from .loader import load_workload, save_workload
from .matrices import SyntheticWorkload, generate_workload
from .shift import (
    DataDriftModel,
    add_etl_query,
    apply_data_shift,
    etl_latency_rows,
    shift_latencies,
    split_for_workload_shift,
)
from .spec import (
    CEB_SPEC,
    DSB_SPEC,
    JOB_SPEC,
    STACK_SPEC,
    STACK_2017_SPEC,
    WorkloadSpec,
    get_spec,
)

__all__ = [
    "DatabaseWorkload",
    "build_database_workload",
    "load_workload",
    "save_workload",
    "SyntheticWorkload",
    "generate_workload",
    "DataDriftModel",
    "add_etl_query",
    "apply_data_shift",
    "etl_latency_rows",
    "shift_latencies",
    "split_for_workload_shift",
    "CEB_SPEC",
    "DSB_SPEC",
    "JOB_SPEC",
    "STACK_SPEC",
    "STACK_2017_SPEC",
    "WorkloadSpec",
    "get_spec",
]
