"""End-to-end workload construction on the DB substrate.

This is the "real deployment" path: build a catalog, sample join queries,
plan each query under each of the 49 hint sets with the simulated
optimizer, and measure latencies with the simulated execution engine.  It
is used for JOB-sized workloads, the examples, and integration tests; the
large benchmark matrices use :mod:`repro.workloads.matrices` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..db.cardinality import CardinalityEstimator
from ..db.catalog import Catalog
from ..db.cost_model import CostModel, LatencyModel, MachineProfile
from ..db.datagen import make_catalog
from ..db.executor import HintedExecutor, SimulatedExecutor
from ..db.hints import HintSet, all_hint_sets
from ..db.optimizer import PlanEnumerator
from ..db.query import Query, QueryGenerator
from ..errors import WorkloadError
from ..plans.featurize import PlanFeatureStore, PlanFeaturizer


@dataclass
class DatabaseWorkload:
    """A workload backed by the simulated DBMS."""

    catalog: Catalog
    queries: List[Query]
    hint_sets: List[HintSet]
    enumerator: PlanEnumerator
    executor: HintedExecutor
    true_latencies: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries."""
        return len(self.queries)

    @property
    def n_hints(self) -> int:
        """Number of hint sets."""
        return len(self.hint_sets)

    @property
    def default_total(self) -> float:
        """Total latency under the default hint (column 0)."""
        return float(self.true_latencies[:, 0].sum())

    @property
    def optimal_total(self) -> float:
        """Total latency under the per-query best hint."""
        return float(self.true_latencies.min(axis=1).sum())

    @property
    def headroom(self) -> float:
        """Default / Optimal ratio."""
        return self.default_total / self.optimal_total

    def optimizer_cost_matrix(self) -> np.ndarray:
        """Estimated plan cost per (query, hint) cell -- used by QO-Advisor."""
        costs = np.zeros((self.n_queries, self.n_hints))
        for i, query in enumerate(self.queries):
            for j, hint in enumerate(self.hint_sets):
                plan = self.enumerator.optimize(query, hint)
                costs[i, j] = sum(node.estimated_cost for node in plan.iter_nodes())
        return costs

    def feature_store(self) -> PlanFeatureStore:
        """Real plan features for the neural method."""
        return PlanFeatureStore(
            PlanFeaturizer(self.enumerator), self.queries, self.hint_sets
        )


def build_database_workload(
    template_name: str = "toy",
    n_queries: int = 30,
    n_hints: Optional[int] = None,
    seed: int = 0,
    min_relations: int = 2,
    max_relations: int = 6,
    noise_sigma: float = 0.05,
    hint_sets: Optional[Sequence[HintSet]] = None,
) -> DatabaseWorkload:
    """Build a workload end-to-end on the DB substrate.

    Parameters
    ----------
    template_name:
        Schema template (``toy``, ``imdb``, ``stack``, ``dsb``).
    n_queries:
        How many queries to sample.
    n_hints:
        Optionally use only the first ``n_hints`` hint sets (keeps small
        integration tests fast); defaults to all 49.
    """
    if n_queries < 1:
        raise WorkloadError("n_queries must be >= 1")
    catalog = make_catalog(template_name, seed=seed)
    estimator = CardinalityEstimator(catalog, seed=seed)
    cost_model = CostModel(catalog)
    enumerator = PlanEnumerator(catalog, estimator, cost_model)
    latency_model = LatencyModel(
        cost_model, MachineProfile(noise_sigma=noise_sigma), seed=seed
    )
    executor = HintedExecutor(enumerator, SimulatedExecutor(latency_model))

    generator = QueryGenerator(
        catalog, seed=seed, min_relations=min_relations, max_relations=max_relations
    )
    queries = generator.generate_many(n_queries)

    if hint_sets is None:
        hint_sets = all_hint_sets()
        if n_hints is not None:
            hint_sets = hint_sets[:n_hints]
    hint_sets = list(hint_sets)
    if len(hint_sets) < 2:
        raise WorkloadError("need at least two hint sets")

    latencies = np.zeros((len(queries), len(hint_sets)))
    for i, query in enumerate(queries):
        for j, hint in enumerate(hint_sets):
            result = executor.execute_with_hint(query, hint, timeout=None)
            latencies[i, j] = result.latency

    return DatabaseWorkload(
        catalog=catalog,
        queries=queries,
        hint_sets=hint_sets,
        enumerator=enumerator,
        executor=executor,
        true_latencies=latencies,
    )
