"""Persistence for synthetic workloads (``.npz`` files)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import WorkloadError
from .matrices import SyntheticWorkload
from .spec import WorkloadSpec


def save_workload(workload: SyntheticWorkload, path) -> None:
    """Persist a synthetic workload to ``path`` (``.npz``)."""
    path = Path(path)
    spec = workload.spec
    spec_json = json.dumps(
        {
            "name": spec.name,
            "n_queries": spec.n_queries,
            "default_total": spec.default_total,
            "optimal_total": spec.optimal_total,
            "n_hints": spec.n_hints,
            "dataset": spec.dataset,
            "dataset_size_gb": spec.dataset_size_gb,
            "schema_template": spec.schema_template,
            "rank": spec.rank,
        }
    )
    np.savez_compressed(
        path,
        true_latencies=workload.true_latencies,
        query_factors=workload.query_factors,
        hint_factors=workload.hint_factors,
        optimizer_costs=workload.optimizer_costs,
        seed=np.array([workload.seed]),
        spec=np.array([spec_json], dtype=object),
    )


def load_workload(path) -> SyntheticWorkload:
    """Load a synthetic workload saved by :func:`save_workload`."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"workload file {path} does not exist")
    with np.load(path, allow_pickle=True) as data:
        spec_payload = json.loads(str(data["spec"][0]))
        spec = WorkloadSpec(**spec_payload)
        return SyntheticWorkload(
            spec=spec,
            true_latencies=np.asarray(data["true_latencies"], dtype=float),
            query_factors=np.asarray(data["query_factors"], dtype=float),
            hint_factors=np.asarray(data["hint_factors"], dtype=float),
            optimizer_costs=np.asarray(data["optimizer_costs"], dtype=float),
            seed=int(data["seed"][0]),
        )
