"""Calibrated synthetic workload matrices.

The paper's large workloads (CEB: 3133 x 49, Stack: 6191 x 49) cannot be
re-measured here, so this module generates latency matrices with the same
three properties the paper's methods rely on:

1. **low rank** -- latencies are products of non-negative latent query and
   hint factors plus noise (Figure 14's spectrum),
2. **heavy tails** -- per-query scales are log-normal, so a few queries
   dominate the workload, and
3. **calibrated headroom** -- the default column sums to the paper's
   "Default" total and the row minima sum to the paper's "Optimal" total
   (Table 1), matched by a per-row power transform found by bisection.

A fraction of queries is "incompressible" (ETL-like): the default hint is
already optimal for them, which is what defeats the Greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import WorkloadError
from ..plans.featurize import SyntheticPlanFeatureStore
from .spec import WorkloadSpec


@dataclass
class SyntheticWorkload:
    """A fully known workload: ground-truth latencies plus metadata."""

    spec: WorkloadSpec
    true_latencies: np.ndarray
    query_factors: np.ndarray
    hint_factors: np.ndarray
    optimizer_costs: np.ndarray
    seed: int = 0

    def __post_init__(self) -> None:
        if self.true_latencies.shape != (self.spec.n_queries, self.spec.n_hints):
            raise WorkloadError(
                f"latency matrix shape {self.true_latencies.shape} does not match "
                f"spec {self.spec.name!r}"
            )

    # -- reference quantities -------------------------------------------------
    @property
    def n_queries(self) -> int:
        """Number of rows."""
        return self.true_latencies.shape[0]

    @property
    def n_hints(self) -> int:
        """Number of columns."""
        return self.true_latencies.shape[1]

    @property
    def default_total(self) -> float:
        """Total latency under the default hint (column 0)."""
        return float(self.true_latencies[:, 0].sum())

    @property
    def optimal_total(self) -> float:
        """Total latency under the per-query optimal hint."""
        return float(self.true_latencies.min(axis=1).sum())

    @property
    def headroom(self) -> float:
        """Default / Optimal."""
        return self.default_total / self.optimal_total

    def exhaustive_exploration_time(self) -> float:
        """Time to execute every (query, hint) cell once."""
        return float(self.true_latencies.sum())

    def optimal_hints(self) -> np.ndarray:
        """Per-query argmin over hints."""
        return self.true_latencies.argmin(axis=1)

    # -- derived artefacts -----------------------------------------------------
    def feature_store(self, noise: float = 0.05) -> SyntheticPlanFeatureStore:
        """Pseudo plan features for the neural method (LimeQO+)."""
        return SyntheticPlanFeatureStore(
            self.query_factors, self.hint_factors, noise=noise, seed=self.seed
        )

    def subset(self, query_indices) -> "SyntheticWorkload":
        """A workload restricted to the given query rows (workload shift)."""
        query_indices = np.asarray(query_indices, dtype=int)
        spec = WorkloadSpec(
            name=f"{self.spec.name}-subset",
            n_queries=len(query_indices),
            default_total=float(self.true_latencies[query_indices, 0].sum()),
            optimal_total=float(self.true_latencies[query_indices].min(axis=1).sum()),
            n_hints=self.spec.n_hints,
            dataset=self.spec.dataset,
            schema_template=self.spec.schema_template,
            rank=self.spec.rank,
        )
        return SyntheticWorkload(
            spec=spec,
            true_latencies=self.true_latencies[query_indices].copy(),
            query_factors=self.query_factors[query_indices].copy(),
            hint_factors=self.hint_factors.copy(),
            optimizer_costs=self.optimizer_costs[query_indices].copy(),
            seed=self.seed,
        )


def _calibrate_headroom(matrix: np.ndarray, target_optimal: float) -> np.ndarray:
    """Power-transform non-default columns so row minima sum to the target.

    The transform ``w_ij -> d_i * (w_ij / d_i) ** gamma`` keeps the default
    column fixed (ratio 1), is monotone in each entry, and shrinks or grows
    each row's improvement potential as ``gamma`` moves away from 1.  We
    bisect on ``gamma``.
    """
    default = matrix[:, 0:1]
    ratios = matrix / default

    def optimal_total(gamma: float) -> float:
        transformed = default * np.power(ratios, gamma)
        return float(transformed.min(axis=1).sum())

    low, high = 0.02, 8.0
    # Optimal total decreases as gamma grows (ratios < 1 shrink further).
    for _ in range(80):
        mid = 0.5 * (low + high)
        if optimal_total(mid) > target_optimal:
            low = mid
        else:
            high = mid
    gamma = 0.5 * (low + high)
    return default * np.power(ratios, gamma)


def generate_workload(
    spec: WorkloadSpec,
    seed: int = 0,
    noise_sigma: float = 0.08,
    incompressible_fraction: float = 0.12,
    rank: Optional[int] = None,
) -> SyntheticWorkload:
    """Generate a calibrated synthetic workload for ``spec``.

    Parameters
    ----------
    spec:
        Target shape and Default/Optimal totals.
    seed:
        Reproducibility seed.
    noise_sigma:
        Multiplicative log-normal noise applied on top of the low-rank
        structure (keeps the matrix *approximately* low rank, as observed).
    incompressible_fraction:
        Fraction of queries for which the default hint is already optimal
        (ETL-style / write-bound queries).
    rank:
        Latent rank; defaults to ``spec.rank``.
    """
    if not 0.0 <= incompressible_fraction < 1.0:
        raise WorkloadError("incompressible_fraction must be in [0, 1)")
    rank = rank or spec.rank
    rng = np.random.default_rng(seed)
    n, k = spec.n_queries, spec.n_hints

    # Queries belong to latent "types" (join-template families in CEB/Stack
    # terms): each query loads mostly one latent dimension, scaled by a
    # log-normal per-query weight that produces the heavy-tailed totals.
    query_scale = rng.lognormal(mean=0.0, sigma=1.0, size=(n, 1))
    cluster = rng.integers(0, rank, size=n)
    membership = np.full((n, rank), 0.0)
    membership[np.arange(n), cluster] = 1.0
    mixing = 0.15
    membership = (1.0 - mixing) * membership + mixing * rng.dirichlet(
        alpha=[0.4] * rank, size=n
    )
    query_factors = membership * query_scale

    # Hints have a per-type cost.  A few hints are distinctly good for each
    # query type (e.g. "disable nested loops" rescues one family of joins),
    # which is the inter-query structure matrix completion exploits.
    hint_factors = rng.lognormal(mean=0.0, sigma=0.45, size=(k, rank))
    for latent_dim in range(rank):
        good_columns = rng.choice(np.arange(1, k), size=3, replace=False)
        hint_factors[good_columns, latent_dim] *= rng.uniform(0.25, 0.5, size=3)
    # The default hint (column 0) is a reasonable all-rounder, but clearly
    # worse than each type's specialised hints, so most rows have headroom.
    hint_factors[0] = np.quantile(hint_factors[1:], 0.55, axis=0) * rng.uniform(
        1.1, 1.5, size=rank
    )

    base = query_factors @ hint_factors.T
    noise = rng.lognormal(mean=0.0, sigma=noise_sigma, size=base.shape)
    matrix = base * noise + 1e-3

    # Incompressible queries: force the default column to be their minimum.
    n_incompressible = int(round(incompressible_fraction * n))
    if n_incompressible:
        rows = rng.choice(n, size=n_incompressible, replace=False)
        row_min = matrix[rows].min(axis=1)
        matrix[rows, 0] = row_min * rng.uniform(0.95, 1.0, size=n_incompressible)

    # Scale so the default column matches the paper's Default total.
    scale = spec.default_total / matrix[:, 0].sum()
    matrix *= scale

    # Match the Optimal total with a per-row power transform.
    matrix = _calibrate_headroom(matrix, spec.optimal_total)
    matrix = np.clip(matrix, 1e-4, None)

    # Optimizer cost estimates: correlated with latency but noisy -- the
    # QO-Advisor baseline ranks unexplored cells by these.
    cost_noise = rng.lognormal(mean=0.0, sigma=0.8, size=matrix.shape)
    optimizer_costs = (matrix ** 0.8) * cost_noise * 1e4

    return SyntheticWorkload(
        spec=spec,
        true_latencies=matrix,
        query_factors=query_factors * np.sqrt(scale),
        hint_factors=hint_factors * np.sqrt(scale),
        optimizer_costs=optimizer_costs,
        seed=seed,
    )
