"""Workload shift, data shift, and the ETL-query experiment.

Implements the three robustness experiments of Sections 5.1, 5.3 and 5.4:

* :func:`add_etl_query` -- appends a long, write-bound query whose latency
  is essentially identical across hints (Figure 8),
* :func:`split_for_workload_shift` -- a 70/30 split of the workload with
  the remaining 30% arriving later (Figure 9),
* :class:`DataDriftModel` / :func:`apply_data_shift` -- how many queries
  change their optimal hint as the data ages, and a shifted copy of the
  workload (Figures 10 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from .matrices import SyntheticWorkload
from .spec import WorkloadSpec


def add_etl_query(
    workload: SyntheticWorkload,
    latency: float = 576.5,
    jitter: float = 0.01,
    seed: int = 0,
) -> SyntheticWorkload:
    """Append an ETL-style query that no hint can speed up (Section 5.1).

    The paper adds a 576.5 s COPY-style query to the Stack workload; Greedy
    keeps re-exploring it because it is the longest-running query, while
    LimeQO's predictive model learns its row has no headroom.
    """
    if latency <= 0:
        raise WorkloadError("ETL latency must be > 0")
    rng = np.random.default_rng(seed)
    row = latency * (1.0 + rng.uniform(-jitter, jitter, size=workload.n_hints))
    # The default plan is (marginally) the fastest: hints cannot help.
    row[0] = latency * (1.0 - jitter)
    new_latencies = np.vstack([workload.true_latencies, row[None, :]])

    etl_factor = np.full((1, workload.query_factors.shape[1]),
                         np.sqrt(latency / workload.query_factors.shape[1]))
    new_query_factors = np.vstack([workload.query_factors, etl_factor])
    new_costs = np.vstack(
        [workload.optimizer_costs, (row ** 0.8)[None, :] * 1e4]
    )

    spec = replace(
        workload.spec,
        name=f"{workload.spec.name}+etl",
        n_queries=workload.n_queries + 1,
        default_total=float(new_latencies[:, 0].sum()),
        optimal_total=float(new_latencies.min(axis=1).sum()),
    )
    return SyntheticWorkload(
        spec=spec,
        true_latencies=new_latencies,
        query_factors=new_query_factors,
        hint_factors=workload.hint_factors.copy(),
        optimizer_costs=new_costs,
        seed=workload.seed,
    )


def split_for_workload_shift(
    workload: SyntheticWorkload,
    initial_fraction: float = 0.7,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Randomly split query indices into (initial, late-arriving) groups."""
    if not 0.0 < initial_fraction < 1.0:
        raise WorkloadError("initial_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(workload.n_queries)
    cut = int(round(initial_fraction * workload.n_queries))
    if cut == 0 or cut == workload.n_queries:
        raise WorkloadError("split produced an empty group; adjust initial_fraction")
    return np.sort(order[:cut]), np.sort(order[cut:])


@dataclass(frozen=True)
class DataDriftModel:
    """Fraction of queries whose optimal hint changes after a data update.

    Calibrated to Figure 10: negligible change after a day, roughly 1% after
    a month, 5% after six months, 10% after a year, 21% after two years.
    """

    table: Dict[str, float] = None

    def __post_init__(self) -> None:
        if self.table is None:
            object.__setattr__(
                self,
                "table",
                {
                    "1 day": 0.001,
                    "1 week": 0.004,
                    "2 weeks": 0.007,
                    "1 month": 0.01,
                    "3 months": 0.03,
                    "6 months": 0.05,
                    "1 year": 0.10,
                    "2 years": 0.21,
                },
            )

    def intervals(self):
        """Interval labels in increasing order of duration."""
        return list(self.table.keys())

    def drift_fraction(self, interval: str) -> float:
        """Fraction of queries with a changed optimal hint after ``interval``."""
        try:
            return self.table[interval]
        except KeyError:
            raise WorkloadError(
                f"unknown interval {interval!r}; expected one of {list(self.table)}"
            ) from None


def apply_data_shift(
    workload: SyntheticWorkload,
    changed_fraction: float = 0.21,
    growth_factor: float = 1.26,
    seed: int = 0,
    spec_name: Optional[str] = None,
) -> SyntheticWorkload:
    """Produce a data-shifted copy of the workload (Section 5.4).

    Parameters
    ----------
    changed_fraction:
        Fraction of queries whose *optimal hint* changes (21% for the
        two-year Stack shift).
    growth_factor:
        Overall latency growth as the data grows (Stack's default total grew
        from 1.16 h to 1.46 h, a factor of ~1.26).
    """
    if not 0.0 <= changed_fraction <= 1.0:
        raise WorkloadError("changed_fraction must be in [0, 1]")
    if growth_factor <= 0:
        raise WorkloadError("growth_factor must be > 0")
    rng = np.random.default_rng(seed)
    new_latencies = workload.true_latencies * growth_factor

    n_changed = int(round(changed_fraction * workload.n_queries))
    if n_changed:
        rows = rng.choice(workload.n_queries, size=n_changed, replace=False)
        old_best = new_latencies[rows].argmin(axis=1)
        for row, best in zip(rows, old_best):
            # Slow the previously optimal hint down and speed another hint
            # up, so the argmin provably moves.
            candidates = [j for j in range(workload.n_hints) if j != best]
            new_best = int(rng.choice(candidates))
            new_latencies[row, best] *= float(rng.uniform(1.5, 3.0))
            target = new_latencies[row].min() * float(rng.uniform(0.6, 0.9))
            new_latencies[row, new_best] = max(target, 1e-4)

    spec = WorkloadSpec(
        name=spec_name or f"{workload.spec.name}-shifted",
        n_queries=workload.n_queries,
        default_total=float(new_latencies[:, 0].sum()),
        optimal_total=float(new_latencies.min(axis=1).sum()),
        n_hints=workload.spec.n_hints,
        dataset=workload.spec.dataset,
        schema_template=workload.spec.schema_template,
        rank=workload.spec.rank,
    )
    return SyntheticWorkload(
        spec=spec,
        true_latencies=new_latencies,
        query_factors=workload.query_factors * np.sqrt(growth_factor),
        hint_factors=workload.hint_factors * np.sqrt(growth_factor),
        optimizer_costs=workload.optimizer_costs * growth_factor,
        seed=seed,
    )


def changed_optimal_fraction(
    before: SyntheticWorkload, after: SyntheticWorkload
) -> float:
    """Fraction of queries whose optimal hint differs between two workloads."""
    if before.n_queries != after.n_queries:
        raise WorkloadError("workloads must have the same number of queries")
    return float(np.mean(before.optimal_hints() != after.optimal_hints()))
