"""Workload shift, data shift, and the ETL-query experiment.

Implements the three robustness experiments of Sections 5.1, 5.3 and 5.4:

* :func:`add_etl_query` -- appends a long, write-bound query whose latency
  is essentially identical across hints (Figure 8),
* :func:`split_for_workload_shift` -- a 70/30 split of the workload with
  the remaining 30% arriving later (Figure 9),
* :class:`DataDriftModel` / :func:`apply_data_shift` -- how many queries
  change their optimal hint as the data ages, and a shifted copy of the
  workload (Figures 10 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from .matrices import SyntheticWorkload
from .spec import WorkloadSpec


def etl_latency_rows(
    n_hints: int,
    latency: float,
    jitter: float,
    rng: np.random.Generator,
    count: int = 1,
) -> np.ndarray:
    """``(count, n_hints)`` ETL-style latency rows, built in one pass.

    Every hint lands within ``±jitter`` of ``latency`` and the default
    column is pinned (marginally) fastest, so no hint can help -- the row
    shape that defeats Greedy in Section 5.1.  Shared by
    :func:`add_etl_query` and the scenario engine's ETL-flood primitive.
    """
    if latency <= 0:
        raise WorkloadError("ETL latency must be > 0")
    if not 0.0 <= jitter < 1.0:
        raise WorkloadError(f"ETL jitter must be in [0, 1), got {jitter}")
    if count < 1:
        raise WorkloadError(f"ETL row count must be >= 1, got {count}")
    rows = latency * (1.0 + rng.uniform(-jitter, jitter, size=(count, n_hints)))
    # The default plan is (marginally) the fastest: hints cannot help.
    rows[:, 0] = latency * (1.0 - jitter)
    return rows


def add_etl_query(
    workload: SyntheticWorkload,
    latency: float = 576.5,
    jitter: float = 0.01,
    seed: int = 0,
    count: int = 1,
) -> SyntheticWorkload:
    """Append ``count`` ETL-style queries that no hint can speed up (§5.1).

    The paper adds a 576.5 s COPY-style query to the Stack workload; Greedy
    keeps re-exploring it because it is the longest-running query, while
    LimeQO's predictive model learns its row has no headroom.  ``count > 1``
    appends a whole ETL flood in one vectorised block.
    """
    rng = np.random.default_rng(seed)
    rows = etl_latency_rows(workload.n_hints, latency, jitter, rng, count=count)
    new_latencies = np.vstack([workload.true_latencies, rows])

    etl_factors = np.full(
        (count, workload.query_factors.shape[1]),
        np.sqrt(latency / workload.query_factors.shape[1]),
    )
    new_query_factors = np.vstack([workload.query_factors, etl_factors])
    new_costs = np.vstack([workload.optimizer_costs, (rows ** 0.8) * 1e4])

    spec = replace(
        workload.spec,
        name=f"{workload.spec.name}+etl",
        n_queries=workload.n_queries + count,
        default_total=float(new_latencies[:, 0].sum()),
        optimal_total=float(new_latencies.min(axis=1).sum()),
    )
    return SyntheticWorkload(
        spec=spec,
        true_latencies=new_latencies,
        query_factors=new_query_factors,
        hint_factors=workload.hint_factors.copy(),
        optimizer_costs=new_costs,
        seed=workload.seed,
    )


def split_for_workload_shift(
    workload: SyntheticWorkload,
    initial_fraction: float = 0.7,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Randomly split query indices into (initial, late-arriving) groups."""
    if not np.isfinite(initial_fraction) or not 0.0 < initial_fraction < 1.0:
        raise WorkloadError(
            f"initial_fraction must be a finite value in (0, 1), got "
            f"{initial_fraction}"
        )
    if workload.n_queries < 2:
        raise WorkloadError(
            f"workload shift needs at least 2 queries to split, "
            f"{workload.spec.name!r} has {workload.n_queries}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(workload.n_queries)
    cut = int(round(initial_fraction * workload.n_queries))
    if cut == 0 or cut == workload.n_queries:
        raise WorkloadError(
            f"initial_fraction={initial_fraction} rounds to an empty group "
            f"over {workload.n_queries} queries; use a fraction in "
            f"[{0.5 / workload.n_queries}, {1 - 0.5 / workload.n_queries})"
        )
    return np.sort(order[:cut]), np.sort(order[cut:])


@dataclass(frozen=True)
class DataDriftModel:
    """Fraction of queries whose optimal hint changes after a data update.

    Calibrated to Figure 10: negligible change after a day, roughly 1% after
    a month, 5% after six months, 10% after a year, 21% after two years.
    """

    table: Dict[str, float] = None

    def __post_init__(self) -> None:
        if self.table is None:
            object.__setattr__(
                self,
                "table",
                {
                    "1 day": 0.001,
                    "1 week": 0.004,
                    "2 weeks": 0.007,
                    "1 month": 0.01,
                    "3 months": 0.03,
                    "6 months": 0.05,
                    "1 year": 0.10,
                    "2 years": 0.21,
                },
            )

    def intervals(self):
        """Interval labels in increasing order of duration."""
        return list(self.table.keys())

    def drift_fraction(self, interval: str) -> float:
        """Fraction of queries with a changed optimal hint after ``interval``."""
        try:
            return self.table[interval]
        except KeyError:
            raise WorkloadError(
                f"unknown interval {interval!r}; expected one of {list(self.table)}"
            ) from None


def shift_latencies(
    latencies: np.ndarray,
    changed_fraction: float,
    growth_factor: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised core of a data shift over a raw latency matrix.

    Grows every entry by ``growth_factor``, then -- for a sampled
    ``changed_fraction`` of rows -- slows the previously optimal hint by a
    1.5-3x factor and speeds a uniformly chosen other hint below the new
    row minimum, so the argmin provably moves.  One fancy-indexed pass
    replaces the historical per-row Python loop; the per-row *distribution*
    (independent uniform draws, argmin guaranteed to change) is unchanged,
    but the bulk draws consume the generator stream in a different order,
    so a given seed produces a different -- equally valid -- shifted matrix
    than the pre-vectorisation loop did.

    Returns ``(new_latencies, changed_rows)``.  Shared by
    :func:`apply_data_shift` and the scenario engine's drift primitives.
    """
    if not 0.0 <= changed_fraction <= 1.0:
        raise WorkloadError(
            f"changed_fraction must be in [0, 1], got {changed_fraction}"
        )
    if growth_factor <= 0:
        raise WorkloadError(f"growth_factor must be > 0, got {growth_factor}")
    latencies = np.asarray(latencies, dtype=float)
    n, k = latencies.shape
    new_latencies = latencies * growth_factor

    n_changed = int(round(changed_fraction * n))
    if n_changed == 0 or k < 2:
        return new_latencies, np.zeros(0, dtype=np.int64)

    rows = rng.choice(n, size=n_changed, replace=False)
    best = new_latencies[rows].argmin(axis=1)
    # Replacement hints drawn uniformly over the k-1 non-best columns: a
    # draw in [0, k-1) shifted past the best column is the vectorised form
    # of choosing from the candidate list with ``best`` removed.
    picks = rng.integers(0, k - 1, size=n_changed)
    new_best = picks + (picks >= best)
    slow = rng.uniform(1.5, 3.0, size=n_changed)
    speed = rng.uniform(0.6, 0.9, size=n_changed)
    new_latencies[rows, best] *= slow
    targets = new_latencies[rows].min(axis=1) * speed
    new_latencies[rows, new_best] = np.maximum(targets, 1e-4)
    return new_latencies, np.asarray(rows, dtype=np.int64)


def apply_data_shift(
    workload: SyntheticWorkload,
    changed_fraction: float = 0.21,
    growth_factor: float = 1.26,
    seed: int = 0,
    spec_name: Optional[str] = None,
) -> SyntheticWorkload:
    """Produce a data-shifted copy of the workload (Section 5.4).

    Parameters
    ----------
    changed_fraction:
        Fraction of queries whose *optimal hint* changes (21% for the
        two-year Stack shift).
    growth_factor:
        Overall latency growth as the data grows (Stack's default total grew
        from 1.16 h to 1.46 h, a factor of ~1.26).
    """
    rng = np.random.default_rng(seed)
    new_latencies, _ = shift_latencies(
        workload.true_latencies, changed_fraction, growth_factor, rng
    )

    spec = WorkloadSpec(
        name=spec_name or f"{workload.spec.name}-shifted",
        n_queries=workload.n_queries,
        default_total=float(new_latencies[:, 0].sum()),
        optimal_total=float(new_latencies.min(axis=1).sum()),
        n_hints=workload.spec.n_hints,
        dataset=workload.spec.dataset,
        schema_template=workload.spec.schema_template,
        rank=workload.spec.rank,
    )
    return SyntheticWorkload(
        spec=spec,
        true_latencies=new_latencies,
        query_factors=workload.query_factors * np.sqrt(growth_factor),
        hint_factors=workload.hint_factors * np.sqrt(growth_factor),
        optimizer_costs=workload.optimizer_costs * growth_factor,
        seed=seed,
    )


def changed_optimal_fraction(
    before: SyntheticWorkload, after: SyntheticWorkload
) -> float:
    """Fraction of queries whose optimal hint differs between two workloads."""
    if before.n_queries != after.n_queries:
        raise WorkloadError("workloads must have the same number of queries")
    return float(np.mean(before.optimal_hints() != after.optimal_hints()))
