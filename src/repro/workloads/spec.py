"""Workload specifications matching the paper's Table 1.

Each spec records the query count, the hint-space size, and the Default /
Optimal total latencies the paper measured on PostgreSQL 16.1.  Synthetic
workloads are calibrated against these totals so the figures' axes land in
the same ranges as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..db.hints import NUM_HINT_SETS
from ..errors import WorkloadError

HOUR = 3600.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape and calibration targets of one benchmark workload."""

    name: str
    n_queries: int
    default_total: float
    optimal_total: float
    n_hints: int = NUM_HINT_SETS
    dataset: str = "synthetic"
    dataset_size_gb: float = 0.0
    schema_template: str = "toy"
    rank: int = 5

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise WorkloadError(f"{self.name}: n_queries must be >= 1")
        if self.n_hints < 2:
            raise WorkloadError(f"{self.name}: n_hints must be >= 2")
        if self.optimal_total <= 0 or self.default_total <= 0:
            raise WorkloadError(f"{self.name}: totals must be > 0")
        if self.optimal_total > self.default_total:
            raise WorkloadError(
                f"{self.name}: optimal total cannot exceed the default total"
            )

    @property
    def headroom(self) -> float:
        """Default / Optimal ratio (how much a perfect oracle could save)."""
        return self.default_total / self.optimal_total

    def scaled(self, query_fraction: float) -> "WorkloadSpec":
        """A smaller copy with ``query_fraction`` of the queries.

        Totals shrink proportionally so per-query latencies stay realistic;
        used by tests and by benchmarks that need to stay fast.
        """
        if not 0.0 < query_fraction <= 1.0:
            raise WorkloadError("query_fraction must be in (0, 1]")
        n_queries = max(2, int(round(self.n_queries * query_fraction)))
        factor = n_queries / self.n_queries
        return replace(
            self,
            name=f"{self.name}-x{query_fraction:g}",
            n_queries=n_queries,
            default_total=self.default_total * factor,
            optimal_total=self.optimal_total * factor,
        )


# Paper Table 1.
JOB_SPEC = WorkloadSpec(
    name="job", n_queries=113, default_total=181.0, optimal_total=68.0,
    dataset="imdb", dataset_size_gb=7.2, schema_template="imdb",
)
CEB_SPEC = WorkloadSpec(
    name="ceb", n_queries=3133, default_total=2.94 * HOUR, optimal_total=1.02 * HOUR,
    dataset="imdb", dataset_size_gb=7.2, schema_template="imdb",
)
STACK_SPEC = WorkloadSpec(
    name="stack", n_queries=6191, default_total=1.46 * HOUR, optimal_total=1.09 * HOUR,
    dataset="stack", dataset_size_gb=100.0, schema_template="stack",
)
# The 2017 snapshot used in the data-shift experiment (Section 5.4).
STACK_2017_SPEC = WorkloadSpec(
    name="stack-2017", n_queries=6191, default_total=1.16 * HOUR,
    optimal_total=0.90 * HOUR, dataset="stack", dataset_size_gb=85.0,
    schema_template="stack",
)
DSB_SPEC = WorkloadSpec(
    name="dsb", n_queries=1040, default_total=4.75 * HOUR, optimal_total=2.74 * HOUR,
    dataset="dsb", dataset_size_gb=50.0, schema_template="dsb",
)

_SPECS = {
    spec.name: spec
    for spec in (JOB_SPEC, CEB_SPEC, STACK_SPEC, STACK_2017_SPEC, DSB_SPEC)
}


def get_spec(name: str) -> WorkloadSpec:
    """Look up a spec by name (``job``, ``ceb``, ``stack``, ``stack-2017``, ``dsb``)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; expected one of {sorted(_SPECS)}"
        ) from None


def all_specs():
    """All paper workload specs, in Table 1 order."""
    return [JOB_SPEC, CEB_SPEC, STACK_SPEC, DSB_SPEC]
