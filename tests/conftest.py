"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ALSConfig, ExplorationConfig, TCNNConfig
from repro.core.workload_matrix import WorkloadMatrix
from repro.workloads.generator import build_database_workload
from repro.workloads.matrices import generate_workload
from repro.workloads.spec import CEB_SPEC, JOB_SPEC, WorkloadSpec


@pytest.fixture(scope="session")
def tiny_spec() -> WorkloadSpec:
    """A very small spec for fast unit tests (40 queries, 49 hints)."""
    return WorkloadSpec(
        name="tiny", n_queries=40, default_total=400.0, optimal_total=160.0
    )


@pytest.fixture(scope="session")
def tiny_workload(tiny_spec):
    """A small calibrated synthetic workload."""
    return generate_workload(tiny_spec, seed=7)


@pytest.fixture(scope="session")
def job_small_workload():
    """A JOB-sized synthetic workload (113 x 49)."""
    return generate_workload(JOB_SPEC, seed=3)


@pytest.fixture(scope="session")
def ceb_mini_workload():
    """A scaled-down CEB workload for integration-style tests."""
    return generate_workload(CEB_SPEC.scaled(0.03), seed=1)


@pytest.fixture(scope="session")
def db_workload():
    """A small workload built end-to-end on the DB substrate."""
    return build_database_workload(
        template_name="toy", n_queries=12, n_hints=8, seed=5, max_relations=4
    )


@pytest.fixture
def partially_observed_matrix(tiny_workload) -> WorkloadMatrix:
    """Default column plus ~10% of entries observed, a few censored."""
    truth = tiny_workload.true_latencies
    n, k = truth.shape
    matrix = WorkloadMatrix(n, k)
    rng = np.random.default_rng(11)
    for i in range(n):
        matrix.observe(i, 0, float(truth[i, 0]))
    extra = rng.random((n, k)) < 0.1
    for i in range(n):
        for j in range(1, k):
            if extra[i, j]:
                matrix.observe(i, j, float(truth[i, j]))
    # Censor a couple of entries at half their true latency.
    for i, j in [(0, 5), (3, 9)]:
        if not matrix.is_observed(i, j):
            matrix.observe_censored(i, j, float(truth[i, j]) / 2.0)
    return matrix


@pytest.fixture
def fast_als_config() -> ALSConfig:
    """ALS configuration small enough for unit tests."""
    return ALSConfig(rank=3, iterations=8, seed=0)


@pytest.fixture
def fast_tcnn_config() -> TCNNConfig:
    """TCNN configuration small enough for unit tests."""
    return TCNNConfig(
        embedding_rank=3,
        channels=(8,),
        hidden_units=(8,),
        dropout=0.1,
        batch_size=16,
        max_epochs=3,
        convergence_window=2,
        seed=0,
    )


@pytest.fixture
def exploration_config() -> ExplorationConfig:
    """Exploration loop configuration for unit tests."""
    return ExplorationConfig(batch_size=5, seed=0)
