"""Tests for the drift-aware adaptation layer (repro.adaptive)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    AdaptationController,
    AdaptiveStats,
    ClusterAdaptationController,
    DriftDetector,
    ResidualWindow,
    RowOracle,
    drift_score,
    relative_residuals,
    unseen_rate,
)
from repro.cluster import ServingCluster
from repro.config import ALSConfig, AdaptiveConfig
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import AdaptiveError, ConfigError
from repro.serving import IncrementalALSRefresher, ServingService
from repro.workloads import generate_workload
from repro.workloads.spec import WorkloadSpec

latencies = st.floats(
    min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False
)


@pytest.fixture()
def small_truth():
    spec = WorkloadSpec(
        name="adaptive-test",
        n_queries=50,
        n_hints=8,
        default_total=500.0,
        optimal_total=200.0,
        rank=4,
    )
    return generate_workload(spec, seed=7).true_latencies


def build_service(truth, coverage=1.0, refresher=True, seed=0):
    """A serving stack bootstrapped on ``truth`` (default column + best hints)."""
    n, k = truth.shape
    matrix = WorkloadMatrix(n, k)
    matrix.observe_batch(
        np.arange(n), np.zeros(n, dtype=np.int64), truth[:, 0]
    )
    rng = np.random.default_rng(seed)
    rows = np.nonzero(rng.random(n) < coverage)[0]
    if rows.size:
        best = truth[rows].argmin(axis=1)
        matrix.observe_batch(rows, best, truth[rows, best])
    return ServingService(
        matrix,
        refresher=IncrementalALSRefresher(ALSConfig()) if refresher else None,
    )


# -- residual statistics --------------------------------------------------------
def test_relative_residuals_basics():
    expected = np.array([1.0, 2.0, np.inf])
    measured = np.array([1.0, 3.0, 5.0])
    residuals = relative_residuals(expected, measured)
    assert residuals[0] == 0.0
    assert residuals[1] == pytest.approx(0.5)
    assert np.isnan(residuals[2])
    with pytest.raises(AdaptiveError):
        relative_residuals(np.zeros(3), np.zeros(2))


def test_drift_score_zero_and_full():
    expected = np.full(100, 10.0)
    assert drift_score(relative_residuals(expected, expected), 0.35) == 0.0
    assert drift_score(relative_residuals(expected, expected * 3.0), 0.35) == 1.0
    # An all-unseen window carries no drift evidence.
    assert drift_score(relative_residuals(np.full(5, np.inf), np.ones(5)), 0.35) == 0.0
    with pytest.raises(AdaptiveError):
        drift_score(np.zeros(3), 0.0)


def test_unseen_rate():
    assert unseen_rate(np.array([])) == 0.0
    assert unseen_rate(np.array([1.0, np.inf, np.inf, 2.0])) == pytest.approx(0.5)


@settings(max_examples=40, deadline=None)
@given(
    expected=st.lists(latencies, min_size=1, max_size=64),
    scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    tolerance=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
)
def test_drift_score_properties(expected, scale, tolerance):
    """Windowed residual stats: bounds, monotone response, exact edges."""
    expected = np.asarray(expected)
    measured = expected * scale
    residuals = relative_residuals(expected, measured)
    score = drift_score(residuals, tolerance)
    assert 0.0 <= score <= 1.0
    # Uniform scaling makes every relative residual |scale - 1|:
    if abs(scale - 1.0) > tolerance * (1 + 1e-9):
        assert score == 1.0
    elif abs(scale - 1.0) < tolerance * (1 - 1e-9):
        assert score == 0.0
    # The score is invariant under sample permutation.
    permuted = np.random.default_rng(0).permutation(residuals)
    assert drift_score(permuted, tolerance) == score


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(latencies, min_size=1, max_size=200),
    capacity=st.integers(min_value=1, max_value=64),
)
def test_residual_window_matches_pure_stats(values, capacity):
    """A ring-buffered window reports exactly the stats of its last N samples."""
    expected = np.asarray(values)
    measured = expected * 2.0
    window = ResidualWindow(capacity)
    window.record(
        np.arange(expected.size), np.zeros(expected.size), expected, measured
    )
    tail = expected[-capacity:]
    stats = window.stats(tolerance=0.35)
    assert stats.samples == min(expected.size, capacity)
    reference = drift_score(relative_residuals(tail, tail * 2.0), 0.35)
    assert stats.drift_score == pytest.approx(reference)


def test_residual_window_rows_and_clear():
    window = ResidualWindow(16)
    expected = np.array([10.0, 10.0, np.inf, 10.0])
    measured = np.array([10.0, 30.0, 5.0, 10.4])
    window.record(np.array([3, 7, 9, 4]), np.zeros(4), expected, measured)
    assert window.drifted_rows(0.35).tolist() == [7]
    assert window.unseen_rows().tolist() == [9]
    window.clear()
    assert len(window) == 0
    assert window.stats(0.35).samples == 0


# -- detector ---------------------------------------------------------------------
def test_detector_zero_drift_never_triggers():
    detector = DriftDetector(AdaptiveConfig(window=64, min_samples=16))
    expected = np.full(64, 5.0)
    for _ in range(10):
        detector.record(np.arange(64), np.zeros(64), expected, expected)
        assert not detector.status().triggered
    assert detector.status().drift_score == 0.0


def test_detector_full_drift_always_triggers():
    detector = DriftDetector(AdaptiveConfig(window=64, min_samples=16))
    expected = np.full(64, 5.0)
    detector.record(np.arange(64), np.zeros(64), expected, expected * 4.0)
    status = detector.status()
    assert status.drift_triggered and status.triggered
    assert status.drift_score == 1.0


def test_detector_drift_gate_ignores_unseen_samples():
    """A window dominated by unseen serves must not let one noisy
    measurement trip a drift invalidation (the gate counts residual-
    carrying samples only)."""
    detector = DriftDetector(AdaptiveConfig(window=128, min_samples=32))
    expected = np.full(62, np.inf)
    expected[:2] = 10.0
    measured = np.full(62, 10.0)
    measured[0] = 30.0  # one noisy measurement among 60 unseen serves
    detector.record(np.arange(62), np.zeros(62), expected, measured)
    status = detector.status()
    assert status.samples == 62 and status.seen_samples == 2
    assert status.drift_score == pytest.approx(0.5)
    assert not status.drift_triggered
    assert status.unseen_triggered  # the unseen signal is the real story


def test_detector_needs_min_samples():
    detector = DriftDetector(AdaptiveConfig(window=64, min_samples=32))
    expected = np.full(8, 5.0)
    detector.record(np.arange(8), np.zeros(8), expected, expected * 4.0)
    assert not detector.status().triggered  # evidence, but not enough of it


def test_detector_unseen_and_new_row_signals():
    config = AdaptiveConfig(window=64, min_samples=16, unseen_threshold=0.2)
    detector = DriftDetector(config)
    expected = np.where(np.arange(32) % 2 == 0, np.inf, 5.0)
    detector.record(np.arange(32), np.zeros(32), expected, np.full(32, 5.0))
    status = detector.status()
    assert status.unseen_triggered and not status.drift_triggered
    # Row growth alone can trigger too.
    other = DriftDetector(config)
    fine = np.full(32, 5.0)
    other.record(np.arange(32), np.zeros(32), fine, fine)
    other.note_row_count(100)
    other.note_row_count(140)
    assert other.status().new_row_fraction == pytest.approx(0.4)
    assert other.status().unseen_triggered
    other.reset()
    assert other.status().new_row_fraction == 0.0


def test_adaptive_config_validation():
    with pytest.raises(ConfigError):
        AdaptiveConfig(window=0)
    with pytest.raises(ConfigError):
        AdaptiveConfig(min_samples=512, window=64)
    with pytest.raises(ConfigError):
        AdaptiveConfig(drift_threshold=0.0)
    with pytest.raises(ConfigError):
        AdaptiveConfig(reverify_observations=1)


# -- controller --------------------------------------------------------------------
def controller_for(service, truth, **kwargs):
    config = kwargs.pop(
        "config",
        AdaptiveConfig(window=128, min_samples=32, cooldown_ticks=0),
    )
    controller = AdaptationController(
        service, RowOracle(lambda q, h: truth[q, h]), config=config, **kwargs
    )
    service.monitor = controller
    return controller


def feed(service, truth, batches=2):
    for _ in range(batches):
        decisions = service.serve_all()
        service.record_measured(
            decisions, truth[decisions.queries, decisions.hints]
        )


def test_controller_zero_drift_never_responds(small_truth):
    service = build_service(small_truth)
    controller = controller_for(service, small_truth)
    for _ in range(5):
        feed(service, small_truth, batches=1)
        assert not controller.tick()
    assert controller.report().responses == 0


def test_controller_full_drift_responds_and_recovers(small_truth):
    truth = small_truth.copy()
    service = build_service(truth)
    controller = controller_for(service, truth)
    before_version = service.matrix.version
    truth *= 3.0  # everything drifted
    feed(service, truth)
    assert controller.tick()
    report = controller.report()
    assert report.responses == 1
    assert report.invalidated_rows > 0
    assert report.remeasured_cells > 0
    assert service.matrix.version > before_version
    # Invalidated rows now carry a *fresh* default observation.
    drifted = controller.last_response.invalidated
    for row in drifted[:5]:
        assert service.matrix.value(int(row), 0) == pytest.approx(
            truth[int(row), 0]
        )
    # Backlog recovery keeps exploring on quiet ticks until re-verified.
    for _ in range(30):
        if not controller.backlog.size:
            break
        controller.tick()
    assert controller.backlog.size == 0
    assert controller.report().recovery_passes > 0


def test_controller_response_respects_budget(small_truth):
    truth = small_truth.copy()
    service = build_service(truth)
    config = AdaptiveConfig(
        window=128, min_samples=32, cooldown_ticks=0,
        response_budget_cells=10, explore_batch_size=2,
    )
    controller = controller_for(service, truth, config=config)
    truth *= 3.0
    feed(service, truth)
    assert controller.tick()
    plan = controller.last_response
    # Budget caps total live executions (explore may overshoot by < batch).
    assert plan.remeasured + plan.explored <= 10 + (2 - 1)


def test_controller_cooldown_rate_limits(small_truth):
    truth = small_truth.copy()
    service = build_service(truth)
    config = AdaptiveConfig(window=128, min_samples=32, cooldown_ticks=3)
    controller = controller_for(service, truth, config=config)
    truth *= 3.0
    feed(service, truth)
    assert controller.tick()
    feed(service, truth)
    assert not controller.tick()  # cooling down
    assert controller.report().responses == 1


def test_controller_never_serves_regression_after_drift(small_truth):
    """Post-response decisions are anchored to fresh default observations."""
    truth = small_truth.copy()
    service = build_service(truth)
    controller = controller_for(service, truth)
    truth *= 2.5
    feed(service, truth)
    controller.tick()
    for _ in range(20):
        controller.tick()
    decisions = service.serve_all()
    served = truth[decisions.queries, decisions.hints]
    defaults = truth[decisions.queries, 0]
    assert np.all(served <= defaults * (1.0 + 1e-9))


def test_controller_unseen_rows_get_anchored(small_truth):
    truth = small_truth.copy()
    n, k = truth.shape
    service = build_service(truth)
    controller = controller_for(service, truth)
    # Ten brand-new rows appear (workload shift): no observations at all.
    for _ in range(10):
        service.matrix.add_query()
    extended = np.vstack([truth, truth[:10] * 1.5])
    new_rows = np.arange(n, n + 10)
    for _ in range(4):
        decisions = service.serve_batch(
            np.concatenate([np.arange(n), new_rows])
        )
        service.record_measured(
            decisions, extended[decisions.queries, decisions.hints]
        )
    controller.reexplorer.oracle = RowOracle(
        lambda q, h: extended[q, h]
    )
    assert controller.tick()
    assert controller.report().unseen_responses == 1
    for row in new_rows:
        assert service.matrix.is_observed(int(row), 0)


def test_scoped_exploration_only_executes_scoped_rows(small_truth):
    """Recovery exploration cannot leak live executions onto healthy rows."""
    from repro.adaptive import OnlineReexplorer

    truth = small_truth
    n, k = truth.shape
    matrix = WorkloadMatrix(n, k)
    matrix.observe_batch(np.arange(n), np.zeros(n, dtype=np.int64), truth[:, 0])
    executed = []

    def lookup(q, h):
        executed.append(q)
        return truth[q, h]

    reexplorer = OnlineReexplorer(matrix, RowOracle(lookup))
    scoped = np.array([3, 7, 11, 19])
    ran = reexplorer.explore(24, rows=scoped)
    assert ran > 0
    assert set(executed) <= set(scoped.tolist())
    # Empty scope is a no-op.
    assert reexplorer.explore(24, rows=np.zeros(0, dtype=np.int64)) == 0


def test_controller_recovery_stays_on_backlog_rows(small_truth):
    truth = small_truth.copy()
    service = build_service(truth)
    controller = controller_for(service, truth)
    truth *= 3.0
    feed(service, truth)
    assert controller.tick()
    touched = set(controller.backlog.tolist()) | set(
        controller.last_response.invalidated.tolist()
    )
    executed = []
    controller.reexplorer.oracle = RowOracle(
        lambda q, h: (executed.append(q), truth[q, h])[1]
    )
    for _ in range(30):
        if not controller.backlog.size:
            break
        controller.tick()
    assert controller.backlog.size == 0
    assert set(executed) <= touched


def test_recovery_anchors_before_exploring(small_truth):
    """A response bigger than its budget leaves unanchored rows; recovery
    passes must re-measure their defaults before any exploration lands on
    them, or the snapshot would serve unverified hints unconditionally."""
    truth = small_truth.copy()
    service = build_service(truth)
    config = AdaptiveConfig(
        window=128, min_samples=32, cooldown_ticks=0,
        response_budget_cells=12, explore_batch_size=4,
    )
    controller = controller_for(service, truth, config=config)
    truth *= 3.0  # all 50 rows drift; budget 12 cannot anchor them in one go
    feed(service, truth)
    assert controller.tick()
    matrix = service.matrix
    for _ in range(60):
        # Invariant at every step: a row carrying any non-default
        # observation must have its default observed too.
        for row in range(matrix.n_queries):
            if matrix.observed_count_in_row(row) and not matrix.is_observed(row, 0):
                non_default = [
                    h for h in range(1, matrix.n_hints)
                    if matrix.is_observed(row, h)
                ]
                assert not non_default, (
                    f"row {row} has non-default observations {non_default} "
                    "but no default anchor"
                )
        if not controller.backlog.size:
            break
        controller.tick()
    assert controller.backlog.size == 0


def test_scheduler_escalation_survives_down_shard():
    cluster = ServingCluster(2, 4)
    cluster.add_tenant("t", [f"q{i}" for i in range(8)])
    cluster.observe_batch(
        "t", np.arange(8), np.zeros(8, dtype=np.int64), np.ones(8)
    )
    shard_ids, _ = cluster.locate("t", np.arange(8))
    target = int(shard_ids[0])
    cluster.scheduler.escalate(target)
    cluster.mark_down(target)
    assert cluster.tick() == [] or target not in cluster.tick()
    # The escalation is retained, not dropped: first tick after recovery
    # refreshes the shard even though it is outside the round-robin budget.
    cluster.mark_up(target)
    assert target in cluster.tick()


def test_cluster_controller_reallocates_refresh_budget():
    truth = np.abs(np.random.default_rng(0).lognormal(0, 1, (40, 6))) + 0.1
    cluster = ServingCluster(4, 6, refresh_budget=1)
    names = [f"q{i}" for i in range(40)]
    cluster.add_tenant("t", names)
    rows = np.arange(40)
    cluster.observe_batch("t", rows, np.zeros(40, dtype=np.int64), truth[:, 0])
    best = truth.argmin(axis=1)
    cluster.observe_batch("t", rows, best, truth[rows, best])
    controller = ClusterAdaptationController(
        cluster,
        lambda key, hint: truth[int(key.split("/", 1)[1][1:]), hint],
        config=AdaptiveConfig(window=64, min_samples=16, cooldown_ticks=0),
    )
    truth *= 3.0
    for _ in range(2):
        decisions = cluster.serve_batch("t", rows)
        controller.record("t", decisions, truth[decisions.queries, decisions.hints])
    responded = controller.tick()
    assert len(responded) >= 2
    # Budget reallocated up while shards are responding/recovering ...
    assert cluster.scheduler.budget_per_tick >= len(responded)
    for _ in range(40):
        cluster.tick()
        if not controller.tick() and all(
            not c.backlog.size for c in controller._controllers.values()
        ):
            break
    controller.tick()
    # ... and restored to the configured base once the cluster is calm.
    assert cluster.scheduler.budget_per_tick == 1


def test_adaptive_stats_merge_and_dict():
    a = AdaptiveStats(responses=1, explored_cells=10, last_drift_score=0.5)
    b = AdaptiveStats(responses=2, explored_cells=5, last_drift_score=0.2)
    merged = AdaptiveStats.merge([a, b])
    assert merged.responses == 3
    assert merged.explored_cells == 15
    assert merged.last_drift_score == 0.5
    payload = merged.as_dict()
    assert payload["responses"] == 3
    assert isinstance(payload["responses"], int)


def test_row_oracle_timeout_semantics():
    oracle = RowOracle(lambda q, h: 10.0)
    done = oracle.execute(0, 0)
    assert not done.timed_out and done.charged_time == 10.0
    censored = oracle.execute(0, 0, timeout=5.0)
    assert censored.timed_out and censored.charged_time == 5.0
    many = oracle.execute_many([0, 1], [0, 1], [None, 5.0])
    assert [r.timed_out for r in many] == [False, True]
    with pytest.raises(AdaptiveError):
        RowOracle("not-callable")


# -- cluster controller ---------------------------------------------------------------
def test_cluster_adaptation_escalates_and_recovers():
    spec = WorkloadSpec(
        name="cluster-adaptive",
        n_queries=80,
        n_hints=8,
        default_total=800.0,
        optimal_total=320.0,
        rank=4,
    )
    truth = generate_workload(spec, seed=3).true_latencies.copy()
    cluster = ServingCluster(3, 8, refresh_budget=1)
    names = [f"q{i}" for i in range(80)]
    cluster.add_tenant("acme", names)
    rows = np.arange(80)
    cluster.observe_batch("acme", rows, np.zeros(80, dtype=np.int64), truth[:, 0])
    best = truth.argmin(axis=1)
    cluster.observe_batch("acme", rows, best, truth[rows, best])
    controller = ClusterAdaptationController(
        cluster,
        lambda key, hint: truth[int(key.split("/", 1)[1][1:]), hint],
        config=AdaptiveConfig(window=128, min_samples=32, cooldown_ticks=0),
    )
    truth *= 3.0  # cluster-wide drift
    for _ in range(2):
        decisions = cluster.serve_batch("acme", rows)
        controller.record(
            "acme", decisions, truth[decisions.queries, decisions.hints]
        )
    responded = controller.tick()
    assert responded, "no shard responded to a 3x cluster-wide drift"
    # Responding shards were escalated outside the round-robin budget.
    assert cluster.scheduler.escalations >= len(responded)
    refreshed = cluster.tick()
    assert set(responded) <= set(refreshed)
    report = controller.report()
    assert report.responses >= len(responded)
    assert report.invalidated_rows > 0
    # Topology change wipes window epochs and shard controllers.
    controller.notify_topology_change()
    assert controller.shard_reports() == {}
    with pytest.raises(AdaptiveError):
        ClusterAdaptationController(cluster, "nope")
