"""Tests for censored alternating least squares (Algorithm 2)."""

import numpy as np
import pytest

from repro.config import ALSConfig
from repro.core.als import censored_als
from repro.errors import CompletionError


def low_rank_matrix(n=30, k=12, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.gamma(2.0, 1.0, size=(n, rank))
    h = rng.gamma(2.0, 1.0, size=(k, rank))
    return q @ h.T


def random_mask(shape, fill, seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random(shape) < fill).astype(float)
    mask[:, 0] = 1.0  # default column always observed
    return mask


def test_completes_exactly_observed_entries():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    result = censored_als(truth, mask, config=ALSConfig(rank=3, iterations=30))
    observed = mask > 0
    assert np.allclose(result.completed[observed], truth[observed])


def test_recovers_unobserved_entries_of_low_rank_matrix():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.6, seed=1)
    result = censored_als(truth, mask, config=ALSConfig(rank=3, iterations=40))
    unobserved = mask == 0
    rel_err = np.abs(result.completed[unobserved] - truth[unobserved]) / truth[unobserved]
    assert np.median(rel_err) < 0.3


def test_factors_have_requested_rank_and_are_nonnegative():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    config = ALSConfig(rank=4, iterations=10)
    result = censored_als(truth, mask, config=config)
    assert result.query_factors.shape == (truth.shape[0], 4)
    assert result.hint_factors.shape == (truth.shape[1], 4)
    assert (result.query_factors >= 0).all()
    assert (result.hint_factors >= 0).all()
    assert result.low_rank_estimate.shape == truth.shape


def test_nonnegativity_can_be_disabled():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    config = ALSConfig(rank=3, iterations=10, nonnegative=False)
    result = censored_als(truth, mask, config=config)
    # Without the projection, at least some factor entries may go negative;
    # the completion must still reproduce observed entries.
    assert np.allclose(result.completed[mask > 0], truth[mask > 0])


def test_censored_entries_respect_lower_bounds():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.4, seed=2)
    timeouts = np.zeros_like(truth)
    censored_cells = [(1, 3), (5, 7), (10, 2)]
    for i, j in censored_cells:
        mask[i, j] = 0.0
        timeouts[i, j] = truth[i, j] * 2.0  # a bound above the natural value
    result = censored_als(truth, mask, timeouts, ALSConfig(rank=3, iterations=20))
    for i, j in censored_cells:
        assert result.completed[i, j] >= timeouts[i, j] - 1e-9


def test_censoring_disabled_ignores_timeouts():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.4, seed=2)
    timeouts = np.zeros_like(truth)
    timeouts[2, 2] = truth[2, 2] * 10
    mask[2, 2] = 0.0
    config = ALSConfig(rank=3, iterations=20, censored=False)
    result = censored_als(truth, mask, timeouts, config)
    assert result.completed[2, 2] < timeouts[2, 2]


def test_objective_trace_is_recorded_and_mostly_decreasing():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    result = censored_als(truth, mask, config=ALSConfig(rank=3, iterations=15))
    trace = result.objective_trace
    assert len(trace) == 15
    assert trace[-1] <= trace[0]


def test_shape_validation():
    truth = low_rank_matrix()
    with pytest.raises(CompletionError):
        censored_als(truth, np.ones((3, 3)))
    with pytest.raises(CompletionError):
        censored_als(truth, np.zeros_like(truth))
    with pytest.raises(CompletionError):
        censored_als(truth, np.ones_like(truth), np.zeros((2, 2)))


def test_observed_entries_must_be_finite():
    truth = low_rank_matrix()
    truth[0, 0] = np.inf
    with pytest.raises(CompletionError):
        censored_als(truth, np.ones_like(truth))


def test_rank_capped_by_matrix_dimensions():
    truth = low_rank_matrix(n=6, k=4, rank=2)
    mask = np.ones_like(truth)
    result = censored_als(truth, mask, config=ALSConfig(rank=10, iterations=5))
    assert result.query_factors.shape[1] == 4


def test_reproducible_for_fixed_seed():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    config = ALSConfig(rank=3, iterations=10, seed=123)
    a = censored_als(truth, mask, config=config)
    b = censored_als(truth, mask, config=config)
    assert np.allclose(a.completed, b.completed)


def test_tol_early_stop_shortens_trace():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    full = censored_als(truth, mask, config=ALSConfig(rank=3, iterations=40))
    early = censored_als(
        truth, mask, config=ALSConfig(rank=3, iterations=40, tol=0.05)
    )
    assert len(early.objective_trace) < len(full.objective_trace)
    # The factor trajectory up to the stopping point is identical.
    stop = len(early.objective_trace)
    assert np.allclose(early.objective_trace, full.objective_trace[:stop])


def test_tol_zero_never_stops_early():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    result = censored_als(truth, mask, config=ALSConfig(rank=3, iterations=25))
    assert len(result.objective_trace) == 25


def test_tol_validation():
    with pytest.raises(Exception):
        ALSConfig(tol=-0.1)


def test_warm_start_with_fewer_iterations_refines_cold_result():
    truth = low_rank_matrix()
    mask = random_mask(truth.shape, 0.5)
    config = ALSConfig(rank=3, iterations=30)
    cold = censored_als(truth, mask, config=config)
    warm = censored_als(
        truth, mask, config=config, warm_start=cold.factors, iterations=2
    )
    assert len(warm.objective_trace) == 2
    # Restarting from converged factors must not blow the objective back up.
    assert warm.objective_trace[-1] <= cold.objective_trace[-1] * 1.05
