"""Equivalence of the optimised censored-ALS solver against the reference.

``_reference_censored_als`` below is a line-for-line copy of the solver as
it stood *before* the performance pass (matrix inverse instead of
``np.linalg.solve``, full-matrix blend-and-copy fill-in, objective summed
over the whole masked matrix).  The hypothesis property asserts the
optimised solver reproduces the reference's factors, completion, and
objective trace within ``1e-8`` across random shapes, masks, censored
cells, and warm starts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ALSConfig
from repro.core.als import censored_als


def _reference_censored_als(observed, mask, timeouts, config, warm_start=None,
                            iterations=None):
    """The pre-optimisation solver (Algorithm 2), kept verbatim for tests."""
    observed = np.asarray(observed, dtype=float)
    mask = np.asarray(mask, dtype=float)
    timeouts = np.asarray(timeouts, dtype=float)
    if not config.censored:
        timeouts = np.zeros_like(timeouts)
    n, k = observed.shape
    rank = min(config.rank, n, k)
    rng = np.random.default_rng(config.seed)

    observed_filled = np.where(mask > 0, observed, 0.0)
    mean_value = float(observed_filled[mask > 0].mean()) if mask.sum() else 1.0
    row_counts = mask.sum(axis=1)
    row_means = np.where(
        row_counts > 0,
        (observed_filled * mask).sum(axis=1) / np.maximum(row_counts, 1.0),
        mean_value,
    )
    ratio_matrix = np.where(
        mask > 0, observed_filled / np.maximum(row_means[:, None], 1e-9), 0.0
    )
    column_counts = mask.sum(axis=0)
    column_ratios = np.where(
        column_counts > 0,
        ratio_matrix.sum(axis=0) / np.maximum(column_counts, 1.0),
        1.0,
    )
    query_factors = rng.random((n, rank)) * 1e-2
    hint_factors = rng.random((k, rank)) * 1e-2
    query_factors[:, 0] = np.maximum(row_means, 1e-9)
    hint_factors[:, 0] = np.maximum(column_ratios, 1e-9)

    if warm_start is not None:
        warm_q, warm_h = warm_start
        query_factors[: warm_q.shape[0]] = warm_q
        hint_factors[: warm_h.shape[0]] = warm_h

    n_iterations = config.iterations if iterations is None else int(iterations)
    reg = config.regularization * np.eye(rank)
    objective_trace = []

    def _apply_censoring(estimate):
        censored = timeouts > 0
        if not censored.any():
            return estimate
        clamped = estimate.copy()
        clamped[censored] = np.maximum(clamped[censored], timeouts[censored])
        return clamped

    def _fill(current_q, current_h):
        estimate = mask * observed_filled + (1.0 - mask) * (current_q @ current_h.T)
        return _apply_censoring(estimate)

    for _ in range(n_iterations):
        completed = _fill(query_factors, hint_factors)
        gram_h = hint_factors.T @ hint_factors + reg
        query_factors = completed @ hint_factors @ np.linalg.inv(gram_h)
        if config.nonnegative:
            np.maximum(query_factors, 0.0, out=query_factors)

        completed = _fill(query_factors, hint_factors)
        gram_q = query_factors.T @ query_factors + reg
        hint_factors = completed.T @ query_factors @ np.linalg.inv(gram_q)
        if config.nonnegative:
            np.maximum(hint_factors, 0.0, out=hint_factors)

        estimate = query_factors @ hint_factors.T
        residual = mask * (observed_filled - estimate)
        objective_trace.append(float((residual ** 2).sum()))

    completed = _fill(query_factors, hint_factors)
    return completed, query_factors, hint_factors, np.asarray(objective_trace)


def _close(a, b, scale=1.0):
    return np.allclose(a, b, rtol=1e-8, atol=1e-8 * max(scale, 1.0))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=14),
    k=st.integers(min_value=3, max_value=10),
    rank=st.integers(min_value=1, max_value=4),
    iterations=st.integers(min_value=1, max_value=12),
    regularization=st.floats(min_value=0.05, max_value=1.0),
    nonnegative=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_optimised_solver_matches_reference(
    n, k, rank, iterations, regularization, nonnegative, seed, data
):
    rng = np.random.default_rng(seed)
    true_rank = min(rank + 1, n, k)
    truth = rng.gamma(2.0, 1.0, (n, true_rank)) @ rng.gamma(2.0, 1.0, (k, true_rank)).T

    mask = (rng.random((n, k)) < data.draw(st.floats(0.3, 0.9))).astype(float)
    mask[:, 0] = 1.0  # default column always observed (library invariant)

    timeouts = np.zeros_like(truth)
    n_censored = data.draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_censored):
        i = int(rng.integers(n))
        j = int(rng.integers(1, k))
        mask[i, j] = 0.0
        timeouts[i, j] = truth[i, j] * float(rng.uniform(0.5, 2.0))

    # The nonnegative clamp makes long trajectories chaotic: a one-ulp
    # difference between ``solve`` and ``inv`` flips whether a factor near
    # zero clamps, and the divergence then grows ~40x per iteration.  Cap
    # the compared trajectory in the clamped case -- every iteration's
    # algebra is still exercised, just not the chaotic amplification.
    if nonnegative:
        iterations = min(iterations, 5)
    config = ALSConfig(
        rank=rank,
        regularization=regularization,
        iterations=iterations,
        nonnegative=nonnegative,
        seed=seed % 17,
    )

    result = censored_als(truth, mask, timeouts, config)
    ref_completed, ref_q, ref_h, ref_trace = _reference_censored_als(
        truth, mask, timeouts, config
    )

    scale = float(np.abs(truth).max())
    assert _close(result.completed, ref_completed, scale)
    assert _close(result.query_factors, ref_q, scale)
    assert _close(result.hint_factors, ref_h, scale)
    assert _close(result.objective_trace, ref_trace, scale ** 2 * mask.sum())

    # Warm-start case: continue both solvers from the optimised factors.
    warm = result.factors
    warm_result = censored_als(
        truth, mask, timeouts, config, warm_start=warm, iterations=3
    )
    ref_warm = _reference_censored_als(
        truth, mask, timeouts, config, warm_start=warm, iterations=3
    )
    assert _close(warm_result.completed, ref_warm[0], scale)
    assert _close(warm_result.query_factors, ref_warm[1], scale)
    assert _close(warm_result.hint_factors, ref_warm[2], scale)
    assert _close(warm_result.objective_trace, ref_warm[3], scale ** 2 * mask.sum())
