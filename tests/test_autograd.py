"""Tests for the numpy autograd substrate, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import NeuralNetworkError
from repro.nn.autograd import Tensor, parameter


def numerical_gradient(func, value, eps=1e-6):
    """Central-difference gradient of a scalar function of one array."""
    value = np.asarray(value, dtype=float)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(value)
        flat[i] = original - eps
        minus = func(value)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def test_add_mul_backward_with_broadcasting():
    a = parameter(np.array([[1.0, 2.0], [3.0, 4.0]]))
    b = parameter(np.array([10.0, 20.0]))
    out = (a * 2.0 + b).sum()
    out.backward()
    assert np.allclose(a.grad, 2.0 * np.ones((2, 2)))
    assert np.allclose(b.grad, [2.0, 2.0])


def test_matmul_backward_matches_numerical():
    rng = np.random.default_rng(0)
    a_val = rng.normal(size=(3, 4))
    b_val = rng.normal(size=(4, 2))

    a = parameter(a_val.copy())
    b = parameter(b_val.copy())
    (a @ b).sum().backward()

    num_a = numerical_gradient(lambda x: (x @ b_val).sum(), a_val.copy())
    num_b = numerical_gradient(lambda x: (a_val @ x).sum(), b_val.copy())
    assert np.allclose(a.grad, num_a, atol=1e-5)
    assert np.allclose(b.grad, num_b, atol=1e-5)


def test_batched_matmul_backward():
    rng = np.random.default_rng(1)
    x_val = rng.normal(size=(2, 5, 3))
    w_val = rng.normal(size=(3, 4))
    x = parameter(x_val.copy())
    w = parameter(w_val.copy())
    (x @ w).sum().backward()
    num_w = numerical_gradient(lambda v: np.matmul(x_val, v).sum(), w_val.copy())
    assert np.allclose(w.grad, num_w, atol=1e-5)
    assert x.grad.shape == x_val.shape


def test_relu_and_sigmoid_backward():
    x_val = np.array([-2.0, -0.5, 0.5, 3.0])
    x = parameter(x_val.copy())
    x.relu().sum().backward()
    assert np.allclose(x.grad, [0.0, 0.0, 1.0, 1.0])

    y = parameter(x_val.copy())
    y.sigmoid().sum().backward()
    num = numerical_gradient(lambda v: (1.0 / (1.0 + np.exp(-v))).sum(), x_val.copy())
    assert np.allclose(y.grad, num, atol=1e-5)


def test_division_and_power_backward():
    x_val = np.array([1.0, 2.0, 4.0])
    x = parameter(x_val.copy())
    (x ** 2).sum().backward()
    assert np.allclose(x.grad, 2 * x_val)

    y = parameter(x_val.copy())
    (Tensor(np.ones(3)) / y).sum().backward()
    assert np.allclose(y.grad, -1.0 / x_val ** 2)


def test_mean_and_sum_with_axes():
    x = parameter(np.arange(6.0).reshape(2, 3))
    x.sum(axis=0).sum().backward()
    assert np.allclose(x.grad, np.ones((2, 3)))
    y = parameter(np.arange(6.0).reshape(2, 3))
    y.mean(axis=1).sum().backward()
    assert np.allclose(y.grad, np.full((2, 3), 1.0 / 3.0))


def test_reshape_and_concat_backward():
    a = parameter(np.ones((2, 2)))
    b = parameter(np.ones((2, 3)))
    out = a.reshape(2, 2).concat(b, axis=1)
    (out * 2.0).sum().backward()
    assert np.allclose(a.grad, 2 * np.ones((2, 2)))
    assert np.allclose(b.grad, 2 * np.ones((2, 3)))


def test_gather_rows_backward_accumulates_duplicates():
    table = parameter(np.arange(8.0).reshape(4, 2))
    out = table.gather_rows(np.array([0, 0, 3]))
    out.sum().backward()
    expected = np.zeros((4, 2))
    expected[0] = 2.0
    expected[3] = 1.0
    assert np.allclose(table.grad, expected)


def test_gather_rows_requires_2d():
    with pytest.raises(NeuralNetworkError):
        parameter(np.ones(3)).gather_rows(np.array([0]))


def test_gather_nodes_forward_and_backward():
    x_val = np.arange(2 * 3 * 2, dtype=float).reshape(2, 3, 2)
    idx = np.array([[0, 2, 1], [1, 1, 0]])
    x = parameter(x_val.copy())
    out = x.gather_nodes(idx)
    assert np.allclose(out.data[0, 1], x_val[0, 2])
    assert np.allclose(out.data[1, 0], x_val[1, 1])
    out.sum().backward()
    expected = np.zeros_like(x_val)
    for b in range(2):
        for n in range(3):
            expected[b, idx[b, n]] += 1.0
    assert np.allclose(x.grad, expected)


def test_masked_max_forward_and_backward():
    x_val = np.array(
        [[[1.0, 5.0], [9.0, 2.0], [3.0, 3.0]]]
    )  # (1, 3, 2)
    mask = np.array([[0.0, 1.0, 1.0]])
    x = parameter(x_val.copy())
    pooled = x.masked_max(mask)
    assert np.allclose(pooled.data, [[9.0, 3.0]])
    pooled.sum().backward()
    expected = np.zeros_like(x_val)
    expected[0, 1, 0] = 1.0  # max of column 0 among unmasked nodes
    expected[0, 2, 1] = 1.0
    assert np.allclose(x.grad, expected)


def test_masked_max_requires_an_unmasked_node():
    x = parameter(np.ones((1, 2, 2)))
    with pytest.raises(NeuralNetworkError):
        x.masked_max(np.zeros((1, 2)))


def test_apply_mask_backward():
    x = parameter(np.ones((2, 2)))
    mask = np.array([[1.0, 0.0], [0.5, 2.0]])
    x.apply_mask(mask).sum().backward()
    assert np.allclose(x.grad, mask)


def test_backward_requires_scalar_without_explicit_gradient():
    x = parameter(np.ones((2, 2)))
    with pytest.raises(NeuralNetworkError):
        (x * 2).backward()


def test_parameter_reused_twice_accumulates_gradient():
    x = parameter(np.array([3.0]))
    out = (x * 2.0) + (x * 5.0)
    out.sum().backward()
    assert np.allclose(x.grad, [7.0])


def test_detach_cuts_the_graph():
    x = parameter(np.array([2.0]))
    detached = (x * 3.0).detach()
    (detached * 2.0).sum().backward()
    assert x.grad is None


def test_constant_inputs_build_no_graph():
    a = Tensor(np.ones((2, 2)))
    b = Tensor(np.ones((2, 2)))
    out = a @ b
    assert out._backward is None
