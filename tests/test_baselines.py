"""Tests for the BayesQO and oracle baselines."""

import numpy as np
import pytest

from repro.baselines.bayesqo import BayesQO
from repro.baselines.exhaustive import (
    exhaustive_exploration_cost,
    oracle_hints,
    oracle_latency,
)
from repro.core.explorer import MatrixOracle
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ExplorationError


def test_oracle_helpers(tiny_workload):
    truth = tiny_workload.true_latencies
    hints = oracle_hints(truth)
    assert hints.shape == (tiny_workload.n_queries,)
    assert oracle_latency(truth) == pytest.approx(truth.min(axis=1).sum())
    assert exhaustive_exploration_cost(truth) == pytest.approx(truth.sum())
    assert oracle_latency(truth) <= truth[:, 0].sum()


def test_oracle_helpers_validate_inputs():
    with pytest.raises(ExplorationError):
        oracle_latency(np.ones(3))
    bad = np.ones((2, 2))
    bad[0, 0] = np.nan
    with pytest.raises(ExplorationError):
        oracle_hints(bad)


def test_bayesqo_respects_per_query_budget(tiny_workload):
    truth = tiny_workload.true_latencies
    budget = 0.5 * float(np.median(truth[:, 0]))
    bayes = BayesQO(
        MatrixOracle(truth),
        tiny_workload.n_queries,
        tiny_workload.n_hints,
        per_query_budget=budget,
        hint_factors=tiny_workload.hint_factors,
        seed=0,
    )
    result = bayes.run()
    assert result.time_spent_per_query.shape == (tiny_workload.n_queries,)
    assert (result.time_spent_per_query <= budget + 1e-9).all()
    assert result.total_time_spent <= budget * tiny_workload.n_queries + 1e-6
    assert (result.evaluations_per_query >= 1).all()


def test_bayesqo_never_regresses_when_default_is_pre_observed(tiny_workload):
    truth = tiny_workload.true_latencies
    matrix = WorkloadMatrix(tiny_workload.n_queries, tiny_workload.n_hints)
    for i in range(tiny_workload.n_queries):
        matrix.observe(i, 0, float(truth[i, 0]))
    bayes = BayesQO(
        MatrixOracle(truth),
        tiny_workload.n_queries,
        tiny_workload.n_hints,
        per_query_budget=1.0,
        seed=1,
    )
    result = bayes.run(matrix)
    assert result.workload_latency() <= truth[:, 0].sum() + 1e-9


def test_bayesqo_makes_little_progress_with_tiny_budgets(tiny_workload):
    """The qualitative claim of Figure 18."""
    truth = tiny_workload.true_latencies
    matrix = WorkloadMatrix(tiny_workload.n_queries, tiny_workload.n_hints)
    for i in range(tiny_workload.n_queries):
        matrix.observe(i, 0, float(truth[i, 0]))
    tiny_budget = 0.02 * float(np.median(truth[:, 0]))
    bayes = BayesQO(
        MatrixOracle(truth), tiny_workload.n_queries, tiny_workload.n_hints,
        per_query_budget=tiny_budget, seed=2,
    )
    result = bayes.run(matrix)
    default_total = truth[:, 0].sum()
    optimal_total = truth.min(axis=1).sum()
    achieved_reduction = default_total - result.workload_latency()
    possible_reduction = default_total - optimal_total
    assert achieved_reduction < 0.5 * possible_reduction


def test_bayesqo_validation(tiny_workload):
    with pytest.raises(ExplorationError):
        BayesQO(
            MatrixOracle(tiny_workload.true_latencies),
            tiny_workload.n_queries,
            tiny_workload.n_hints,
            per_query_budget=0.0,
        )


def test_bayesqo_optimize_single_query(tiny_workload):
    truth = tiny_workload.true_latencies
    matrix = WorkloadMatrix(tiny_workload.n_queries, tiny_workload.n_hints)
    matrix.observe(0, 0, float(truth[0, 0]))
    bayes = BayesQO(
        MatrixOracle(truth), tiny_workload.n_queries, tiny_workload.n_hints,
        per_query_budget=float(truth[0].max()) * 3, seed=3,
    )
    spent, evaluations = bayes.optimize_query(matrix, 0)
    assert spent > 0
    assert evaluations >= 1
    assert matrix.row_min(0) <= truth[0, 0]
