"""Tests for the cardinality estimator (true and estimated models)."""

import pytest

from repro.db.cardinality import CardinalityEstimator
from repro.db.datagen import make_catalog
from repro.db.query import QueryGenerator


@pytest.fixture(scope="module")
def setup():
    catalog = make_catalog("toy", seed=0)
    estimator = CardinalityEstimator(catalog, seed=0)
    queries = QueryGenerator(catalog, seed=2, min_relations=2, max_relations=4).generate_many(8)
    return catalog, estimator, queries


def test_base_rows_positive_and_bounded(setup):
    catalog, estimator, queries = setup
    for query in queries:
        for alias in query.aliases:
            rows = estimator.base_rows(query, alias)
            est = estimator.estimated_base_rows(query, alias)
            assert rows >= 1.0
            assert est >= 1.0
            table = catalog.table(query.table_for(alias))
            assert est <= table.row_count + 1


def test_estimated_base_rows_have_no_hidden_factor(setup):
    catalog, estimator, queries = setup
    query = queries[0]
    alias = query.aliases[0]
    table = catalog.table(query.table_for(alias))
    expected = max(1.0, table.row_count * query.filter_selectivity(alias))
    assert estimator.estimated_base_rows(query, alias) == pytest.approx(expected)


def test_join_rows_deterministic(setup):
    _, estimator, queries = setup
    query = next(q for q in queries if q.num_relations >= 2)
    left = frozenset(query.aliases[:1])
    right = frozenset(query.aliases[1:2])
    a = estimator.join_rows(query, left, right)
    b = estimator.join_rows(query, left, right)
    assert a == b
    assert a >= 1.0


def test_estimation_error_compounds_with_joins(setup):
    _, estimator, queries = setup
    # Errors should exist for at least some multi-join sub-expressions.
    errors = []
    for query in queries:
        if query.num_relations < 3:
            continue
        full = frozenset(query.aliases)
        errors.append(abs(1.0 - estimator.estimation_error(query, full)))
    assert errors, "need at least one 3-way join query in the fixture"
    assert max(errors) > 0.01


def test_correlation_strength_zero_removes_hidden_factors(setup):
    catalog, _, queries = setup
    estimator = CardinalityEstimator(catalog, correlation_strength=0.0, seed=0)
    query = queries[0]
    full = frozenset(query.aliases)
    assert estimator.estimation_error(query, full) == pytest.approx(1.0)


def test_subset_rows_cached(setup):
    _, estimator, queries = setup
    query = queries[0]
    subset = frozenset(query.aliases)
    first = estimator.subset_rows(query, subset)
    second = estimator.subset_rows(query, subset)
    assert first == second
