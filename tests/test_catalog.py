"""Tests for the schema catalog."""

import pytest

from repro.db.catalog import Catalog, Column, ForeignKey, Table, build_catalog
from repro.errors import CatalogError


def make_table(name="t", rows=1000, indexed=True):
    table = Table(name=name, row_count=rows)
    table.add_column(Column(name="id", distinct_values=rows, indexed=indexed))
    table.add_column(Column(name="value", dtype="float", distinct_values=100))
    return table


def test_column_rejects_unknown_dtype():
    with pytest.raises(CatalogError):
        Column(name="c", dtype="blob")


def test_column_rejects_bad_null_fraction():
    with pytest.raises(CatalogError):
        Column(name="c", null_fraction=1.5)


def test_table_duplicate_column_rejected():
    table = make_table()
    with pytest.raises(CatalogError):
        table.add_column(Column(name="id"))


def test_table_unknown_column_lookup_raises():
    table = make_table()
    with pytest.raises(CatalogError):
        table.column("missing")


def test_table_page_count_scales_with_rows():
    small = make_table("small", rows=100)
    large = make_table("large", rows=1_000_000)
    assert large.page_count > small.page_count
    assert small.page_count >= 1


def test_table_has_index():
    table = make_table()
    assert table.has_index("id")
    assert not table.has_index("value")
    assert not table.has_index("missing")


def test_catalog_add_and_lookup():
    catalog = Catalog()
    catalog.add_table(make_table("a"))
    assert catalog.has_table("a")
    assert catalog.table("a").name == "a"
    assert catalog.table_names() == ["a"]


def test_catalog_duplicate_table_rejected():
    catalog = Catalog()
    catalog.add_table(make_table("a"))
    with pytest.raises(CatalogError):
        catalog.add_table(make_table("a"))


def test_catalog_unknown_table_raises():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.table("missing")


def test_foreign_key_requires_existing_columns():
    catalog = Catalog()
    catalog.add_table(make_table("a"))
    catalog.add_table(make_table("b"))
    catalog.add_foreign_key("a", "value", "b", "id")
    assert len(catalog.foreign_keys()) == 1
    with pytest.raises(CatalogError):
        catalog.add_foreign_key("a", "nope", "b", "id")


def test_neighbors_reflect_foreign_keys():
    catalog = Catalog()
    for name in ("a", "b", "c"):
        catalog.add_table(make_table(name))
    catalog.add_foreign_key("a", "value", "b", "id")
    catalog.add_foreign_key("c", "value", "a", "id")
    assert set(catalog.neighbors("a")) == {"b", "c"}
    assert catalog.neighbors("b") == ["a"]


def test_build_catalog_helper():
    catalog = build_catalog(
        [make_table("a"), make_table("b")],
        [ForeignKey("a", "value", "b", "id")],
        name="test",
    )
    assert catalog.name == "test"
    assert len(catalog.foreign_keys()) == 1
    assert catalog.total_rows() == 2000
    assert catalog.size_bytes() > 0
    assert "a" in catalog.describe()
